/root/repo/target/debug/deps/dps_netsim-2c574611922cc2c4.d: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

/root/repo/target/debug/deps/dps_netsim-2c574611922cc2c4: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

crates/netsim/src/lib.rs:
crates/netsim/src/asn.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/history.rs:
crates/netsim/src/net.rs:
crates/netsim/src/prefix.rs:
crates/netsim/src/trie.rs:
