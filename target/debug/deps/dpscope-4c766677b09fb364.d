/root/repo/target/debug/deps/dpscope-4c766677b09fb364.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-4c766677b09fb364: src/bin/dpscope.rs

src/bin/dpscope.rs:
