/root/repo/target/debug/deps/dps_bench-c9a19e6ccc82b2a3.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdps_bench-c9a19e6ccc82b2a3.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
