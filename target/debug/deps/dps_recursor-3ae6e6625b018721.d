/root/repo/target/debug/deps/dps_recursor-3ae6e6625b018721.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs Cargo.toml

/root/repo/target/debug/deps/libdps_recursor-3ae6e6625b018721.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs Cargo.toml

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
