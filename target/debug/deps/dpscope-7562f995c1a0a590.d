/root/repo/target/debug/deps/dpscope-7562f995c1a0a590.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-7562f995c1a0a590: src/bin/dpscope.rs

src/bin/dpscope.rs:
