/root/repo/target/debug/deps/dps_columnar-a11e622fc4b32553.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libdps_columnar-a11e622fc4b32553.rmeta: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs Cargo.toml

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
