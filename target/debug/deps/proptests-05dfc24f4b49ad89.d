/root/repo/target/debug/deps/proptests-05dfc24f4b49ad89.d: crates/columnar/tests/proptests.rs

/root/repo/target/debug/deps/proptests-05dfc24f4b49ad89: crates/columnar/tests/proptests.rs

crates/columnar/tests/proptests.rs:
