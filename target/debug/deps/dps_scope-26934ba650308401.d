/root/repo/target/debug/deps/dps_scope-26934ba650308401.d: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-26934ba650308401.rlib: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-26934ba650308401.rmeta: src/lib.rs

src/lib.rs:
