/root/repo/target/debug/deps/proptests-c07ed6c26a36658e.d: crates/netsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c07ed6c26a36658e.rmeta: crates/netsim/tests/proptests.rs Cargo.toml

crates/netsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
