/root/repo/target/debug/deps/proptests-40b7075e6b8b2402.d: crates/dns/tests/proptests.rs

/root/repo/target/debug/deps/proptests-40b7075e6b8b2402: crates/dns/tests/proptests.rs

crates/dns/tests/proptests.rs:
