/root/repo/target/debug/deps/dps_dns-852a98e7dc7d97c0.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdps_dns-852a98e7dc7d97c0.rmeta: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs Cargo.toml

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/psl.rs:
crates/dns/src/rr.rs:
crates/dns/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
