/root/repo/target/debug/deps/lpm-4731bd2354be53ad.d: crates/bench/benches/lpm.rs Cargo.toml

/root/repo/target/debug/deps/liblpm-4731bd2354be53ad.rmeta: crates/bench/benches/lpm.rs Cargo.toml

crates/bench/benches/lpm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
