/root/repo/target/debug/deps/methodology_accuracy-f5c4c31daa8c82de.d: tests/methodology_accuracy.rs

/root/repo/target/debug/deps/methodology_accuracy-f5c4c31daa8c82de: tests/methodology_accuracy.rs

tests/methodology_accuracy.rs:
