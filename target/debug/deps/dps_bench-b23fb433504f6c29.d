/root/repo/target/debug/deps/dps_bench-b23fb433504f6c29.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/dps_bench-b23fb433504f6c29: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
