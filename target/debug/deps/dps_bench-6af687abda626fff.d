/root/repo/target/debug/deps/dps_bench-6af687abda626fff.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-6af687abda626fff.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-6af687abda626fff.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
