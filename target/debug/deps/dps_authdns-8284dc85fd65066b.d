/root/repo/target/debug/deps/dps_authdns-8284dc85fd65066b.d: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

/root/repo/target/debug/deps/libdps_authdns-8284dc85fd65066b.rlib: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

/root/repo/target/debug/deps/libdps_authdns-8284dc85fd65066b.rmeta: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

crates/authdns/src/lib.rs:
crates/authdns/src/catalog.rs:
crates/authdns/src/resolver.rs:
crates/authdns/src/server.rs:
crates/authdns/src/zone.rs:
crates/authdns/src/zonefile.rs:
