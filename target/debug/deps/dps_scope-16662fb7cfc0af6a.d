/root/repo/target/debug/deps/dps_scope-16662fb7cfc0af6a.d: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-16662fb7cfc0af6a.rlib: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-16662fb7cfc0af6a.rmeta: src/lib.rs

src/lib.rs:
