/root/repo/target/debug/deps/wire_bulk_equivalence-cb29f678d061cd96.d: tests/wire_bulk_equivalence.rs

/root/repo/target/debug/deps/wire_bulk_equivalence-cb29f678d061cd96: tests/wire_bulk_equivalence.rs

tests/wire_bulk_equivalence.rs:
