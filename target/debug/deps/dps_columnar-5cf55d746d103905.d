/root/repo/target/debug/deps/dps_columnar-5cf55d746d103905.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/debug/deps/dps_columnar-5cf55d746d103905: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
