/root/repo/target/debug/deps/dps_columnar-12a97601dac957dc.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libdps_columnar-12a97601dac957dc.rmeta: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs Cargo.toml

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
