/root/repo/target/debug/deps/dps_ecosystem-3c806a4b740d013f.d: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

/root/repo/target/debug/deps/libdps_ecosystem-3c806a4b740d013f.rlib: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

/root/repo/target/debug/deps/libdps_ecosystem-3c806a4b740d013f.rmeta: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

crates/ecosystem/src/lib.rs:
crates/ecosystem/src/domain.rs:
crates/ecosystem/src/ids.rs:
crates/ecosystem/src/scenario.rs:
crates/ecosystem/src/schedule.rs:
crates/ecosystem/src/spec.rs:
crates/ecosystem/src/world.rs:
