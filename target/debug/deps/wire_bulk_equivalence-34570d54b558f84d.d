/root/repo/target/debug/deps/wire_bulk_equivalence-34570d54b558f84d.d: tests/wire_bulk_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libwire_bulk_equivalence-34570d54b558f84d.rmeta: tests/wire_bulk_equivalence.rs Cargo.toml

tests/wire_bulk_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
