/root/repo/target/debug/deps/dps_measure-325b8b55de1cfeb7.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libdps_measure-325b8b55de1cfeb7.rmeta: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs Cargo.toml

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
