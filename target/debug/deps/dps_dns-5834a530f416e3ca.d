/root/repo/target/debug/deps/dps_dns-5834a530f416e3ca.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/debug/deps/dps_dns-5834a530f416e3ca: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/psl.rs:
crates/dns/src/rr.rs:
crates/dns/src/wire.rs:
