/root/repo/target/debug/deps/proptests-1082a00630e0dcee.d: crates/dns/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1082a00630e0dcee.rmeta: crates/dns/tests/proptests.rs Cargo.toml

crates/dns/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
