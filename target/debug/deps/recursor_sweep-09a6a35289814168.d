/root/repo/target/debug/deps/recursor_sweep-09a6a35289814168.d: tests/recursor_sweep.rs Cargo.toml

/root/repo/target/debug/deps/librecursor_sweep-09a6a35289814168.rmeta: tests/recursor_sweep.rs Cargo.toml

tests/recursor_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
