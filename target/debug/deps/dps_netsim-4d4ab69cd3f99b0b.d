/root/repo/target/debug/deps/dps_netsim-4d4ab69cd3f99b0b.d: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

/root/repo/target/debug/deps/libdps_netsim-4d4ab69cd3f99b0b.rlib: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

/root/repo/target/debug/deps/libdps_netsim-4d4ab69cd3f99b0b.rmeta: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

crates/netsim/src/lib.rs:
crates/netsim/src/asn.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/history.rs:
crates/netsim/src/net.rs:
crates/netsim/src/prefix.rs:
crates/netsim/src/trie.rs:
