/root/repo/target/debug/deps/dps_core-372b1546a68b2c3b.d: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libdps_core-372b1546a68b2c3b.rmeta: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attribution.rs:
crates/core/src/combinations.rs:
crates/core/src/discovery.rs:
crates/core/src/flux.rs:
crates/core/src/growth.rs:
crates/core/src/mechanism.rs:
crates/core/src/peaks.rs:
crates/core/src/references.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
