/root/repo/target/debug/deps/experiments-7c3be0a6d7d32170.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7c3be0a6d7d32170: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
