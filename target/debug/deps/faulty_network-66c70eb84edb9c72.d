/root/repo/target/debug/deps/faulty_network-66c70eb84edb9c72.d: tests/faulty_network.rs

/root/repo/target/debug/deps/faulty_network-66c70eb84edb9c72: tests/faulty_network.rs

tests/faulty_network.rs:
