/root/repo/target/debug/deps/dps_scope-fe0015cf1f167bd8.d: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-fe0015cf1f167bd8.rlib: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-fe0015cf1f167bd8.rmeta: src/lib.rs

src/lib.rs:
