/root/repo/target/debug/deps/dps_ecosystem-186f83ff7638de67.d: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libdps_ecosystem-186f83ff7638de67.rmeta: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs Cargo.toml

crates/ecosystem/src/lib.rs:
crates/ecosystem/src/domain.rs:
crates/ecosystem/src/ids.rs:
crates/ecosystem/src/scenario.rs:
crates/ecosystem/src/schedule.rs:
crates/ecosystem/src/spec.rs:
crates/ecosystem/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
