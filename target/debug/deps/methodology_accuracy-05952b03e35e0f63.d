/root/repo/target/debug/deps/methodology_accuracy-05952b03e35e0f63.d: tests/methodology_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology_accuracy-05952b03e35e0f63.rmeta: tests/methodology_accuracy.rs Cargo.toml

tests/methodology_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
