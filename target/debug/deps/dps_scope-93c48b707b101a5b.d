/root/repo/target/debug/deps/dps_scope-93c48b707b101a5b.d: src/lib.rs

/root/repo/target/debug/deps/dps_scope-93c48b707b101a5b: src/lib.rs

src/lib.rs:
