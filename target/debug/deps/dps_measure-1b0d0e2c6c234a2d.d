/root/repo/target/debug/deps/dps_measure-1b0d0e2c6c234a2d.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/dps_measure-1b0d0e2c6c234a2d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
