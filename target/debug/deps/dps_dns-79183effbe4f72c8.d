/root/repo/target/debug/deps/dps_dns-79183effbe4f72c8.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/debug/deps/libdps_dns-79183effbe4f72c8.rlib: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/debug/deps/libdps_dns-79183effbe4f72c8.rmeta: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/psl.rs:
crates/dns/src/rr.rs:
crates/dns/src/wire.rs:
