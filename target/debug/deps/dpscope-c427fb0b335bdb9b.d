/root/repo/target/debug/deps/dpscope-c427fb0b335bdb9b.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-c427fb0b335bdb9b: src/bin/dpscope.rs

src/bin/dpscope.rs:
