/root/repo/target/debug/deps/dpscope-21ee97eae8cb8f71.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-21ee97eae8cb8f71: src/bin/dpscope.rs

src/bin/dpscope.rs:
