/root/repo/target/debug/deps/methodology_accuracy-f86381d307b34f82.d: tests/methodology_accuracy.rs

/root/repo/target/debug/deps/methodology_accuracy-f86381d307b34f82: tests/methodology_accuracy.rs

tests/methodology_accuracy.rs:
