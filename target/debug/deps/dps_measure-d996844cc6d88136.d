/root/repo/target/debug/deps/dps_measure-d996844cc6d88136.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/libdps_measure-d996844cc6d88136.rlib: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/libdps_measure-d996844cc6d88136.rmeta: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
