/root/repo/target/debug/deps/classify-964c55810be3ad37.d: crates/bench/benches/classify.rs Cargo.toml

/root/repo/target/debug/deps/libclassify-964c55810be3ad37.rmeta: crates/bench/benches/classify.rs Cargo.toml

crates/bench/benches/classify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
