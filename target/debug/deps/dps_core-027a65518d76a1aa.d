/root/repo/target/debug/deps/dps_core-027a65518d76a1aa.d: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs

/root/repo/target/debug/deps/libdps_core-027a65518d76a1aa.rlib: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs

/root/repo/target/debug/deps/libdps_core-027a65518d76a1aa.rmeta: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/attribution.rs:
crates/core/src/combinations.rs:
crates/core/src/discovery.rs:
crates/core/src/flux.rs:
crates/core/src/growth.rs:
crates/core/src/mechanism.rs:
crates/core/src/peaks.rs:
crates/core/src/references.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/util.rs:
