/root/repo/target/debug/deps/proptest-87e53568e2599310.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-87e53568e2599310.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-87e53568e2599310.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/regex.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
