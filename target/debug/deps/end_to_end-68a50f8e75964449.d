/root/repo/target/debug/deps/end_to_end-68a50f8e75964449.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-68a50f8e75964449: tests/end_to_end.rs

tests/end_to_end.rs:
