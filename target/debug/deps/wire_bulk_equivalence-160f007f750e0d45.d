/root/repo/target/debug/deps/wire_bulk_equivalence-160f007f750e0d45.d: tests/wire_bulk_equivalence.rs

/root/repo/target/debug/deps/wire_bulk_equivalence-160f007f750e0d45: tests/wire_bulk_equivalence.rs

tests/wire_bulk_equivalence.rs:
