/root/repo/target/debug/deps/dps_ecosystem-ab2e7e1755749290.d: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

/root/repo/target/debug/deps/dps_ecosystem-ab2e7e1755749290: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

crates/ecosystem/src/lib.rs:
crates/ecosystem/src/domain.rs:
crates/ecosystem/src/ids.rs:
crates/ecosystem/src/scenario.rs:
crates/ecosystem/src/schedule.rs:
crates/ecosystem/src/spec.rs:
crates/ecosystem/src/world.rs:
