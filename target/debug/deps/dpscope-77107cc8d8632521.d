/root/repo/target/debug/deps/dpscope-77107cc8d8632521.d: src/bin/dpscope.rs Cargo.toml

/root/repo/target/debug/deps/libdpscope-77107cc8d8632521.rmeta: src/bin/dpscope.rs Cargo.toml

src/bin/dpscope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
