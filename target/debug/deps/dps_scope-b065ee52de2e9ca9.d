/root/repo/target/debug/deps/dps_scope-b065ee52de2e9ca9.d: src/lib.rs

/root/repo/target/debug/deps/dps_scope-b065ee52de2e9ca9: src/lib.rs

src/lib.rs:
