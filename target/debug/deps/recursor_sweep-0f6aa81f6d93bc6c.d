/root/repo/target/debug/deps/recursor_sweep-0f6aa81f6d93bc6c.d: tests/recursor_sweep.rs

/root/repo/target/debug/deps/recursor_sweep-0f6aa81f6d93bc6c: tests/recursor_sweep.rs

tests/recursor_sweep.rs:
