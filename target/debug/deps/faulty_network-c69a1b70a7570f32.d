/root/repo/target/debug/deps/faulty_network-c69a1b70a7570f32.d: tests/faulty_network.rs Cargo.toml

/root/repo/target/debug/deps/libfaulty_network-c69a1b70a7570f32.rmeta: tests/faulty_network.rs Cargo.toml

tests/faulty_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
