/root/repo/target/debug/deps/recursion-8240080d0cec7c68.d: crates/recursor/tests/recursion.rs Cargo.toml

/root/repo/target/debug/deps/librecursion-8240080d0cec7c68.rmeta: crates/recursor/tests/recursion.rs Cargo.toml

crates/recursor/tests/recursion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
