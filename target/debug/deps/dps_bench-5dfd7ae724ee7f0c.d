/root/repo/target/debug/deps/dps_bench-5dfd7ae724ee7f0c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-5dfd7ae724ee7f0c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-5dfd7ae724ee7f0c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
