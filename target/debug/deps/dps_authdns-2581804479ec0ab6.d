/root/repo/target/debug/deps/dps_authdns-2581804479ec0ab6.d: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

/root/repo/target/debug/deps/dps_authdns-2581804479ec0ab6: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

crates/authdns/src/lib.rs:
crates/authdns/src/catalog.rs:
crates/authdns/src/resolver.rs:
crates/authdns/src/server.rs:
crates/authdns/src/zone.rs:
crates/authdns/src/zonefile.rs:
