/root/repo/target/debug/deps/cache_props-674a1ab24b187532.d: crates/recursor/tests/cache_props.rs Cargo.toml

/root/repo/target/debug/deps/libcache_props-674a1ab24b187532.rmeta: crates/recursor/tests/cache_props.rs Cargo.toml

crates/recursor/tests/cache_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
