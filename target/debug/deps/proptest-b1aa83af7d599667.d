/root/repo/target/debug/deps/proptest-b1aa83af7d599667.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-b1aa83af7d599667: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/regex.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
