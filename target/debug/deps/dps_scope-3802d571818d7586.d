/root/repo/target/debug/deps/dps_scope-3802d571818d7586.d: src/lib.rs

/root/repo/target/debug/deps/dps_scope-3802d571818d7586: src/lib.rs

src/lib.rs:
