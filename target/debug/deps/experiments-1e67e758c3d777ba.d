/root/repo/target/debug/deps/experiments-1e67e758c3d777ba.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-1e67e758c3d777ba: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
