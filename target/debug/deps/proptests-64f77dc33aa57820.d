/root/repo/target/debug/deps/proptests-64f77dc33aa57820.d: crates/columnar/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-64f77dc33aa57820.rmeta: crates/columnar/tests/proptests.rs Cargo.toml

crates/columnar/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
