/root/repo/target/debug/deps/recursor-44a2f01d8f57d84b.d: crates/bench/benches/recursor.rs Cargo.toml

/root/repo/target/debug/deps/librecursor-44a2f01d8f57d84b.rmeta: crates/bench/benches/recursor.rs Cargo.toml

crates/bench/benches/recursor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
