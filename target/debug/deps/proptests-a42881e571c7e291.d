/root/repo/target/debug/deps/proptests-a42881e571c7e291.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a42881e571c7e291: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
