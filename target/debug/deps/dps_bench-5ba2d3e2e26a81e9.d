/root/repo/target/debug/deps/dps_bench-5ba2d3e2e26a81e9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/dps_bench-5ba2d3e2e26a81e9: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
