/root/repo/target/debug/deps/dps_scope-3c03146e949a3eaa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdps_scope-3c03146e949a3eaa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
