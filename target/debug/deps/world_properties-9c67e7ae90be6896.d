/root/repo/target/debug/deps/world_properties-9c67e7ae90be6896.d: tests/world_properties.rs Cargo.toml

/root/repo/target/debug/deps/libworld_properties-9c67e7ae90be6896.rmeta: tests/world_properties.rs Cargo.toml

tests/world_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
