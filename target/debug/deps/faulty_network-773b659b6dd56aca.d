/root/repo/target/debug/deps/faulty_network-773b659b6dd56aca.d: tests/faulty_network.rs

/root/repo/target/debug/deps/faulty_network-773b659b6dd56aca: tests/faulty_network.rs

tests/faulty_network.rs:
