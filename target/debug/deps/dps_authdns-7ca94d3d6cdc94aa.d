/root/repo/target/debug/deps/dps_authdns-7ca94d3d6cdc94aa.d: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs Cargo.toml

/root/repo/target/debug/deps/libdps_authdns-7ca94d3d6cdc94aa.rmeta: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs Cargo.toml

crates/authdns/src/lib.rs:
crates/authdns/src/catalog.rs:
crates/authdns/src/resolver.rs:
crates/authdns/src/server.rs:
crates/authdns/src/zone.rs:
crates/authdns/src/zonefile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
