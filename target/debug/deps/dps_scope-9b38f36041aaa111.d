/root/repo/target/debug/deps/dps_scope-9b38f36041aaa111.d: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-9b38f36041aaa111.rlib: src/lib.rs

/root/repo/target/debug/deps/libdps_scope-9b38f36041aaa111.rmeta: src/lib.rs

src/lib.rs:
