/root/repo/target/debug/deps/dps_recursor-4946c0dca4484852.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/debug/deps/dps_recursor-4946c0dca4484852: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
