/root/repo/target/debug/deps/proptests-ea468205db2d768f.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ea468205db2d768f: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
