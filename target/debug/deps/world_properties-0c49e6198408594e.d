/root/repo/target/debug/deps/world_properties-0c49e6198408594e.d: tests/world_properties.rs

/root/repo/target/debug/deps/world_properties-0c49e6198408594e: tests/world_properties.rs

tests/world_properties.rs:
