/root/repo/target/debug/deps/dps_netsim-698541b364dece93.d: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libdps_netsim-698541b364dece93.rmeta: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/asn.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/history.rs:
crates/netsim/src/net.rs:
crates/netsim/src/prefix.rs:
crates/netsim/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
