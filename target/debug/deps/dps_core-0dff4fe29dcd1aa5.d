/root/repo/target/debug/deps/dps_core-0dff4fe29dcd1aa5.d: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs

/root/repo/target/debug/deps/dps_core-0dff4fe29dcd1aa5: crates/core/src/lib.rs crates/core/src/attribution.rs crates/core/src/combinations.rs crates/core/src/discovery.rs crates/core/src/flux.rs crates/core/src/growth.rs crates/core/src/mechanism.rs crates/core/src/peaks.rs crates/core/src/references.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/attribution.rs:
crates/core/src/combinations.rs:
crates/core/src/discovery.rs:
crates/core/src/flux.rs:
crates/core/src/growth.rs:
crates/core/src/mechanism.rs:
crates/core/src/peaks.rs:
crates/core/src/references.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/util.rs:
