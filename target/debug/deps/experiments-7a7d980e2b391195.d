/root/repo/target/debug/deps/experiments-7a7d980e2b391195.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7a7d980e2b391195: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
