/root/repo/target/debug/deps/world_properties-760de1dc5cc15411.d: tests/world_properties.rs

/root/repo/target/debug/deps/world_properties-760de1dc5cc15411: tests/world_properties.rs

tests/world_properties.rs:
