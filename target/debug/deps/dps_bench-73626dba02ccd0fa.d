/root/repo/target/debug/deps/dps_bench-73626dba02ccd0fa.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-73626dba02ccd0fa.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdps_bench-73626dba02ccd0fa.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
