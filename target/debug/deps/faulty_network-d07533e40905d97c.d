/root/repo/target/debug/deps/faulty_network-d07533e40905d97c.d: tests/faulty_network.rs

/root/repo/target/debug/deps/faulty_network-d07533e40905d97c: tests/faulty_network.rs

tests/faulty_network.rs:
