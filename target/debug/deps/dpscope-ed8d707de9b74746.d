/root/repo/target/debug/deps/dpscope-ed8d707de9b74746.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-ed8d707de9b74746: src/bin/dpscope.rs

src/bin/dpscope.rs:
