/root/repo/target/debug/deps/methodology_accuracy-6f658ffec4c9c6d8.d: tests/methodology_accuracy.rs

/root/repo/target/debug/deps/methodology_accuracy-6f658ffec4c9c6d8: tests/methodology_accuracy.rs

tests/methodology_accuracy.rs:
