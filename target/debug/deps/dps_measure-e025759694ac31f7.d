/root/repo/target/debug/deps/dps_measure-e025759694ac31f7.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/libdps_measure-e025759694ac31f7.rlib: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/libdps_measure-e025759694ac31f7.rmeta: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
