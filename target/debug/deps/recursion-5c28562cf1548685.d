/root/repo/target/debug/deps/recursion-5c28562cf1548685.d: crates/recursor/tests/recursion.rs

/root/repo/target/debug/deps/recursion-5c28562cf1548685: crates/recursor/tests/recursion.rs

crates/recursor/tests/recursion.rs:
