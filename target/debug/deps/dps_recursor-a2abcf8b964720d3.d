/root/repo/target/debug/deps/dps_recursor-a2abcf8b964720d3.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs Cargo.toml

/root/repo/target/debug/deps/libdps_recursor-a2abcf8b964720d3.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs Cargo.toml

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
