/root/repo/target/debug/deps/proptests-ba692755954ae47d.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ba692755954ae47d: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
