/root/repo/target/debug/deps/dns_wire-864cb66f3e23dca5.d: crates/bench/benches/dns_wire.rs Cargo.toml

/root/repo/target/debug/deps/libdns_wire-864cb66f3e23dca5.rmeta: crates/bench/benches/dns_wire.rs Cargo.toml

crates/bench/benches/dns_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
