/root/repo/target/debug/deps/world_properties-bc9c7969be8adeec.d: tests/world_properties.rs

/root/repo/target/debug/deps/world_properties-bc9c7969be8adeec: tests/world_properties.rs

tests/world_properties.rs:
