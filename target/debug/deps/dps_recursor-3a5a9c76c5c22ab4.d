/root/repo/target/debug/deps/dps_recursor-3a5a9c76c5c22ab4.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/debug/deps/libdps_recursor-3a5a9c76c5c22ab4.rlib: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/debug/deps/libdps_recursor-3a5a9c76c5c22ab4.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
