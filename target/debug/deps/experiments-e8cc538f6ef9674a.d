/root/repo/target/debug/deps/experiments-e8cc538f6ef9674a.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-e8cc538f6ef9674a.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
