/root/repo/target/debug/deps/dps_bench-72b110c8fdb8cf17.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdps_bench-72b110c8fdb8cf17.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
