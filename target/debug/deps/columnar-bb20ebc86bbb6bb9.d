/root/repo/target/debug/deps/columnar-bb20ebc86bbb6bb9.d: crates/bench/benches/columnar.rs Cargo.toml

/root/repo/target/debug/deps/libcolumnar-bb20ebc86bbb6bb9.rmeta: crates/bench/benches/columnar.rs Cargo.toml

crates/bench/benches/columnar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
