/root/repo/target/debug/deps/cache_props-b7918b29a0383d33.d: crates/recursor/tests/cache_props.rs

/root/repo/target/debug/deps/cache_props-b7918b29a0383d33: crates/recursor/tests/cache_props.rs

crates/recursor/tests/cache_props.rs:
