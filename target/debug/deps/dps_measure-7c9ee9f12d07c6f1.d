/root/repo/target/debug/deps/dps_measure-7c9ee9f12d07c6f1.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/debug/deps/dps_measure-7c9ee9f12d07c6f1: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
