/root/repo/target/debug/deps/end_to_end-b226c4b9292a6c8b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b226c4b9292a6c8b: tests/end_to_end.rs

tests/end_to_end.rs:
