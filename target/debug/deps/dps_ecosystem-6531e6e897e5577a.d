/root/repo/target/debug/deps/dps_ecosystem-6531e6e897e5577a.d: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libdps_ecosystem-6531e6e897e5577a.rmeta: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs Cargo.toml

crates/ecosystem/src/lib.rs:
crates/ecosystem/src/domain.rs:
crates/ecosystem/src/ids.rs:
crates/ecosystem/src/scenario.rs:
crates/ecosystem/src/schedule.rs:
crates/ecosystem/src/spec.rs:
crates/ecosystem/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
