/root/repo/target/debug/deps/dps_recursor-0957387edf75fcd0.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/debug/deps/libdps_recursor-0957387edf75fcd0.rlib: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/debug/deps/libdps_recursor-0957387edf75fcd0.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
