/root/repo/target/debug/deps/dps_scope-0b8bece89c01b479.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdps_scope-0b8bece89c01b479.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
