/root/repo/target/debug/deps/dps_columnar-67418d9839b25e38.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/debug/deps/libdps_columnar-67418d9839b25e38.rlib: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/debug/deps/libdps_columnar-67418d9839b25e38.rmeta: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
