/root/repo/target/debug/deps/dpscope-bd52eb4034f47969.d: src/bin/dpscope.rs

/root/repo/target/debug/deps/dpscope-bd52eb4034f47969: src/bin/dpscope.rs

src/bin/dpscope.rs:
