/root/repo/target/debug/deps/dpscope-1ca3f97e76c0219a.d: src/bin/dpscope.rs Cargo.toml

/root/repo/target/debug/deps/libdpscope-1ca3f97e76c0219a.rmeta: src/bin/dpscope.rs Cargo.toml

src/bin/dpscope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
