/root/repo/target/debug/deps/wire_bulk_equivalence-ee862504f5bc6395.d: tests/wire_bulk_equivalence.rs

/root/repo/target/debug/deps/wire_bulk_equivalence-ee862504f5bc6395: tests/wire_bulk_equivalence.rs

tests/wire_bulk_equivalence.rs:
