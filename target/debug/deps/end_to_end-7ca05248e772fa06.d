/root/repo/target/debug/deps/end_to_end-7ca05248e772fa06.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7ca05248e772fa06: tests/end_to_end.rs

tests/end_to_end.rs:
