/root/repo/target/debug/examples/dig-da81b7aca1edf069.d: examples/dig.rs

/root/repo/target/debug/examples/dig-da81b7aca1edf069: examples/dig.rs

examples/dig.rs:
