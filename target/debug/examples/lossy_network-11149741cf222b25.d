/root/repo/target/debug/examples/lossy_network-11149741cf222b25.d: examples/lossy_network.rs

/root/repo/target/debug/examples/lossy_network-11149741cf222b25: examples/lossy_network.rs

examples/lossy_network.rs:
