/root/repo/target/debug/examples/on_demand_mitigation-a2e2a27c3f315e79.d: examples/on_demand_mitigation.rs

/root/repo/target/debug/examples/on_demand_mitigation-a2e2a27c3f315e79: examples/on_demand_mitigation.rs

examples/on_demand_mitigation.rs:
