/root/repo/target/debug/examples/discover_references-d599aec70706fb01.d: examples/discover_references.rs

/root/repo/target/debug/examples/discover_references-d599aec70706fb01: examples/discover_references.rs

examples/discover_references.rs:
