/root/repo/target/debug/examples/quickstart-c0725df35300e306.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0725df35300e306: examples/quickstart.rs

examples/quickstart.rs:
