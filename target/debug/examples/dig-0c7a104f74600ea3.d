/root/repo/target/debug/examples/dig-0c7a104f74600ea3.d: examples/dig.rs

/root/repo/target/debug/examples/dig-0c7a104f74600ea3: examples/dig.rs

examples/dig.rs:
