/root/repo/target/debug/examples/lossy_network-d6b199434942c5cb.d: examples/lossy_network.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_network-d6b199434942c5cb.rmeta: examples/lossy_network.rs Cargo.toml

examples/lossy_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
