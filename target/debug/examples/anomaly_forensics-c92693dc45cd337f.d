/root/repo/target/debug/examples/anomaly_forensics-c92693dc45cd337f.d: examples/anomaly_forensics.rs

/root/repo/target/debug/examples/anomaly_forensics-c92693dc45cd337f: examples/anomaly_forensics.rs

examples/anomaly_forensics.rs:
