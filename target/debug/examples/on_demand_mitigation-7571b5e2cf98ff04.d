/root/repo/target/debug/examples/on_demand_mitigation-7571b5e2cf98ff04.d: examples/on_demand_mitigation.rs Cargo.toml

/root/repo/target/debug/examples/libon_demand_mitigation-7571b5e2cf98ff04.rmeta: examples/on_demand_mitigation.rs Cargo.toml

examples/on_demand_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
