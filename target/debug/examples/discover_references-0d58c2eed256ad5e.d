/root/repo/target/debug/examples/discover_references-0d58c2eed256ad5e.d: examples/discover_references.rs

/root/repo/target/debug/examples/discover_references-0d58c2eed256ad5e: examples/discover_references.rs

examples/discover_references.rs:
