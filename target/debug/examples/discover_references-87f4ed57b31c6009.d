/root/repo/target/debug/examples/discover_references-87f4ed57b31c6009.d: examples/discover_references.rs Cargo.toml

/root/repo/target/debug/examples/libdiscover_references-87f4ed57b31c6009.rmeta: examples/discover_references.rs Cargo.toml

examples/discover_references.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
