/root/repo/target/debug/examples/anomaly_forensics-0a56b635d05bc708.d: examples/anomaly_forensics.rs

/root/repo/target/debug/examples/anomaly_forensics-0a56b635d05bc708: examples/anomaly_forensics.rs

examples/anomaly_forensics.rs:
