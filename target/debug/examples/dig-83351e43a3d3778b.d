/root/repo/target/debug/examples/dig-83351e43a3d3778b.d: examples/dig.rs

/root/repo/target/debug/examples/dig-83351e43a3d3778b: examples/dig.rs

examples/dig.rs:
