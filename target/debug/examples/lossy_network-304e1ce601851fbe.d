/root/repo/target/debug/examples/lossy_network-304e1ce601851fbe.d: examples/lossy_network.rs

/root/repo/target/debug/examples/lossy_network-304e1ce601851fbe: examples/lossy_network.rs

examples/lossy_network.rs:
