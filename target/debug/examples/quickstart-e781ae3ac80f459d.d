/root/repo/target/debug/examples/quickstart-e781ae3ac80f459d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e781ae3ac80f459d: examples/quickstart.rs

examples/quickstart.rs:
