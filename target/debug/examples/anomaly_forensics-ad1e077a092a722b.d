/root/repo/target/debug/examples/anomaly_forensics-ad1e077a092a722b.d: examples/anomaly_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libanomaly_forensics-ad1e077a092a722b.rmeta: examples/anomaly_forensics.rs Cargo.toml

examples/anomaly_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
