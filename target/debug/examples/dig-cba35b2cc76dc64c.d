/root/repo/target/debug/examples/dig-cba35b2cc76dc64c.d: examples/dig.rs Cargo.toml

/root/repo/target/debug/examples/libdig-cba35b2cc76dc64c.rmeta: examples/dig.rs Cargo.toml

examples/dig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
