/root/repo/target/debug/examples/on_demand_mitigation-8486f3827edcc8a7.d: examples/on_demand_mitigation.rs

/root/repo/target/debug/examples/on_demand_mitigation-8486f3827edcc8a7: examples/on_demand_mitigation.rs

examples/on_demand_mitigation.rs:
