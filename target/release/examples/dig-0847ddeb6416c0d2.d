/root/repo/target/release/examples/dig-0847ddeb6416c0d2.d: examples/dig.rs

/root/repo/target/release/examples/dig-0847ddeb6416c0d2: examples/dig.rs

examples/dig.rs:
