/root/repo/target/release/deps/dps_measure-a0574a879a8c9872.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/release/deps/libdps_measure-a0574a879a8c9872.rlib: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/release/deps/libdps_measure-a0574a879a8c9872.rmeta: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
