/root/repo/target/release/deps/dps_columnar-ba982eed25dfd48a.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/release/deps/libdps_columnar-ba982eed25dfd48a.rlib: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/release/deps/libdps_columnar-ba982eed25dfd48a.rmeta: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
