/root/repo/target/release/deps/dps_recursor-e8149551471f5e1a.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/release/deps/libdps_recursor-e8149551471f5e1a.rlib: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/release/deps/libdps_recursor-e8149551471f5e1a.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
