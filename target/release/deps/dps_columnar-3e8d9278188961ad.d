/root/repo/target/release/deps/dps_columnar-3e8d9278188961ad.d: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/release/deps/libdps_columnar-3e8d9278188961ad.rlib: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

/root/repo/target/release/deps/libdps_columnar-3e8d9278188961ad.rmeta: crates/columnar/src/lib.rs crates/columnar/src/dictionary.rs crates/columnar/src/encoding.rs crates/columnar/src/mapreduce.rs crates/columnar/src/table.rs crates/columnar/src/varint.rs

crates/columnar/src/lib.rs:
crates/columnar/src/dictionary.rs:
crates/columnar/src/encoding.rs:
crates/columnar/src/mapreduce.rs:
crates/columnar/src/table.rs:
crates/columnar/src/varint.rs:
