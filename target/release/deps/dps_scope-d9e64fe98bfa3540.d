/root/repo/target/release/deps/dps_scope-d9e64fe98bfa3540.d: src/lib.rs

/root/repo/target/release/deps/libdps_scope-d9e64fe98bfa3540.rlib: src/lib.rs

/root/repo/target/release/deps/libdps_scope-d9e64fe98bfa3540.rmeta: src/lib.rs

src/lib.rs:
