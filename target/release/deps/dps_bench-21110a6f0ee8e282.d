/root/repo/target/release/deps/dps_bench-21110a6f0ee8e282.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdps_bench-21110a6f0ee8e282.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdps_bench-21110a6f0ee8e282.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
