/root/repo/target/release/deps/dps_recursor-7a65353a85a0bfa4.d: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/release/deps/libdps_recursor-7a65353a85a0bfa4.rlib: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

/root/repo/target/release/deps/libdps_recursor-7a65353a85a0bfa4.rmeta: crates/recursor/src/lib.rs crates/recursor/src/cache.rs crates/recursor/src/clock.rs crates/recursor/src/infra.rs crates/recursor/src/recursor.rs crates/recursor/src/scheduler.rs crates/recursor/src/singleflight.rs

crates/recursor/src/lib.rs:
crates/recursor/src/cache.rs:
crates/recursor/src/clock.rs:
crates/recursor/src/infra.rs:
crates/recursor/src/recursor.rs:
crates/recursor/src/scheduler.rs:
crates/recursor/src/singleflight.rs:
