/root/repo/target/release/deps/proptest-1dcb909bdd7f1734.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-1dcb909bdd7f1734.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-1dcb909bdd7f1734.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/regex.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/regex.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
