/root/repo/target/release/deps/dps_ecosystem-b53673404f890a63.d: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

/root/repo/target/release/deps/libdps_ecosystem-b53673404f890a63.rlib: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

/root/repo/target/release/deps/libdps_ecosystem-b53673404f890a63.rmeta: crates/ecosystem/src/lib.rs crates/ecosystem/src/domain.rs crates/ecosystem/src/ids.rs crates/ecosystem/src/scenario.rs crates/ecosystem/src/schedule.rs crates/ecosystem/src/spec.rs crates/ecosystem/src/world.rs

crates/ecosystem/src/lib.rs:
crates/ecosystem/src/domain.rs:
crates/ecosystem/src/ids.rs:
crates/ecosystem/src/scenario.rs:
crates/ecosystem/src/schedule.rs:
crates/ecosystem/src/spec.rs:
crates/ecosystem/src/world.rs:
