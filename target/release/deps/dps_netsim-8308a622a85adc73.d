/root/repo/target/release/deps/dps_netsim-8308a622a85adc73.d: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

/root/repo/target/release/deps/libdps_netsim-8308a622a85adc73.rlib: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

/root/repo/target/release/deps/libdps_netsim-8308a622a85adc73.rmeta: crates/netsim/src/lib.rs crates/netsim/src/asn.rs crates/netsim/src/bgp.rs crates/netsim/src/clock.rs crates/netsim/src/history.rs crates/netsim/src/net.rs crates/netsim/src/prefix.rs crates/netsim/src/trie.rs

crates/netsim/src/lib.rs:
crates/netsim/src/asn.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/history.rs:
crates/netsim/src/net.rs:
crates/netsim/src/prefix.rs:
crates/netsim/src/trie.rs:
