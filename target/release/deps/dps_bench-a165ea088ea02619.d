/root/repo/target/release/deps/dps_bench-a165ea088ea02619.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdps_bench-a165ea088ea02619.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdps_bench-a165ea088ea02619.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
