/root/repo/target/release/deps/dps_dns-f0d43e3152415b55.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/release/deps/libdps_dns-f0d43e3152415b55.rlib: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/release/deps/libdps_dns-f0d43e3152415b55.rmeta: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/psl.rs:
crates/dns/src/rr.rs:
crates/dns/src/wire.rs:
