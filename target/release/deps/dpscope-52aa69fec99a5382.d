/root/repo/target/release/deps/dpscope-52aa69fec99a5382.d: src/bin/dpscope.rs

/root/repo/target/release/deps/dpscope-52aa69fec99a5382: src/bin/dpscope.rs

src/bin/dpscope.rs:
