/root/repo/target/release/deps/experiments-7a09c033a6fb74a6.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-7a09c033a6fb74a6: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
