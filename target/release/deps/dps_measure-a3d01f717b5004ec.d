/root/repo/target/release/deps/dps_measure-a3d01f717b5004ec.d: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/release/deps/libdps_measure-a3d01f717b5004ec.rlib: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

/root/repo/target/release/deps/libdps_measure-a3d01f717b5004ec.rmeta: crates/measure/src/lib.rs crates/measure/src/collector.rs crates/measure/src/observation.rs crates/measure/src/pipeline.rs crates/measure/src/snapshot.rs

crates/measure/src/lib.rs:
crates/measure/src/collector.rs:
crates/measure/src/observation.rs:
crates/measure/src/pipeline.rs:
crates/measure/src/snapshot.rs:
