/root/repo/target/release/deps/dps_authdns-e344c18ca84c57e6.d: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

/root/repo/target/release/deps/libdps_authdns-e344c18ca84c57e6.rlib: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

/root/repo/target/release/deps/libdps_authdns-e344c18ca84c57e6.rmeta: crates/authdns/src/lib.rs crates/authdns/src/catalog.rs crates/authdns/src/resolver.rs crates/authdns/src/server.rs crates/authdns/src/zone.rs crates/authdns/src/zonefile.rs

crates/authdns/src/lib.rs:
crates/authdns/src/catalog.rs:
crates/authdns/src/resolver.rs:
crates/authdns/src/server.rs:
crates/authdns/src/zone.rs:
crates/authdns/src/zonefile.rs:
