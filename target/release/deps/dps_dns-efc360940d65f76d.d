/root/repo/target/release/deps/dps_dns-efc360940d65f76d.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/release/deps/libdps_dns-efc360940d65f76d.rlib: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

/root/repo/target/release/deps/libdps_dns-efc360940d65f76d.rmeta: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/psl.rs crates/dns/src/rr.rs crates/dns/src/wire.rs

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/psl.rs:
crates/dns/src/rr.rs:
crates/dns/src/wire.rs:
