/root/repo/target/release/deps/recursor-fea9998d8888de5c.d: crates/bench/benches/recursor.rs

/root/repo/target/release/deps/recursor-fea9998d8888de5c: crates/bench/benches/recursor.rs

crates/bench/benches/recursor.rs:
