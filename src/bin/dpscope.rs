//! `dpscope` — the command-line face of the reproduction.
//!
//! ```sh
//! # Export the simulated Internet's artifacts for a day:
//! dpscope simulate --scale 0.01 --day 7 --out target/world
//!
//! # Run the measurement study and archive it:
//! dpscope measure --scale 0.05 --days 120 --archive target/archive
//!
//! # Regenerate every table/figure from an archive (or fresh):
//! dpscope analyze --scale 0.05 --days 120 --archive target/archive --out target/figs all
//!
//! # Resolve a name through the simulated Internet, dig-style:
//! dpscope dig d42.com A --day 7
//!
//! # Inspect / checksum-verify / dump a single-file archive:
//! dpscope store info target/archive
//! dpscope store verify target/archive
//! dpscope store cat target/archive --day 3 --source 0 --cols entry,asn1
//! ```

use dps_bench::experiments::{experiment_ids, run, Context, ExperimentConfig};
use dps_scope::authdns::{HealthConfig, HealthTracker, Resolver, ResolverConfig};
use dps_scope::measure::collector::{SldInterner, WirePath};
use dps_scope::measure::pipeline::sweep_with_path_supervised_metered;
use dps_scope::measure::{
    DayObserver, SupervisorConfig, SweepMetrics, ANALYSIS_SOURCE, QUALITY_SOURCE, TELEMETRY_SOURCE,
};
use dps_scope::netsim::ChaosSchedule;
use dps_scope::prelude::*;
use dps_scope::stream::{activation_days, analysis_json, correlate, DEFAULT_TOLERANCE};
use dps_scope::telemetry::Registry;
use std::path::PathBuf;
use std::sync::Arc;

struct CommonArgs {
    seed: u64,
    scale: f64,
    days: u32,
    cc_start: u32,
    stride: u32,
    day: u32,
    out: PathBuf,
    archive: Option<PathBuf>,
    source: Option<u8>,
    cols: Option<Vec<String>>,
    chaos: Option<String>,
    stream: bool,
    shards: u32,
    workers: u32,
    min_workers: u32,
    bind: Option<String>,
    connect: Option<String>,
    name: Option<String>,
    zones: Option<PathBuf>,
    udp: Option<String>,
    tcp: Option<String>,
    iters: u64,
    server: Option<String>,
    rest: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dpscope <command> [options]\n\
         \n\
         commands:\n\
           simulate   export zone files, pfx2as and AS registry for --day\n\
           measure    run the full study, save the archive to --archive\n\
                      (resumes from the last committed day if interrupted;\n\
                      with --chaos, sweeps over the wire under supervision)\n\
           analyze    regenerate tables/figures (ids or 'all') from --archive\n\
           dig        resolve <name> <type> through the simulated Internet\n\
                      (+tries=N and +timeout=MS tune the wire resolver);\n\
                      with --server udp://A or tcp://A, query a real DNS\n\
                      server over the network instead (+bufsize=N sets the\n\
                      EDNS0 size, +noedns sends a classic query; truncated\n\
                      UDP answers retry over TCP)\n\
           serve      authoritative DNS over real sockets for the *.zone\n\
                      files in --zones (hot-reloaded on change); UDP with\n\
                      EDNS0/TC plus TCP fallback, hardened against\n\
                      malformed input, floods and slowloris; runs until\n\
                      stdin closes\n\
           fuzz       run the deterministic mutation fuzzer against one\n\
                      decoder target (or 'all'): fuzz <target> --iters N\n\
                      --seed S; corpus under crates/fuzz/corpus/<target>\n\
           store      inspect a single-file archive: store <info|verify|cat> <path>\n\
                      (info includes the per-day data-quality summary)\n\
           metrics    dump archived sweep telemetry: metrics <path> [--json]\n\
                      (all days merged; --day N selects one day's page;\n\
                      --by-worker appends per-worker provenance counters)\n\
           cluster    multi-process sweep roles:\n\
                        cluster serve --bind ADDR --archive DIR  (manager)\n\
                        cluster agent --connect ADDR [--name S]  (worker)\n\
                      ADDRs containing '/' are Unix sockets, else TCP\n\
           stream     incremental analysis over an archive measured with\n\
                      --stream (replays the persisted checkpoint pages):\n\
                        stream status <path> [--json]  days, per-provider\n\
                                       distinct estimates, attack flags\n\
                        stream check <path>   verify the streamed state\n\
                                       equals a full dps-core rescan\n\
                        stream correlate <path>  score attack flags against\n\
                                       scenario ground truth (pass the same\n\
                                       --seed/--scale/--days/--cc-start\n\
                                       the archive was measured with)\n\
         \n\
         options:\n\
           --seed N       world seed           (default 2016)\n\
           --scale X      population scale     (default 1.0 = 1/1000 real)\n\
           --days N       study length         (default 550)\n\
           --cc-start N   .nl/Alexa start day  (default 366)\n\
           --stride N     measure every Nth day (default 1)\n\
           --day N        day for simulate/dig (default 0)\n\
           --out DIR      output directory     (default target/dpscope)\n\
           --archive DIR  measurement archive directory\n\
           --source N     store cat: source id (0=com 1=net 2=org 3=nl 4=alexa)\n\
           --cols A,B     store cat: project these columns only\n\
           --chaos SPEC   measure: sweep over the simulated wire under a\n\
                          scripted fault schedule, e.g.\n\
                          'degrade@0..inf@loss=0.15; blackout@5s..20s@10.0.0.1'\n\
           --stream       measure: maintain incremental analysis at each\n\
                          day's commit and checkpoint it in the archive\n\
                          (works with --workers; not with --chaos)\n\
           --shards N     measure: write a sharded archive (manifest + N\n\
                          shard files; scans parallelise per shard) when\n\
                          creating a fresh one; resume keeps the existing\n\
                          layout (default 1 = single-file archive.dps)\n\
           --workers N    measure: sweep with N local worker-agent processes\n\
                          over a Unix socket (archive stays byte-identical)\n\
           --bind ADDR    cluster serve: listen address\n\
           --min-workers N  cluster serve: hold leases until N agents have\n\
                          joined (late fleets all participate; default 0)\n\
           --connect ADDR cluster agent: manager address\n\
           --name S       cluster agent: display name for provenance\n\
           --zones DIR    serve: directory of *.zone files (stem = origin)\n\
           --udp ADDR     serve: UDP listen address (default 127.0.0.1:0)\n\
           --tcp ADDR     serve: TCP listen address (default 127.0.0.1:0)\n\
           --iters N      fuzz: iterations per target (default 100000)\n\
           --server URL   dig: real server, udp://host:port or tcp://host:port\n\
         \n\
         analyze ids: {}",
        experiment_ids().join(", ")
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> CommonArgs {
    let mut common = CommonArgs {
        seed: 2016,
        scale: 1.0,
        days: 550,
        cc_start: 366,
        stride: 1,
        day: 0,
        out: PathBuf::from("target/dpscope"),
        archive: None,
        source: None,
        cols: None,
        chaos: None,
        stream: false,
        shards: 1,
        workers: 0,
        min_workers: 0,
        bind: None,
        connect: None,
        name: None,
        zones: None,
        udp: None,
        tcp: None,
        iters: 100_000,
        server: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => common.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--scale" => common.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--days" => common.days = value("--days").parse().unwrap_or_else(|_| usage()),
            "--cc-start" => {
                common.cc_start = value("--cc-start").parse().unwrap_or_else(|_| usage())
            }
            "--stride" => common.stride = value("--stride").parse().unwrap_or_else(|_| usage()),
            "--day" => common.day = value("--day").parse().unwrap_or_else(|_| usage()),
            "--out" => common.out = value("--out").into(),
            "--archive" => common.archive = Some(value("--archive").into()),
            "--source" => {
                common.source = Some(value("--source").parse().unwrap_or_else(|_| usage()))
            }
            "--cols" => {
                common.cols = Some(
                    value("--cols")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--chaos" => common.chaos = Some(value("--chaos").to_string()),
            "--stream" => common.stream = true,
            "--shards" => common.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--workers" => common.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--min-workers" => {
                common.min_workers = value("--min-workers").parse().unwrap_or_else(|_| usage())
            }
            "--bind" => common.bind = Some(value("--bind").to_string()),
            "--connect" => common.connect = Some(value("--connect").to_string()),
            "--name" => common.name = Some(value("--name").to_string()),
            "--zones" => common.zones = Some(value("--zones").into()),
            "--udp" => common.udp = Some(value("--udp").to_string()),
            "--tcp" => common.tcp = Some(value("--tcp").to_string()),
            "--iters" => common.iters = value("--iters").parse().unwrap_or_else(|_| usage()),
            "--server" => common.server = Some(value("--server").to_string()),
            "-h" | "--help" => usage(),
            other => common.rest.push(other.to_string()),
        }
    }
    if common.cc_start >= common.days {
        common.cc_start = common.days.saturating_mul(2) / 3;
    }
    common
}

fn world_for(args: &CommonArgs) -> World {
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(args.day));
    world
}

fn cmd_simulate(args: CommonArgs) {
    let world = world_for(&args);
    std::fs::create_dir_all(&args.out).expect("create out dir");
    for tld in dps_scope::ecosystem::MEASURED_TLDS {
        let path = args.out.join(format!("{}.zone", tld.label()));
        std::fs::write(&path, world.zone_file_text(tld)).expect("write zone");
        println!("wrote {} ({} SLDs)", path.display(), world.zone_size(tld));
    }
    let pfx2as = world.pfx2as();
    let path = args.out.join(format!("pfx2as-day{:04}.txt", args.day));
    std::fs::write(&path, pfx2as.to_routeviews_text()).expect("write pfx2as");
    println!("wrote {} ({} prefixes)", path.display(), pfx2as.len());

    let mut asns = String::new();
    for (asn, name) in world.as_registry().iter() {
        asns.push_str(&format!("{asn}\t{name}\n"));
    }
    let path = args.out.join("as-names.tsv");
    std::fs::write(&path, asns).expect("write as names");
    println!("wrote {}", path.display());
    println!(
        "\nworld: {} domains, day {} ({})",
        world.domains().len(),
        args.day,
        Day(args.day)
    );
}

fn cmd_measure(args: CommonArgs) {
    let Some(archive) = args.archive.clone() else {
        eprintln!("measure requires --archive DIR");
        usage();
    };
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let mut world = World::imc2016(params);
    println!(
        "world: {} domains; sweeping {} days…",
        world.domains().len(),
        args.days
    );
    std::fs::create_dir_all(&archive).expect("create archive dir");
    let path = archive.join(dps_scope::measure::ARCHIVE_FILE);
    if args.chaos.is_some() && args.stream {
        eprintln!("--chaos and --stream are mutually exclusive");
        usage();
    }
    if args.workers > 0 {
        if args.chaos.is_some() {
            eprintln!("--workers and --chaos are mutually exclusive");
            usage();
        }
        cmd_measure_cluster(&args, &archive, &path);
        return;
    }
    if let Some(spec) = &args.chaos {
        let schedule = ChaosSchedule::parse(spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        });
        cmd_measure_chaos(&args, &mut world, &path, schedule);
        return;
    }
    // Streams each finished day into the single-file archive with a
    // durable footer per day: a killed sweep resumes where it left off.
    // With --stream, a StreamEngine observes every commit and its
    // checkpoint rides in the same durable footer.
    let mut engine = args.stream.then(dps_scope::stream::StreamEngine::new);
    let observer = engine.as_mut().map(|e| e as &mut dyn DayObserver);
    let store = Study::new(StudyConfig {
        days: args.days,
        cc_start_day: args.cc_start,
        stride: args.stride,
    })
    .with_shards(args.shards)
    .run_archived_observed(&mut world, &path, observer)
    .expect("archived study");
    println!(
        "archived {} to {}",
        dps_scope::core::report::human_bytes(store.total_stored_bytes()),
        path.display()
    );
    if let Some(engine) = &engine {
        print_stream_summary(engine);
    }
}

/// One-line streaming-analysis summary after a `--stream` sweep.
fn print_stream_summary(engine: &dps_scope::stream::StreamEngine) {
    let flags = engine.attack_flags();
    println!(
        "stream: {} days analysed, {} providers, {} attack-onset flags",
        engine.days().len(),
        engine.n_providers(),
        flags.len()
    );
}

/// `dpscope measure --chaos SPEC`: sweep every due source over the
/// simulated wire while the scripted fault schedule plays out, under the
/// supervisor (backoff, breakers, dead-letter retries). Each day gets a
/// fresh network whose virtual clock starts at zero, so the schedule
/// describes faults *within* a day and replays identically every day.
fn cmd_measure_chaos(
    args: &CommonArgs,
    world: &mut World,
    path: &std::path::Path,
    schedule: ChaosSchedule,
) {
    let mut store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    let supervisor = SupervisorConfig::default();
    let mut day = 0u32;
    while day < args.days {
        world.advance_to(Day(day));
        // One registry per day, like the network itself: the day's
        // snapshot is self-contained, so an aborted run re-measuring the
        // day reproduces the identical telemetry page.
        let registry = Registry::new();
        let net = Network::with_telemetry(args.seed.wrapping_add(u64::from(day)), &registry);
        net.set_chaos(schedule.clone());
        let catalog = world.materialize(&net);
        let health =
            Arc::new(HealthTracker::new(HealthConfig::default()).with_telemetry(&registry));
        let resolver = Resolver::new(
            &net,
            "172.16.0.53".parse().unwrap(),
            u64::from(day),
            catalog.root_hints(),
        )
        .with_config(ResolverConfig::resilient())
        .with_health(health);
        let mut wire = WirePath::new(resolver);
        let sweep_metrics = SweepMetrics::new(&registry);
        let mut due = vec![Source::Com, Source::Net, Source::Org];
        if day >= args.cc_start {
            due.push(Source::Nl);
            due.push(Source::Alexa);
        }
        for source in due {
            let q = sweep_with_path_supervised_metered(
                world,
                &mut wire,
                source,
                day,
                &mut store,
                &mut interner,
                &supervisor,
                &sweep_metrics,
            );
            println!(
                "day {day:>4} {:<8} coverage {:>6.2}%  attempted {:>6}  unresolved {:>4}  \
                 recovered {:>4}  trips {:>3}  hedges {:>4}",
                source.label(),
                100.0 * q.coverage(),
                q.attempted,
                q.failed,
                q.recovered,
                q.breaker_trips,
                q.hedges,
            );
        }
        store.add_telemetry(day, registry.snapshot());
        day += args.stride.max(1);
    }
    store.save_archive(path).expect("save chaos archive");
    println!(
        "archived {} to {}",
        dps_scope::core::report::human_bytes(store.total_stored_bytes()),
        path.display()
    );
}

/// Manager-side read timeout: comfortably above the agents' 100 ms
/// heartbeat interval, so a healthy worker never shows a quiet tick.
const CLUSTER_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);

fn cluster_config(args: &CommonArgs) -> dps_scope::cluster::ClusterConfig {
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let mut config = dps_scope::cluster::ClusterConfig::for_params(params);
    config.study.stride = args.stride;
    config.scheduler.min_workers = args.min_workers;
    config
}

/// Binds `addr` ('/' ⇒ Unix socket path, else TCP host:port) and pumps
/// accepted connections into `conns` until `stop` is raised.
fn spawn_accept_loop(
    addr: &str,
    conns: std::sync::mpsc::Sender<dps_scope::cluster::Conn>,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<std::io::Result<()>> {
    use dps_scope::cluster::transport::{tcp_accept_loop, uds_accept_loop};
    if addr.contains('/') {
        std::fs::remove_file(addr).ok();
        let listener = std::os::unix::net::UnixListener::bind(addr).expect("bind unix socket");
        std::thread::spawn(move || uds_accept_loop(listener, CLUSTER_READ_TIMEOUT, &conns, &stop))
    } else {
        let listener = std::net::TcpListener::bind(addr).expect("bind tcp listener");
        std::thread::spawn(move || tcp_accept_loop(listener, CLUSTER_READ_TIMEOUT, &conns, &stop))
    }
}

/// `dpscope cluster serve --bind ADDR --archive DIR`: the manager role.
/// Owns the archive; leases (day, shard) units to connecting agents and
/// commits merged days. The archive is byte-identical to a single-process
/// `dpscope measure` of the same parameters.
fn cluster_serve(args: &CommonArgs) {
    let Some(bind) = args.bind.clone() else {
        eprintln!("cluster serve requires --bind ADDR");
        usage();
    };
    let Some(archive) = args.archive.clone() else {
        eprintln!("cluster serve requires --archive DIR");
        usage();
    };
    std::fs::create_dir_all(&archive).expect("create archive dir");
    let path = archive.join(dps_scope::measure::ARCHIVE_FILE);
    let (conn_tx, conn_rx) = std::sync::mpsc::channel();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let accept = spawn_accept_loop(&bind, conn_tx, stop.clone());
    println!("cluster manager on {bind}; waiting for agents…");
    let mut engine = args.stream.then(dps_scope::stream::StreamEngine::new);
    let observer = engine.as_mut().map(|e| e as &mut dyn DayObserver);
    let outcome =
        dps_scope::cluster::serve_observed(conn_rx, cluster_config(args), &path, observer);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    accept.join().expect("accept loop").expect("accept loop io");
    if bind.contains('/') {
        std::fs::remove_file(&bind).ok();
    }
    let outcome = outcome.expect("cluster sweep");
    finish_cluster_run(&archive, &path, &outcome);
    if let Some(engine) = &engine {
        print_stream_summary(engine);
    }
}

/// `dpscope cluster agent --connect ADDR [--name S]`: the worker role.
/// Rebuilds the world the manager's Welcome describes and sweeps leases
/// until drained.
fn cluster_agent(args: &CommonArgs) {
    let Some(addr) = args.connect.clone() else {
        eprintln!("cluster agent requires --connect ADDR");
        usage();
    };
    // The manager may still be binding its socket — or starting slowly on
    // a loaded machine; retry for up to a minute.
    let mut conn = None;
    for _ in 0..600 {
        let attempt = if addr.contains('/') {
            std::os::unix::net::UnixStream::connect(&addr)
                .and_then(|s| dps_scope::cluster::uds_conn(s, CLUSTER_READ_TIMEOUT))
        } else {
            std::net::TcpStream::connect(&addr)
                .and_then(|s| dps_scope::cluster::tcp_conn(s, CLUSTER_READ_TIMEOUT))
        };
        match attempt {
            Ok(c) => {
                conn = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    }
    let Some(conn) = conn else {
        eprintln!("cannot connect to {addr}");
        std::process::exit(1);
    };
    let opts = dps_scope::cluster::WorkerOptions {
        name: args.name.clone().unwrap_or_default(),
        ..Default::default()
    };
    let summary = dps_scope::cluster::run_agent(conn, opts).expect("agent run");
    println!(
        "agent {}: {} leases, {} rows",
        summary.worker, summary.leases, summary.rows
    );
}

/// `dpscope measure --workers N`: forks N local `cluster agent` child
/// processes talking to an in-archive-dir Unix socket, then runs the
/// manager in this process. Same bytes as the single-process sweep.
fn cmd_measure_cluster(args: &CommonArgs, archive: &std::path::Path, path: &std::path::Path) {
    let sock = archive.join("cluster.sock");
    let sock_str = sock.to_str().expect("utf-8 socket path").to_string();
    let (conn_tx, conn_rx) = std::sync::mpsc::channel();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let accept = spawn_accept_loop(&sock_str, conn_tx, stop.clone());
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    for i in 0..args.workers {
        let child = std::process::Command::new(&exe)
            .args([
                "cluster",
                "agent",
                "--connect",
                &sock_str,
                "--name",
                &format!("local-{i}"),
            ])
            .spawn()
            .expect("spawn local agent");
        children.push(child);
    }
    println!("sweeping with {} local worker agents…", args.workers);
    let mut engine = args.stream.then(dps_scope::stream::StreamEngine::new);
    let observer = engine.as_mut().map(|e| e as &mut dyn DayObserver);
    let outcome = dps_scope::cluster::serve_observed(conn_rx, cluster_config(args), path, observer);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    accept.join().expect("accept loop").expect("accept loop io");
    for mut child in children {
        child.wait().ok();
    }
    std::fs::remove_file(&sock).ok();
    let outcome = outcome.expect("cluster sweep");
    finish_cluster_run(archive, path, &outcome);
    if let Some(engine) = &engine {
        print_stream_summary(engine);
    }
}

/// Writes the provenance sidecar and prints the run summary.
fn finish_cluster_run(
    archive: &std::path::Path,
    path: &std::path::Path,
    outcome: &dps_scope::cluster::ClusterOutcome,
) {
    let sidecar = archive.join(dps_scope::cluster::PROVENANCE_FILE);
    dps_scope::cluster::write_provenance(&sidecar, &outcome.report).expect("write provenance");
    println!(
        "archived {} to {} ({} workers, {} leases, {} dead-letters, {} stale)",
        dps_scope::core::report::human_bytes(outcome.store.total_stored_bytes()),
        path.display(),
        outcome.report.workers_admitted,
        outcome.report.accepted.len(),
        outcome.report.dead_letters,
        outcome.report.stale_rejected,
    );
    println!("provenance sidecar: {}", sidecar.display());
}

/// `dpscope cluster <serve|agent>` — the two cluster roles.
fn cmd_cluster(args: CommonArgs) {
    match args.rest.first().map(String::as_str) {
        Some("serve") => cluster_serve(&args),
        Some("agent") => cluster_agent(&args),
        _ => {
            eprintln!("cluster requires <serve|agent>");
            usage();
        }
    }
}

/// Human label for an archive page kind (the catalog's `source` id):
/// the five measured sources, the three bookkeeping kinds, and a
/// future-proof `unknown(id)` for anything a newer writer introduced.
fn page_kind_label(id: u8) -> String {
    if let Some(source) = Source::from_index(u32::from(id)) {
        return source.label().to_string();
    }
    match id {
        QUALITY_SOURCE => "quality".to_string(),
        TELEMETRY_SOURCE => "telemetry".to_string(),
        ANALYSIS_SOURCE => "analysis".to_string(),
        other => format!("unknown({other})"),
    }
}

/// `dpscope store <info|verify|cat> <path>` — single-file archive tooling.
fn cmd_store(args: CommonArgs) {
    let (Some(action), Some(raw_path)) = (args.rest.first(), args.rest.get(1)) else {
        eprintln!("store requires <info|verify|cat> <archive-file-or-dir>");
        usage();
    };
    // Accept either the archive file itself or its containing directory.
    let mut path = PathBuf::from(raw_path);
    if path.is_dir() {
        path = path.join(dps_scope::measure::ARCHIVE_FILE);
    }
    let archive = match StoreReader::open_auto(&path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match action.as_str() {
        "info" => {
            let catalog = archive.catalog();
            println!("archive: {}", path.display());
            if archive.is_sharded() {
                println!(
                    "layout:  sharded ({} shard files + manifest)",
                    archive.n_shards()
                );
            }
            println!("pages:   {}", catalog.pages.len());
            println!(
                "stored:  {}",
                dps_scope::core::report::human_bytes(catalog.total_stored_bytes())
            );
            println!("dict:    {} strings", archive.dict().len());
            println!(
                "{:<12} {:>6} {:>11} {:>13} {:>12} {:>12}",
                "kind", "days", "first..last", "data points", "stored", "raw"
            );
            // Every page kind present in the catalog gets a row — data
            // sources and bookkeeping kinds alike, and ids this build
            // does not know render as unknown(id) instead of vanishing.
            for (source, st) in catalog.stats().iter().enumerate() {
                if st.days == 0 {
                    continue;
                }
                let id = u8::try_from(source).unwrap_or(u8::MAX);
                println!(
                    "{:<12} {:>6} {:>5}..{:<5} {:>13} {:>12} {:>12}",
                    page_kind_label(id),
                    st.days,
                    st.first_day.unwrap_or(0),
                    st.last_day.unwrap_or(0),
                    st.data_points,
                    dps_scope::core::report::human_bytes(st.stored_bytes),
                    dps_scope::core::report::human_bytes(st.raw_bytes)
                );
            }
            // Per-day sweep quality (coverage, retries, masked days), read
            // from the archive's QUALITY_SOURCE pages.
            let mut quality_store = SnapshotStore::new();
            for &(day, source) in archive.catalog().pages.keys() {
                if source != QUALITY_SOURCE {
                    continue;
                }
                let table = archive
                    .table(day, source)
                    .expect("catalog-listed page reads")
                    .expect("catalog-listed page exists");
                for q in dps_scope::measure::decode_qualities(&table).expect("quality page decodes")
                {
                    quality_store.add_quality(q);
                }
            }
            let mask = dps_scope::core::QualityMask::from_store(
                &quality_store,
                dps_scope::core::DEFAULT_MIN_COVERAGE,
            );
            println!();
            println!(
                "{}",
                dps_scope::core::report::quality_summary(&quality_store, &mask)
            );
            // Telemetry summary, read from the TELEMETRY_SOURCE pages.
            let mut merged = dps_scope::telemetry::Snapshot::default();
            let mut telemetry_days = 0usize;
            for &(day, source) in archive.catalog().pages.keys() {
                if source != TELEMETRY_SOURCE {
                    continue;
                }
                let table = archive
                    .table(day, source)
                    .expect("catalog-listed page reads")
                    .expect("catalog-listed page exists");
                let snapshot =
                    dps_scope::measure::decode_telemetry(&table).expect("telemetry page decodes");
                merged.merge(&snapshot);
                telemetry_days += 1;
            }
            if telemetry_days > 0 {
                let instruments =
                    merged.counters.len() + merged.gauges.len() + merged.histograms.len();
                println!();
                println!(
                    "telemetry: {telemetry_days} day pages, {instruments} instruments \
                     (dump with `dpscope metrics`)"
                );
            }
        }
        "verify" => {
            let report = archive.verify().unwrap_or_else(|e| {
                eprintln!("verify failed: {e}");
                std::process::exit(1);
            });
            println!(
                "{}: {} pages checked, {} ok, {} corrupt",
                path.display(),
                report.pages,
                report.ok,
                report.corrupt.len()
            );
            for (day, source) in &report.corrupt {
                println!("  CORRUPT page (day {day}, source {source})");
            }
            if !report.all_ok() {
                std::process::exit(1);
            }
        }
        "cat" => {
            let source = args.source.unwrap_or(0);
            let cols: Option<Vec<&str>> = args
                .cols
                .as_ref()
                .map(|cs| cs.iter().map(String::as_str).collect());
            let table = match &cols {
                Some(c) => archive.project(args.day, source, c),
                None => archive.table(args.day, source),
            };
            let table = match table {
                Ok(Some(t)) => t,
                Ok(None) => {
                    eprintln!("no page for (day {}, source {source})", args.day);
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("cannot read page: {e}");
                    std::process::exit(1);
                }
            };
            let names = table.schema().names().to_vec();
            println!("{}", names.join("\t"));
            let columns: Vec<&[u32]> = (0..names.len()).map(|c| table.column(c)).collect();
            for row in 0..table.rows() {
                let line: Vec<String> = columns.iter().map(|c| c[row].to_string()).collect();
                println!("{}", line.join("\t"));
            }
        }
        other => {
            eprintln!("unknown store action {other:?}");
            usage();
        }
    }
}

/// `dpscope metrics <path> [--json] [--day N]` — render the telemetry
/// snapshots archived alongside a study's data pages. Without `--day`,
/// every per-day snapshot is merged (counters and histograms add; gauges
/// keep the latest day's level). Output order is sorted by metric name,
/// so same-seed sweeps render byte-identical dumps.
fn cmd_metrics(args: CommonArgs) {
    let json = args.rest.iter().any(|a| a == "--json");
    let Some(raw_path) = args.rest.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("metrics requires <archive-file-or-dir>");
        usage();
    };
    let mut path = PathBuf::from(raw_path);
    if path.is_dir() {
        path = path.join(dps_scope::measure::ARCHIVE_FILE);
    }
    let store = match SnapshotStore::load_archive(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    // `--day 0` is a valid selection, so presence is what matters.
    let day_selected = std::env::args().any(|a| a == "--day");
    let snapshot = if day_selected {
        match store.telemetry(args.day) {
            Some(s) => s.clone(),
            None => {
                eprintln!("no telemetry page for day {}", args.day);
                std::process::exit(1);
            }
        }
    } else {
        store.merged_telemetry()
    };
    if snapshot.is_empty() && !json {
        eprintln!("{}: no telemetry pages archived", path.display());
        std::process::exit(1);
    }
    if json {
        println!("{}", snapshot.to_json());
    } else {
        print!("{}", snapshot.to_text());
    }
    // `--by-worker`: append per-worker provenance counters from the
    // cluster sidecar, as a `worker="…"` label dimension. A separate
    // section, so the default (unlabelled) rendering stays byte-identical
    // with or without the sidecar present.
    if args.rest.iter().any(|a| a == "--by-worker") {
        let sidecar = path
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join(dps_scope::cluster::PROVENANCE_FILE);
        match dps_scope::cluster::read_provenance(&sidecar) {
            Ok(rows) => print!("{}", dps_scope::cluster::render_per_worker(&rows)),
            Err(e) => {
                eprintln!("cannot read {}: {e}", sidecar.display());
                std::process::exit(1);
            }
        }
    }
}

/// Opens an archive and replays its persisted analysis checkpoint pages
/// through a fresh [`StreamEngine`], in catalog (day-ascending) order —
/// the same path a resumed sweep takes. Exits with a message if the
/// archive holds no checkpoints (it was measured without `--stream`).
fn replay_stream_engine(path: &std::path::Path) -> (StoreReader, dps_scope::stream::StreamEngine) {
    let archive = match StoreReader::open_auto(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let mut engine = dps_scope::stream::StreamEngine::new();
    for &(day, source) in archive.catalog().pages.keys() {
        if source != ANALYSIS_SOURCE {
            continue;
        }
        let table = archive
            .table(day, source)
            .expect("catalog-listed page reads")
            .expect("catalog-listed page exists");
        if let Err(e) = engine.on_resume(day, &table) {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if engine.days().is_empty() {
        eprintln!(
            "{}: no analysis checkpoints (measure with --stream to create them)",
            path.display()
        );
        std::process::exit(1);
    }
    (archive, engine)
}

/// `dpscope stream status <path> [--json]` — what the streamed analysis
/// currently knows: analysed days, per-provider distinct-touch estimates
/// from the sketches, and flagged attack-onset days.
fn stream_status(path: &std::path::Path, json: bool) {
    let (_, engine) = replay_stream_engine(path);
    let names = engine.provider_names();
    let days = engine.days().to_vec();
    let flags = engine.attack_flags();
    if json {
        let mut providers = Vec::new();
        for (p, name) in names.iter().enumerate() {
            let p = p as u8;
            let series = engine.distinct_series(p);
            let latest = series.last().map_or(0, |&(_, est)| est);
            let fl: Vec<String> = flags
                .iter()
                .filter(|f| f.provider == p)
                .map(|f| {
                    format!(
                        "{{\"day\": {}, \"estimate\": {}, \"baseline\": {}}}",
                        f.day, f.estimate, f.baseline
                    )
                })
                .collect();
            providers.push(format!(
                "{{\"name\": {name:?}, \"distinct\": {}, \"flags\": [{}]}}",
                latest,
                fl.join(", ")
            ));
        }
        println!(
            "{{\"days\": {}, \"first_day\": {}, \"last_day\": {}, \"providers\": [{}]}}",
            days.len(),
            days.first().copied().unwrap_or(0),
            days.last().copied().unwrap_or(0),
            providers.join(", ")
        );
        return;
    }
    println!("archive:   {}", path.display());
    println!(
        "analysed:  {} days ({}..{})",
        days.len(),
        days.first().copied().unwrap_or(0),
        days.last().copied().unwrap_or(0)
    );
    println!("{:<14} {:>10} {:>6}", "provider", "distinct", "flags");
    for (p, name) in names.iter().enumerate() {
        let p = p as u8;
        let latest = engine.distinct_series(p).last().map_or(0, |&(_, est)| est);
        let n_flags = flags.iter().filter(|f| f.provider == p).count();
        println!("{name:<14} {latest:>10} {n_flags:>6}");
    }
    for f in &flags {
        let name = names
            .get(usize::from(f.provider))
            .cloned()
            .unwrap_or_default();
        println!(
            "flag: {name} day {} distinct ~{} (baseline ~{})",
            f.day, f.estimate, f.baseline
        );
    }
}

/// `dpscope stream check <path>` — the equivalence gate: the replayed
/// incremental state must render byte-identically to a full dps-core
/// rescan of the same archive. Exits 1 on any divergence.
fn stream_check(path: &std::path::Path) {
    let (archive, engine) = replay_stream_engine(path);
    let incremental = analysis_json(
        &engine.finalize(),
        &engine.provider_names(),
        &engine.masked_gtld_days(),
    );
    let store = match SnapshotStore::load_archive(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs)
        .run_store(&archive)
        .expect("archive rescan");
    let mask =
        dps_scope::core::QualityMask::from_store(&store, dps_scope::core::DEFAULT_MIN_COVERAGE);
    let rescan = analysis_json(&out, &refs.names, &mask.masked_gtld_days());
    if incremental == rescan {
        println!(
            "{}: incremental analysis matches full rescan ({} days, {} analysis bytes)",
            path.display(),
            engine.days().len(),
            incremental.len()
        );
    } else {
        eprintln!(
            "{}: DIVERGENCE between streamed state and full rescan\n\
             incremental: {incremental}\n\
             rescan:      {rescan}",
            path.display()
        );
        std::process::exit(1);
    }
}

/// `dpscope stream correlate <path>` — score flagged attack-onset days
/// against the scenario's labelled mass on-demand activations. The
/// scenario parameters must match the ones the archive was measured
/// with (they are not stored in the archive).
fn stream_correlate(args: &CommonArgs, path: &std::path::Path) {
    let (_, engine) = replay_stream_engine(path);
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let truth = activation_days(params);
    let flags = engine.attack_flags();
    let names = engine.provider_names();
    let c = correlate(&flags, &truth, DEFAULT_TOLERANCE);
    let name = |p: u8| names.get(usize::from(p)).cloned().unwrap_or_default();
    println!(
        "scenario: seed {} scale {} days {} cc-start {} (tolerance ±{} days)",
        args.seed, args.scale, args.days, args.cc_start, c.tolerance
    );
    println!(
        "flags: {} matched, {} unmatched; activations: {} labelled, {} missed",
        c.matched.len(),
        c.unmatched_flags.len(),
        c.activations.len(),
        c.missed.len()
    );
    for f in &c.matched {
        println!(
            "  matched   {} day {} (distinct ~{})",
            name(f.provider),
            f.day,
            f.estimate
        );
    }
    for f in &c.unmatched_flags {
        println!(
            "  unmatched {} day {} (distinct ~{})",
            name(f.provider),
            f.day,
            f.estimate
        );
    }
    for &(p, day) in &c.missed {
        println!("  missed    {} activation day {day}", name(p));
    }
}

/// `dpscope stream <status|check|correlate> <path>` — inspect, verify,
/// or ground-truth-score the incremental analysis checkpoints.
fn cmd_stream(args: CommonArgs) {
    let json = args.rest.iter().any(|a| a == "--json");
    let mut positional = args.rest.iter().filter(|a| !a.starts_with("--"));
    let (Some(action), Some(raw_path)) = (positional.next(), positional.next()) else {
        eprintln!("stream requires <status|check|correlate> <archive-file-or-dir>");
        usage();
    };
    let mut path = PathBuf::from(raw_path);
    if path.is_dir() {
        path = path.join(dps_scope::measure::ARCHIVE_FILE);
    }
    match action.as_str() {
        "status" => stream_status(&path, json),
        "check" => stream_check(&path),
        "correlate" => stream_correlate(&args, &path),
        other => {
            eprintln!("unknown stream action {other:?}");
            usage();
        }
    }
}

fn cmd_analyze(args: CommonArgs) {
    let config = ExperimentConfig {
        seed: args.seed,
        scale: args.scale,
        days: args.days,
        cc_start: args.cc_start,
        stride: args.stride,
        out_dir: args.out.clone(),
        store_dir: args.archive.clone(),
    };
    let ids = if args.rest.is_empty() {
        vec!["all".to_string()]
    } else {
        args.rest.clone()
    };
    let ctx = Context::build(config);
    for id in ids {
        match run(&ctx, &id) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment {id:?}");
                usage();
            }
        }
    }
}

/// Answer-section renderer shared by the simulated and real-socket dig
/// paths: status line, then one record per line.
fn print_dig_answer(rcode: Rcode, answers: &[Record], suffix: &str) {
    println!(";; status: {rcode}{suffix}");
    for rec in answers {
        println!("{rec}");
    }
}

/// Splits `udp://host:port` / `tcp://host:port` into (is_tcp, addr).
fn parse_server_url(url: &str) -> (bool, &str) {
    if let Some(addr) = url.strip_prefix("udp://") {
        (false, addr)
    } else if let Some(addr) = url.strip_prefix("tcp://") {
        (true, addr)
    } else {
        eprintln!("--server wants udp://host:port or tcp://host:port, got {url:?}");
        usage();
    }
}

/// One DNS exchange over real TCP: length-framed write, framed read.
fn tcp_exchange(addr: &str, query: &[u8]) -> std::io::Result<Vec<u8>> {
    use std::io::{Read as _, Write as _};
    let mut sock = std::net::TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let len = u16::try_from(query.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "query exceeds 64 KiB")
    })?;
    sock.write_all(&len.to_be_bytes())?;
    sock.write_all(query)?;
    let mut hdr = [0u8; 2];
    sock.read_exact(&mut hdr)?;
    let mut body = vec![0u8; usize::from(u16::from_be_bytes(hdr))];
    sock.read_exact(&mut body)?;
    Ok(body)
}

/// One DNS exchange over real UDP.
fn udp_exchange(addr: &str, query: &[u8]) -> std::io::Result<Vec<u8>> {
    let sock = std::net::UdpSocket::bind("127.0.0.1:0")
        .or_else(|_| std::net::UdpSocket::bind("0.0.0.0:0"))?;
    sock.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    sock.send_to(query, addr)?;
    let mut buf = vec![0u8; 65535];
    let (n, _) = sock.recv_from(&mut buf)?;
    buf.truncate(n);
    Ok(buf)
}

/// `dpscope dig … --server URL`: query a real authoritative server over
/// UDP or TCP, with EDNS0 by default and automatic TCP retry on TC.
fn dig_real(args: &CommonArgs, qname: &Name, qtype: RrType, bufsize: Option<u16>) {
    let Some(url) = &args.server else {
        unreachable!("caller checked --server");
    };
    let (tcp, addr) = parse_server_url(url);
    let id = (args.seed & 0xFFFF) as u16;
    let mut query = Message::query(id, Question::new(qname.clone(), qtype));
    if let Some(size) = bufsize {
        query
            .additionals
            .push(dps_scope::serve::edns::opt_record(size, 0));
    }
    let bytes = query.to_bytes().expect("well-formed query encodes");
    let exchange = |tcp: bool| -> Vec<u8> {
        let res = if tcp {
            tcp_exchange(addr, &bytes)
        } else {
            udp_exchange(addr, &bytes)
        };
        res.unwrap_or_else(|e| {
            eprintln!(";; network error talking to {addr}: {e}");
            std::process::exit(1);
        })
    };
    let mut raw = exchange(tcp);
    let mut resp = Message::parse(&raw).unwrap_or_else(|e| {
        eprintln!(";; malformed response from {addr}: {e:?}");
        std::process::exit(1);
    });
    if resp.header.tc && !tcp {
        println!(";; truncated, retrying over TCP");
        raw = exchange(true);
        resp = Message::parse(&raw).unwrap_or_else(|e| {
            eprintln!(";; malformed TCP response from {addr}: {e:?}");
            std::process::exit(1);
        });
    }
    println!("; <<>> dpscope dig <<>> {qname} {qtype} @{url}");
    print_dig_answer(
        resp.header.rcode,
        &resp.answers,
        &format!(", {} bytes", raw.len()),
    );
}

fn cmd_dig(args: CommonArgs) {
    // dig-style +key=value options ride along in the positional list.
    let mut config = ResolverConfig::default();
    let mut positional = Vec::new();
    let mut bufsize: Option<u16> = Some(1232);
    for arg in &args.rest {
        if let Some(opt) = arg.strip_prefix('+') {
            match opt.split_once('=') {
                Some(("tries", v)) => {
                    config.retries = v.parse().unwrap_or_else(|_| {
                        eprintln!("bad +tries value {v:?}");
                        usage();
                    })
                }
                Some(("timeout", v)) => {
                    let ms: u64 = v.parse().unwrap_or_else(|_| {
                        eprintln!("bad +timeout value {v:?} (milliseconds)");
                        usage();
                    });
                    config.attempt_timeout_us = ms.saturating_mul(1_000);
                }
                Some(("bufsize", v)) => {
                    bufsize = Some(v.parse().unwrap_or_else(|_| {
                        eprintln!("bad +bufsize value {v:?}");
                        usage();
                    }))
                }
                None if opt == "noedns" => bufsize = None,
                _ => {
                    eprintln!(
                        "unknown dig option +{opt} \
                         (want +tries=N, +timeout=MS, +bufsize=N, +noedns)"
                    );
                    usage();
                }
            }
        } else {
            positional.push(arg.clone());
        }
    }
    if positional.len() < 2 {
        eprintln!("dig requires <name> <type>");
        usage();
    }
    let qname: Name = positional[0].parse().expect("valid name");
    let qtype: RrType = positional[1].parse().expect("valid RR type");
    if args.server.is_some() {
        dig_real(&args, &qname, qtype, bufsize);
        return;
    }
    let world = world_for(&args);
    let net = Network::new(args.seed);
    let catalog = world.materialize(&net);
    let mut resolver = Resolver::new(
        &net,
        "172.16.0.53".parse().unwrap(),
        0,
        catalog.root_hints(),
    )
    .with_config(config);
    println!("; <<>> dpscope dig <<>> {qname} {qtype} @day {}", args.day);
    match resolver.resolve(&qname, qtype) {
        Ok(res) => print_dig_answer(
            res.rcode,
            &res.answers,
            &format!(", elapsed: {} µs (virtual)", res.elapsed_us),
        ),
        Err(e) => println!(";; resolution failed: {e} (cause: {})", e.cause().label()),
    }
}

/// `dpscope serve --zones DIR [--udp ADDR] [--tcp ADDR]`: authoritative
/// DNS over real sockets, hardened against hostile input. Runs until
/// stdin reaches EOF (the workspace denies `unsafe`, so a portable pipe
/// close stands in for signal handling), then shuts down cleanly and
/// dumps its telemetry counters.
fn cmd_serve(args: CommonArgs) {
    use std::io::BufRead as _;
    let Some(zones) = args.zones.clone() else {
        eprintln!("serve requires --zones DIR");
        usage();
    };
    let mut opts = dps_scope::serve::ServeOptions::new(zones);
    let parse_addr = |flag: &str, s: &String| -> std::net::SocketAddr {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad {flag} address {s:?}");
            usage();
        })
    };
    if let Some(u) = &args.udp {
        opts.udp_addr = parse_addr("--udp", u);
    }
    if let Some(t) = &args.tcp {
        opts.tcp_addr = parse_addr("--tcp", t);
    }
    let registry = Registry::new();
    let server = dps_scope::serve::Server::start(opts, &registry).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(1);
    });
    println!(
        "serve: listening udp={} tcp={}",
        server.udp_addr(),
        server.tcp_addr()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    while stdin.lock().read_line(&mut line).is_ok_and(|n| n > 0) {
        line.clear();
    }
    server.shutdown();
    // The supervising process may have dropped our stdout already; a
    // closed pipe must not turn a clean shutdown into a panic.
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "serve: shutdown");
    let _ = write!(out, "{}", registry.snapshot().to_text());
}

/// Reads the checked-in corpus for one fuzz target, sorted by file name
/// so runs are deterministic regardless of directory iteration order.
fn load_fuzz_corpus(target: &str) -> Vec<Vec<u8>> {
    let dir = PathBuf::from("crates/fuzz/corpus").join(target);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    paths.iter().filter_map(|p| std::fs::read(p).ok()).collect()
}

/// `dpscope fuzz <target|all> --iters N --seed S`: the deterministic
/// mutation fuzzer over the workspace's untrusted-input decoders. Exits
/// nonzero if any target panics or violates a round-trip invariant, and
/// drops the offending inputs under target/fuzz-artifacts/.
fn cmd_fuzz(args: CommonArgs) {
    let Some(which) = args.rest.first() else {
        eprintln!("fuzz requires <target|all>; targets:");
        for t in dps_scope::fuzz::targets::TARGETS {
            eprintln!("  {:<13} {}", t.name, t.about);
        }
        usage();
    };
    let targets: Vec<&dps_scope::fuzz::targets::Target> = if which == "all" {
        dps_scope::fuzz::targets::TARGETS.iter().collect()
    } else {
        match dps_scope::fuzz::targets::find_target(which) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown fuzz target {which:?}; targets:");
                for t in dps_scope::fuzz::targets::TARGETS {
                    eprintln!("  {:<13} {}", t.name, t.about);
                }
                std::process::exit(2);
            }
        }
    };
    let mut failed = false;
    for target in targets {
        let corpus = load_fuzz_corpus(target.name);
        let outcome = dps_scope::fuzz::fuzz(target, args.iters, args.seed, &corpus, 8);
        println!(
            "fuzz {:<13} seed {:>6}  {:>8} iters  corpus {:>2}  failures {}",
            target.name,
            args.seed,
            outcome.iters,
            outcome.corpus_size,
            outcome.failures.len()
        );
        for (i, f) in outcome.failures.iter().enumerate() {
            failed = true;
            let hex: String = f.minimised.iter().map(|b| format!("{b:02x}")).collect();
            println!(
                "  FAIL {}: {} (minimised {} bytes: {hex})",
                i,
                f.reason,
                f.minimised.len()
            );
            let dir = PathBuf::from("target/fuzz-artifacts");
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join(format!("{}-{i}.bin", target.name));
                if std::fs::write(&path, &f.minimised).is_ok() {
                    println!("  artifact: {}", path.display());
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match command.as_str() {
        "simulate" => cmd_simulate(args),
        "measure" => cmd_measure(args),
        "analyze" => cmd_analyze(args),
        "dig" => cmd_dig(args),
        "store" => cmd_store(args),
        "metrics" => cmd_metrics(args),
        "cluster" => cmd_cluster(args),
        "stream" => cmd_stream(args),
        "serve" => cmd_serve(args),
        "fuzz" => cmd_fuzz(args),
        _ => usage(),
    }
}
