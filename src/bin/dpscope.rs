//! `dpscope` — the command-line face of the reproduction.
//!
//! ```sh
//! # Export the simulated Internet's artifacts for a day:
//! dpscope simulate --scale 0.01 --day 7 --out target/world
//!
//! # Run the measurement study and archive it:
//! dpscope measure --scale 0.05 --days 120 --archive target/archive
//!
//! # Regenerate every table/figure from an archive (or fresh):
//! dpscope analyze --scale 0.05 --days 120 --archive target/archive --out target/figs all
//!
//! # Resolve a name through the simulated Internet, dig-style:
//! dpscope dig d42.com A --day 7
//! ```

use dps_bench::experiments::{experiment_ids, run, Context, ExperimentConfig};
use dps_scope::authdns::Resolver;
use dps_scope::prelude::*;
use std::path::PathBuf;

struct CommonArgs {
    seed: u64,
    scale: f64,
    days: u32,
    cc_start: u32,
    stride: u32,
    day: u32,
    out: PathBuf,
    archive: Option<PathBuf>,
    rest: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dpscope <command> [options]\n\
         \n\
         commands:\n\
           simulate   export zone files, pfx2as and AS registry for --day\n\
           measure    run the full study, save the archive to --archive\n\
           analyze    regenerate tables/figures (ids or 'all') from --archive\n\
           dig        resolve <name> <type> through the simulated Internet\n\
         \n\
         options:\n\
           --seed N       world seed           (default 2016)\n\
           --scale X      population scale     (default 1.0 = 1/1000 real)\n\
           --days N       study length         (default 550)\n\
           --cc-start N   .nl/Alexa start day  (default 366)\n\
           --stride N     measure every Nth day (default 1)\n\
           --day N        day for simulate/dig (default 0)\n\
           --out DIR      output directory     (default target/dpscope)\n\
           --archive DIR  measurement archive directory\n\
         \n\
         analyze ids: {}",
        experiment_ids().join(", ")
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> CommonArgs {
    let mut common = CommonArgs {
        seed: 2016,
        scale: 1.0,
        days: 550,
        cc_start: 366,
        stride: 1,
        day: 0,
        out: PathBuf::from("target/dpscope"),
        archive: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => common.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--scale" => common.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--days" => common.days = value("--days").parse().unwrap_or_else(|_| usage()),
            "--cc-start" => {
                common.cc_start = value("--cc-start").parse().unwrap_or_else(|_| usage())
            }
            "--stride" => common.stride = value("--stride").parse().unwrap_or_else(|_| usage()),
            "--day" => common.day = value("--day").parse().unwrap_or_else(|_| usage()),
            "--out" => common.out = value("--out").into(),
            "--archive" => common.archive = Some(value("--archive").into()),
            "-h" | "--help" => usage(),
            other => common.rest.push(other.to_string()),
        }
    }
    if common.cc_start >= common.days {
        common.cc_start = common.days.saturating_mul(2) / 3;
    }
    common
}

fn world_for(args: &CommonArgs) -> World {
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(args.day));
    world
}

fn cmd_simulate(args: CommonArgs) {
    let world = world_for(&args);
    std::fs::create_dir_all(&args.out).expect("create out dir");
    for tld in dps_scope::ecosystem::MEASURED_TLDS {
        let path = args.out.join(format!("{}.zone", tld.label()));
        std::fs::write(&path, world.zone_file_text(tld)).expect("write zone");
        println!("wrote {} ({} SLDs)", path.display(), world.zone_size(tld));
    }
    let pfx2as = world.pfx2as();
    let path = args.out.join(format!("pfx2as-day{:04}.txt", args.day));
    std::fs::write(&path, pfx2as.to_routeviews_text()).expect("write pfx2as");
    println!("wrote {} ({} prefixes)", path.display(), pfx2as.len());

    let mut asns = String::new();
    for (asn, name) in world.as_registry().iter() {
        asns.push_str(&format!("{asn}\t{name}\n"));
    }
    let path = args.out.join("as-names.tsv");
    std::fs::write(&path, asns).expect("write as names");
    println!("wrote {}", path.display());
    println!(
        "\nworld: {} domains, day {} ({})",
        world.domains().len(),
        args.day,
        Day(args.day)
    );
}

fn cmd_measure(args: CommonArgs) {
    let Some(archive) = args.archive.clone() else {
        eprintln!("measure requires --archive DIR");
        usage();
    };
    let params = ScenarioParams {
        seed: args.seed,
        scale: args.scale,
        gtld_days: args.days,
        cc_start_day: args.cc_start,
    };
    let mut world = World::imc2016(params);
    println!(
        "world: {} domains; sweeping {} days…",
        world.domains().len(),
        args.days
    );
    let store = Study::new(StudyConfig {
        days: args.days,
        cc_start_day: args.cc_start,
        stride: args.stride,
    })
    .run(&mut world);
    store.save_dir(&archive).expect("save archive");
    println!(
        "archived {} to {}",
        dps_scope::core::report::human_bytes(store.total_stored_bytes()),
        archive.display()
    );
}

fn cmd_analyze(args: CommonArgs) {
    let config = ExperimentConfig {
        seed: args.seed,
        scale: args.scale,
        days: args.days,
        cc_start: args.cc_start,
        stride: args.stride,
        out_dir: args.out.clone(),
        store_dir: args.archive.clone(),
    };
    let ids = if args.rest.is_empty() {
        vec!["all".to_string()]
    } else {
        args.rest.clone()
    };
    let ctx = Context::build(config);
    for id in ids {
        match run(&ctx, &id) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment {id:?}");
                usage();
            }
        }
    }
}

fn cmd_dig(args: CommonArgs) {
    if args.rest.len() < 2 {
        eprintln!("dig requires <name> <type>");
        usage();
    }
    let qname: Name = args.rest[0].parse().expect("valid name");
    let qtype: RrType = args.rest[1].parse().expect("valid RR type");
    let world = world_for(&args);
    let net = Network::new(args.seed);
    let catalog = world.materialize(&net);
    let mut resolver = Resolver::new(
        &net,
        "172.16.0.53".parse().unwrap(),
        0,
        catalog.root_hints(),
    );
    println!("; <<>> dpscope dig <<>> {qname} {qtype} @day {}", args.day);
    match resolver.resolve(&qname, qtype) {
        Ok(res) => {
            println!(
                ";; status: {}, elapsed: {} µs (virtual)",
                res.rcode, res.elapsed_us
            );
            for rec in &res.answers {
                println!("{rec}");
            }
        }
        Err(e) => println!(";; resolution failed: {e}"),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match command.as_str() {
        "simulate" => cmd_simulate(args),
        "measure" => cmd_measure(args),
        "analyze" => cmd_analyze(args),
        "dig" => cmd_dig(args),
        _ => usage(),
    }
}
