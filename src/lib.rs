//! # dps-scope
//!
//! A full reproduction of *"Measuring the Adoption of DDoS Protection
//! Services"* (Jonker et al., ACM IMC 2016) as a Rust workspace: the
//! detection methodology, an OpenINTEL-style active-DNS measurement
//! pipeline, a columnar storage + MapReduce analysis substrate, a
//! from-scratch DNS implementation, a simulated Internet (prefixes, BGP
//! origins, lossy UDP), and a calibrated synthetic domain ecosystem that
//! stands in for the 2015–2016 namespace.
//!
//! The pieces compose like this:
//!
//! ```text
//! ecosystem (World)  ──zone files / DNS answers / pfx2as──►  measure (Study)
//!        │                                                        │
//!        │ ground truth                                           ▼
//!        ▼                                               SnapshotStore (columnar)
//!   validation                                                    │
//!                                                                 ▼
//!                              core (Scanner → series/timelines → growth,
//!                                    peaks, flux, discovery, attribution)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dps_scope::prelude::*;
//!
//! // A small world: ~1/100 000 of the real namespace, 30 days.
//! let params = ScenarioParams { seed: 7, scale: 0.02, gtld_days: 30, cc_start_day: 20 };
//! let mut world = World::imc2016(params);
//!
//! // Run the measurement study (stage I–III) over the whole window.
//! let store = Study::new(StudyConfig { days: 30, cc_start_day: 20, stride: 1 }).run(&mut world);
//!
//! // Classify every domain-day against the paper's Table 2 references.
//! let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
//! let out = Scanner::new(&refs).run(&store);
//! assert_eq!(out.series.days.len(), 30);
//! assert!(out.series.combined_any()[0] > 0);
//! ```

pub use dps_authdns as authdns;
pub use dps_cluster as cluster;
pub use dps_columnar as columnar;
pub use dps_core as core;
pub use dps_dns as dns;
pub use dps_ecosystem as ecosystem;
pub use dps_fuzz as fuzz;
pub use dps_measure as measure;
pub use dps_netsim as netsim;
pub use dps_recursor as recursor;
pub use dps_serve as serve;
pub use dps_store as store;
pub use dps_stream as stream;
pub use dps_telemetry as telemetry;

/// The things almost every user needs, in one import.
pub mod prelude {
    pub use dps_authdns::{HealthConfig, HealthTracker};
    pub use dps_core::discovery::{discover, seeds_from_registry, DiscoveryConfig};
    pub use dps_core::growth::{analyze as growth_analyze, GrowthConfig};
    pub use dps_core::{CompiledRefs, ProviderRefs, QualityMask, ScanOutput, Scanner};
    pub use dps_dns::{Message, Name, Question, RData, Rcode, Record, RrType};
    pub use dps_ecosystem::{Diversion, DomainId, ScenarioParams, Tld, World};
    pub use dps_measure::{
        DayQuality, SnapshotStore, Source, Study, StudyConfig, SupervisorConfig,
    };
    pub use dps_netsim::{ChaosSchedule, Day, FaultProfile, Network, Prefix};
    pub use dps_recursor::{Recursor, RecursorConfig, SweepScheduler};
    pub use dps_store::{Archive, ArchiveWriter, ScanQuery, StoreReader, StoreWriter};
    pub use dps_stream::{KmvSketch, StreamEngine};
}

/// The nine provider marketing names, used to seed reference discovery.
pub const PROVIDER_KEYWORDS: [&str; 9] = [
    "Akamai",
    "CenturyLink",
    "CloudFlare",
    "DOSarrest",
    "F5",
    "Incapsula",
    "Level 3",
    "Neustar",
    "VeriSign",
];
