//! Property tests over the world generator: for random seeds and days,
//! every domain's DNS footprint must be consistent with its ground-truth
//! diversion state and the providers' Table 2 reference data. These
//! invariants are what make the detection-accuracy numbers meaningful.

use dps_scope::ecosystem::spec::{self, PROVIDERS};
use dps_scope::ecosystem::{Diversion, DomainId, ScenarioParams, World};
use dps_scope::prelude::*;
use proptest::prelude::*;
use std::net::IpAddr;

fn check_world(seed: u64, day: u32) -> Result<(), TestCaseError> {
    let params = ScenarioParams {
        seed,
        scale: 0.004,
        gtld_days: 60,
        cc_start_day: 30,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(day));
    let pfx2as = world.pfx2as();

    for (i, st) in world.domains().iter().enumerate() {
        if !st.alive_on(Day(day)) {
            continue;
        }
        let id = DomainId(i as u32);
        let apex = world.domain_name(id);
        let res = match world.resolve(&apex, RrType::A) {
            Ok(r) => r,
            Err(_) => {
                // Only outage baskets may fail.
                prop_assert!(
                    st.outage
                        || st
                            .basket
                            .is_some_and(|(b, _)| world.baskets()[b.0 as usize].outage),
                    "{apex} failed without outage"
                );
                continue;
            }
        };
        prop_assert_eq!(res.rcode, Rcode::NoError, "{} must resolve", &apex);
        let addr = res
            .answers
            .iter()
            .find_map(|r| match r.rdata {
                RData::A(ip) => Some(IpAddr::V4(ip)),
                _ => None,
            })
            .expect("alive domains answer A");
        let origin = pfx2as.origins(addr).map(|(o, _)| o[0].0);

        match st.diversion {
            Diversion::ARecord(p) | Diversion::Cname(p) | Diversion::NsDelegation(p) => {
                // Traffic diverted: origin must be one of the provider's ASes.
                let asns = PROVIDERS[p.0 as usize].asns;
                prop_assert!(
                    origin.is_some_and(|o| asns.contains(&o)),
                    "{} diverted to {:?} but origin {:?}",
                    &apex,
                    st.diversion,
                    origin
                );
            }
            Diversion::Bgp(p) => {
                let asns = PROVIDERS[p.0 as usize].asns;
                prop_assert!(
                    origin.is_some_and(|o| asns.contains(&o)),
                    "{} BGP-diverted but origin {:?}",
                    &apex,
                    origin
                );
            }
            Diversion::None | Diversion::NsOnly(_) => {
                // Not diverted: origin must NOT be any provider's mitigation AS.
                if let Some(o) = origin {
                    let provider_as = PROVIDERS.iter().any(|p| p.asns.contains(&o));
                    prop_assert!(
                        !provider_as,
                        "{} undiverted but origin AS{} is a provider",
                        &apex,
                        o
                    );
                }
            }
        }

        // NS references follow delegation state.
        let ns_res = world.resolve(&apex, RrType::Ns).unwrap();
        for rec in ns_res.records_of(RrType::Ns) {
            if let RData::Ns(host) = &rec.rdata {
                let mut sld = host.sld().to_string();
                sld.pop();
                match st.diversion {
                    Diversion::NsDelegation(p) | Diversion::NsOnly(p) => {
                        prop_assert!(
                            PROVIDERS[p.0 as usize].ns_slds.contains(&sld.as_str()),
                            "{} delegated to {:?} but NS {}",
                            &apex,
                            st.diversion,
                            host
                        );
                    }
                    _ => {
                        let hoster_sld = spec::HOSTERS[st.hoster.0 as usize].ns_sld;
                        prop_assert_eq!(&sld, hoster_sld, "{} undelegated but NS {}", &apex, host);
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn footprints_match_ground_truth(seed in 0u64..10_000, day in 0u32..60) {
        check_world(seed, day)?;
    }
}

#[test]
fn footprints_hold_on_scripted_anomaly_days() {
    // Days straddling the scripted Wix/ENOM events.
    for day in [0, 2, 4, 6, 20, 30, 45, 59] {
        check_world(4242, day).unwrap();
    }
}
