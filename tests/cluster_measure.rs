//! Integration: the real `dpscope` binary running a multi-process
//! cluster sweep over Unix sockets produces an archive byte-identical
//! to its own single-process sweep, with per-worker provenance.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};

const SCENARIO: [&str; 8] = [
    "--seed",
    "2016",
    "--scale",
    "0.004",
    "--days",
    "3",
    "--cc-start",
    "2",
];

fn dpscope() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dpscope"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dps-it-cluster-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_measure(archive: &Path, extra: &[&str]) {
    let status = dpscope()
        .arg("measure")
        .args(SCENARIO)
        .args(["--archive", archive.to_str().expect("utf8 path")])
        .args(extra)
        .status()
        .expect("spawn dpscope measure");
    assert!(status.success(), "dpscope measure {extra:?} failed");
}

fn archive_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("archive.dps")).expect("read archive.dps")
}

#[test]
fn forked_two_worker_sweep_is_byte_identical_with_provenance() {
    let single = temp_dir("single");
    let multi = temp_dir("multi");
    run_measure(&single, &[]);
    // --workers forks two real agent processes connected over a Unix
    // socket in the archive directory.
    run_measure(&multi, &["--workers", "2"]);
    assert_eq!(
        archive_bytes(&single),
        archive_bytes(&multi),
        "cluster archive must be byte-identical to the single-process run"
    );

    let provenance =
        std::fs::read_to_string(multi.join("provenance.tsv")).expect("provenance sidecar");
    assert!(
        provenance.lines().any(|l| l.contains("local-")),
        "provenance records forked-worker leases:\n{provenance}"
    );

    // Per-worker metrics ride the provenance sidecar; the default
    // rendering (no flag) must stay untouched by the worker dimension.
    let plain = dpscope()
        .arg("metrics")
        .arg(&multi)
        .output()
        .expect("dpscope metrics");
    assert!(plain.status.success());
    let plain_text = String::from_utf8_lossy(&plain.stdout).into_owned();
    assert!(!plain_text.contains("worker=\""), "{plain_text}");

    let labeled = dpscope()
        .arg("metrics")
        .arg(&multi)
        .arg("--by-worker")
        .output()
        .expect("dpscope metrics --by-worker");
    assert!(labeled.status.success());
    let labeled_text = String::from_utf8_lossy(&labeled.stdout).into_owned();
    assert!(
        labeled_text.contains("cluster.rows{worker=\"local-"),
        "{labeled_text}"
    );

    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&multi).ok();
}

#[test]
fn explicit_serve_and_agents_over_unix_socket_match_single_process() {
    let single = temp_dir("serve-single");
    let served = temp_dir("serve-multi");
    run_measure(&single, &[]);

    std::fs::create_dir_all(&served).expect("archive dir");
    let sock = served.join("cluster.sock");
    let sock_arg = sock.to_str().expect("utf8 path").to_owned();
    // --min-workers holds leases until both agents have joined, so a
    // slow-starting agent on a loaded machine cannot miss the whole
    // sweep (and then fail to connect after the manager exits).
    let mut manager = dpscope()
        .arg("cluster")
        .arg("serve")
        .args(SCENARIO)
        .args(["--bind", &sock_arg])
        .args(["--archive", served.to_str().expect("utf8 path")])
        .args(["--min-workers", "2"])
        .spawn()
        .expect("spawn cluster serve");

    // Agents retry the connect internally until the manager is up.
    let agents: Vec<Child> = (0..2)
        .map(|i| {
            dpscope()
                .arg("cluster")
                .arg("agent")
                .args(["--connect", &sock_arg])
                .args(["--name", &format!("ext-{i}")])
                .spawn()
                .expect("spawn cluster agent")
        })
        .collect();

    let status = manager.wait().expect("manager exit");
    assert!(status.success(), "cluster serve failed");
    for mut agent in agents {
        let status = agent.wait().expect("agent exit");
        assert!(status.success(), "cluster agent failed");
    }

    assert_eq!(
        archive_bytes(&single),
        archive_bytes(&served),
        "served archive must be byte-identical to the single-process run"
    );
    let provenance =
        std::fs::read_to_string(served.join("provenance.tsv")).expect("provenance sidecar");
    for agent in ["ext-0", "ext-1"] {
        assert!(
            provenance.lines().any(|l| l.contains(agent)),
            "quorum-gated sweep must lease to {agent}:\n{provenance}"
        );
    }

    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&served).ok();
}
