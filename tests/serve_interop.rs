//! Integration: `dpscope serve` is a real authoritative DNS server.
//!
//! Spawns the actual binary listening on loopback, queries it over real
//! UDP and TCP sockets, and holds it to the simulated path's semantics:
//! a plain (no-EDNS) response must be **byte-identical** to what the
//! in-process `AuthServer` produces for the same zone and query. EDNS0
//! truncation edges (512 → TC over UDP, full answer over TCP) and the
//! clean stdin-EOF shutdown are exercised over the wire too.

use dps_scope::authdns::{zonefile, AuthServer};
use dps_scope::prelude::*;
use dps_scope::serve::edns::opt_record;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const ZONE_TEXT: &str = "\
$ORIGIN examp.le.
@ IN NS ns1.examp.le.
ns1 IN A 10.0.0.53
www IN A 10.0.0.80
www IN AAAA fd00::80
note IN TXT \"quoted; string\" \"second\"
";

/// Enough TXT data on one name to overflow a 512-byte UDP response.
fn fat_records() -> String {
    let mut out = String::new();
    for i in 0..24 {
        out.push_str(&format!(
            "fat IN TXT \"{}\"\n",
            format!("{i:02}").repeat(20)
        ));
    }
    out
}

struct ServeProc {
    child: Child,
    stdin: Option<ChildStdin>,
    /// Held open so the server never sees a broken stdout pipe.
    stdout: BufReader<std::process::ChildStdout>,
    udp: String,
    tcp: String,
}

impl ServeProc {
    fn spawn(zone_dir: &std::path::Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dpscope"))
            .args(["serve", "--zones"])
            .arg(zone_dir)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn dpscope serve");
        let stdin = child.stdin.take();
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read listen line");
        let field = |key: &str| -> String {
            line.split_whitespace()
                .find_map(|w| w.strip_prefix(key))
                .unwrap_or_else(|| panic!("no {key} in {line:?}"))
                .to_string()
        };
        Self {
            child,
            stdin,
            stdout,
            udp: field("udp="),
            tcp: field("tcp="),
        }
    }

    fn udp_exchange(&self, query: &[u8]) -> Vec<u8> {
        let sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.send_to(query, &self.udp).expect("send");
        let mut buf = vec![0u8; 65535];
        let (n, _) = sock.recv_from(&mut buf).expect("recv");
        buf.truncate(n);
        buf
    }

    fn tcp_exchange(&self, query: &[u8]) -> Vec<u8> {
        let mut sock = std::net::TcpStream::connect(&self.tcp).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let len = u16::try_from(query.len()).expect("query fits a frame");
        sock.write_all(&len.to_be_bytes()).unwrap();
        sock.write_all(query).unwrap();
        let mut hdr = [0u8; 2];
        sock.read_exact(&mut hdr).expect("frame header");
        let mut body = vec![0u8; usize::from(u16::from_be_bytes(hdr))];
        sock.read_exact(&mut body).expect("frame body");
        body
    }

    /// Closes stdin and asserts the process exits cleanly, returning
    /// the shutdown telemetry dump.
    fn shutdown(mut self) -> String {
        drop(self.stdin.take());
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve exited {status:?}");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        rest
    }
}

fn zone_dir() -> tempdir::TempDirLike {
    tempdir::TempDirLike::new("serve-interop")
}

/// Minimal self-contained temp-dir helper (no external crates).
mod tempdir {
    use std::sync::atomic::{AtomicU32, Ordering};

    static SEQ: AtomicU32 = AtomicU32::new(0);

    pub struct TempDirLike(std::path::PathBuf);

    impl TempDirLike {
        pub fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dps-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            Self(dir)
        }

        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TempDirLike {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }
}

fn n(s: &str) -> Name {
    s.parse().unwrap()
}

/// The simulated path: the same zone served by an in-process AuthServer.
fn reference_server(extra: &str) -> Arc<AuthServer> {
    let zone = zonefile::parse_zone(&n("examp.le"), &format!("{ZONE_TEXT}{extra}"))
        .expect("reference zone parses");
    let srv = AuthServer::new();
    srv.serve_zone(Arc::new(parking_lot::RwLock::new(zone)));
    srv
}

fn write_zone(dir: &std::path::Path, extra: &str) {
    std::fs::write(dir.join("examp.le.zone"), format!("{ZONE_TEXT}{extra}"))
        .expect("write zone file");
}

#[test]
fn real_serve_answers_byte_match_the_simulated_path() {
    let dir = zone_dir();
    write_zone(dir.path(), "");
    let serve = ServeProc::spawn(dir.path());
    let reference = reference_server("");

    for (id, qname, qtype) in [
        (0x1111u16, "www.examp.le", RrType::A),
        (0x2222, "www.examp.le", RrType::Aaaa),
        (0x3333, "note.examp.le", RrType::Txt),
        (0x4444, "examp.le", RrType::Ns),
        (0x5555, "missing.examp.le", RrType::A),
        (0x6666, "unserved.zz", RrType::A),
    ] {
        let query = Message::query(id, Question::new(n(qname), qtype));
        let wire = query.to_bytes().expect("query encodes");
        let expected = reference
            .answer(&query)
            .expect("reference answers")
            .to_bytes()
            .expect("reference encodes");
        let udp = serve.udp_exchange(&wire);
        assert_eq!(udp, expected, "UDP bytes diverge for {qname} {qtype}");
        let tcp = serve.tcp_exchange(&wire);
        assert_eq!(tcp, expected, "TCP bytes diverge for {qname} {qtype}");
    }
    serve.shutdown();
}

#[test]
fn edns_sizes_gate_truncation_and_tcp_carries_the_full_answer() {
    let dir = zone_dir();
    write_zone(dir.path(), &fat_records());
    let serve = ServeProc::spawn(dir.path());

    let fat_query = |id: u16, bufsize: Option<u16>| -> Vec<u8> {
        let mut q = Message::query(id, Question::new(n("fat.examp.le"), RrType::Txt));
        if let Some(size) = bufsize {
            q.additionals.push(opt_record(size, 0));
        }
        q.to_bytes().expect("query encodes")
    };

    // No EDNS and EDNS@512: truncated over UDP, within the classic limit.
    for bufsize in [None, Some(512)] {
        let resp =
            Message::parse(&serve.udp_exchange(&fat_query(1, bufsize))).expect("response parses");
        assert!(resp.header.tc, "bufsize {bufsize:?} should truncate");
        assert!(resp.answers.is_empty(), "TC response strips answers");
    }
    let raw_512 = serve.udp_exchange(&fat_query(2, Some(512)));
    assert!(raw_512.len() <= 512, "got {} bytes", raw_512.len());

    // A 1232-byte advertisement is still too small here; 4096 is not.
    let resp_1232 = Message::parse(&serve.udp_exchange(&fat_query(3, Some(1232)))).expect("parses");
    assert!(resp_1232.header.tc);
    let resp_4096 = Message::parse(&serve.udp_exchange(&fat_query(4, Some(4096)))).expect("parses");
    assert!(!resp_4096.header.tc, "4096 fits the fat answer");
    assert_eq!(resp_4096.answers.len(), 24);

    // The TCP fallback a truncated client performs gets the whole answer.
    let tcp = Message::parse(&serve.tcp_exchange(&fat_query(5, Some(512)))).expect("parses");
    assert!(!tcp.header.tc, "TCP never truncates this answer");
    assert_eq!(tcp.answers.len(), 24);
    serve.shutdown();
}

#[test]
fn hostile_input_gets_formerr_never_silence() {
    let dir = zone_dir();
    write_zone(dir.path(), "");
    let serve = ServeProc::spawn(dir.path());

    // Garbage with a recoverable id: FORMERR echoing that id.
    let resp = Message::parse(&serve.udp_exchange(&[0xBE, 0xEF, 0x01])).expect("parses");
    assert_eq!(resp.header.id, 0xBEEF);
    assert_eq!(resp.header.rcode, Rcode::FormErr);

    // Two OPT records is a malformed EDNS query: FORMERR (RFC 6891 §6.1.1).
    let mut q = Message::query(7, Question::new(n("www.examp.le"), RrType::A));
    q.additionals.push(opt_record(512, 0));
    q.additionals.push(opt_record(512, 0));
    let resp =
        Message::parse(&serve.udp_exchange(&q.to_bytes().expect("encodes"))).expect("parses");
    assert_eq!(resp.header.rcode, Rcode::FormErr);
    assert!(resp.additionals.is_empty(), "no OPT echoed on bad EDNS");

    // Both rejections were counted in the shutdown telemetry dump.
    let dump = serve.shutdown();
    assert!(dump.contains("serve_formerr 2"), "{dump}");
}
