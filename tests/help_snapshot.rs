//! Integration: `dpscope --help` is a stable, documented surface.
//!
//! The full help text (everything before the build-dependent
//! `analyze ids:` list) is snapshotted verbatim, so any new command or
//! flag must update the help — and any help edit is a reviewed diff
//! here — keeping the documentation from drifting out of sync with the
//! CLI (`metrics --by-worker` and `measure --workers` once did).

use std::process::Command;

const HELP_SNAPSHOT: &str = "\
usage: dpscope <command> [options]\n\
\n\
commands:\n\
simulate   export zone files, pfx2as and AS registry for --day\n\
measure    run the full study, save the archive to --archive\n\
(resumes from the last committed day if interrupted;\n\
with --chaos, sweeps over the wire under supervision)\n\
analyze    regenerate tables/figures (ids or 'all') from --archive\n\
dig        resolve <name> <type> through the simulated Internet\n\
(+tries=N and +timeout=MS tune the wire resolver);\n\
with --server udp://A or tcp://A, query a real DNS\n\
server over the network instead (+bufsize=N sets the\n\
EDNS0 size, +noedns sends a classic query; truncated\n\
UDP answers retry over TCP)\n\
serve      authoritative DNS over real sockets for the *.zone\n\
files in --zones (hot-reloaded on change); UDP with\n\
EDNS0/TC plus TCP fallback, hardened against\n\
malformed input, floods and slowloris; runs until\n\
stdin closes\n\
fuzz       run the deterministic mutation fuzzer against one\n\
decoder target (or 'all'): fuzz <target> --iters N\n\
--seed S; corpus under crates/fuzz/corpus/<target>\n\
store      inspect a single-file archive: store <info|verify|cat> <path>\n\
(info includes the per-day data-quality summary)\n\
metrics    dump archived sweep telemetry: metrics <path> [--json]\n\
(all days merged; --day N selects one day's page;\n\
--by-worker appends per-worker provenance counters)\n\
cluster    multi-process sweep roles:\n\
cluster serve --bind ADDR --archive DIR  (manager)\n\
cluster agent --connect ADDR [--name S]  (worker)\n\
ADDRs containing '/' are Unix sockets, else TCP\n\
stream     incremental analysis over an archive measured with\n\
--stream (replays the persisted checkpoint pages):\n\
stream status <path> [--json]  days, per-provider\n\
distinct estimates, attack flags\n\
stream check <path>   verify the streamed state\n\
equals a full dps-core rescan\n\
stream correlate <path>  score attack flags against\n\
scenario ground truth (pass the same\n\
--seed/--scale/--days/--cc-start\n\
the archive was measured with)\n\
\n\
options:\n\
--seed N       world seed           (default 2016)\n\
--scale X      population scale     (default 1.0 = 1/1000 real)\n\
--days N       study length         (default 550)\n\
--cc-start N   .nl/Alexa start day  (default 366)\n\
--stride N     measure every Nth day (default 1)\n\
--day N        day for simulate/dig (default 0)\n\
--out DIR      output directory     (default target/dpscope)\n\
--archive DIR  measurement archive directory\n\
--source N     store cat: source id (0=com 1=net 2=org 3=nl 4=alexa)\n\
--cols A,B     store cat: project these columns only\n\
--chaos SPEC   measure: sweep over the simulated wire under a\n\
scripted fault schedule, e.g.\n\
'degrade@0..inf@loss=0.15; blackout@5s..20s@10.0.0.1'\n\
--stream       measure: maintain incremental analysis at each\n\
day's commit and checkpoint it in the archive\n\
(works with --workers; not with --chaos)\n\
--shards N     measure: write a sharded archive (manifest + N\n\
shard files; scans parallelise per shard) when\n\
creating a fresh one; resume keeps the existing\n\
layout (default 1 = single-file archive.dps)\n\
--workers N    measure: sweep with N local worker-agent processes\n\
over a Unix socket (archive stays byte-identical)\n\
--bind ADDR    cluster serve: listen address\n\
--min-workers N  cluster serve: hold leases until N agents have\n\
joined (late fleets all participate; default 0)\n\
--connect ADDR cluster agent: manager address\n\
--name S       cluster agent: display name for provenance\n\
--zones DIR    serve: directory of *.zone files (stem = origin)\n\
--udp ADDR     serve: UDP listen address (default 127.0.0.1:0)\n\
--tcp ADDR     serve: TCP listen address (default 127.0.0.1:0)\n\
--iters N      fuzz: iterations per target (default 100000)\n\
--server URL   dig: real server, udp://host:port or tcp://host:port\n\
\n\
";

#[test]
fn help_exits_2_and_matches_snapshot() {
    let out = Command::new(env!("CARGO_BIN_EXE_dpscope"))
        .arg("--help")
        .output()
        .expect("spawn dpscope --help");
    assert_eq!(out.status.code(), Some(2), "--help exits 2");
    assert!(out.stdout.is_empty(), "help goes to stderr");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    let (prefix, ids) = stderr
        .split_once("analyze ids:")
        .expect("help ends with the analyze id list");
    assert_eq!(
        prefix, HELP_SNAPSHOT,
        "help text drifted; update the snapshot"
    );
    assert!(ids.contains("table1") && ids.contains("all"), "{ids}");
}

#[test]
fn unknown_command_prints_the_same_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_dpscope"))
        .arg("no-such-command")
        .output()
        .expect("spawn dpscope");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: dpscope"));
}
