//! The load-bearing equivalence test: the bulk query path (direct world
//! evaluation, used for full-scale sweeps) must produce byte-identical
//! resolutions to the wire path (root → TLD → authoritative over the
//! simulated network) AND to the caching recursor path layered on the
//! wire. If this holds, every full-scale result is as trustworthy as a
//! packet-level run, and the cache never changes what a sweep observes.

use dps_scope::authdns::{DirectResolver, Resolution, Resolver};
use dps_scope::prelude::*;
use dps_scope::recursor::RecursorWorker;

fn world_at(day: u32, seed: u64) -> World {
    let params = ScenarioParams {
        seed,
        scale: 0.004,
        gtld_days: 60,
        cc_start_day: 30,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(day));
    world
}

fn compare_all(world: &World, net: &std::sync::Arc<Network>) {
    let catalog = world.materialize(net);
    let mut wire = Resolver::new(net, "172.16.0.2".parse().unwrap(), 7, catalog.root_hints());
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut cached: RecursorWorker = recursor.worker(net, "172.16.0.3".parse().unwrap(), 7);

    let mut compared = 0usize;
    let mut sample: Vec<(Name, RrType, Resolution)> = Vec::new();
    for tld in dps_scope::ecosystem::MEASURED_TLDS {
        for &entry in world.zone_entries(tld).iter() {
            let apex = world.entry_name(entry);
            let www = apex.prepend("www").unwrap();
            for (qname, qtype) in [
                (&apex, RrType::A),
                (&apex, RrType::Aaaa),
                (&apex, RrType::Ns),
                (&www, RrType::A),
                (&www, RrType::Cname),
            ] {
                let bulk = world.resolve(qname, qtype);
                let wire_res = wire.resolve(qname, qtype);
                let rec_res = cached.resolve(qname, qtype);
                match (bulk, wire_res) {
                    (Ok(b), Ok(w)) => {
                        assert_eq!(b.rcode, w.rcode, "{qname} {qtype} rcode");
                        assert_eq!(b.answers, w.answers, "{qname} {qtype} answers");
                        let r = rec_res.unwrap_or_else(|e| {
                            panic!("{qname} {qtype}: recursor failed ({e}) where wire succeeded")
                        });
                        assert_eq!(b.rcode, r.rcode, "{qname} {qtype} recursor rcode");
                        assert_eq!(b.answers, r.answers, "{qname} {qtype} recursor answers");
                        if sample.len() < 50 {
                            sample.push((qname.clone(), qtype, r));
                        }
                        compared += 1;
                    }
                    (Err(_), Err(_)) => compared += 1, // outage: both fail
                    (b, w) => panic!("{qname} {qtype}: bulk {b:?} vs wire {w:?}"),
                }
            }
        }
    }
    assert!(compared > 1000, "compared {compared} resolutions");

    // Second pass over a sample: the recursor must replay the exact same
    // resolution from cache, without touching the network again.
    let hits_before = recursor.stats().cache_hits;
    let packets_before = net.stats().snapshot().sent;
    for (qname, qtype, first) in &sample {
        let replay = cached.resolve(qname, *qtype).unwrap();
        assert_eq!(first, &replay, "{qname} {qtype}: cache replay differs");
    }
    assert_eq!(
        net.stats().snapshot().sent,
        packets_before,
        "replays sent no packets"
    );
    assert!(recursor.stats().cache_hits >= hits_before + sample.len() as u64);
}

#[test]
fn bulk_equals_wire_on_day_zero() {
    let world = world_at(0, 21);
    let net = Network::new(1);
    compare_all(&world, &net);
}

#[test]
fn bulk_equals_wire_after_anomalies_fired() {
    // Day 5 is inside the March 2015 Wix→Incapsula peak; day 35 is inside
    // the ENOM→Verisign BGP diversion window.
    for day in [5, 35] {
        let world = world_at(day, 22);
        let net = Network::new(2);
        compare_all(&world, &net);
    }
}

#[test]
fn direct_resolver_agrees_with_world_bulk() {
    // The catalog-walking DirectResolver (authdns) must agree with the
    // world's own answer model too.
    let world = world_at(3, 23);
    let net = Network::new(3);
    let catalog = world.materialize(&net);
    let direct = DirectResolver::new(catalog);
    let mut checked = 0;
    for &entry in world.zone_entries(Tld::Com).iter().take(300) {
        let apex = world.entry_name(entry);
        let bulk = world.resolve(&apex, RrType::A);
        let cat = direct.resolve(&apex, RrType::A);
        match (bulk, cat) {
            (Ok(b), Ok(c)) => {
                assert_eq!(b.rcode, c.rcode, "{apex}");
                assert_eq!(b.answers, c.answers, "{apex}");
                checked += 1;
            }
            (Err(_), Err(_)) => {}
            (b, c) => panic!("{apex}: {b:?} vs {c:?}"),
        }
    }
    assert!(checked > 100);
}
