//! The measurement pipeline through the caching recursor: `sweep_with_path`
//! over a `RecursorPath` must write byte-identical snapshot tables to the
//! uncached wire path, and a warm repeat sweep must cost a small fraction
//! of the packets.

use dps_scope::authdns::Resolver;
use dps_scope::measure::collector::{RecursorPath, SldInterner, WirePath};
use dps_scope::measure::pipeline::sweep_with_path;
use dps_scope::prelude::*;

#[test]
fn recursor_sweep_matches_wire_sweep_with_fewer_packets() {
    let params = ScenarioParams {
        seed: 61,
        scale: 0.004,
        gtld_days: 10,
        cc_start_day: 10,
    };
    let world = World::imc2016(params);
    let net = Network::new(9);
    let catalog = world.materialize(&net);

    // Uncached wire sweep.
    let mut wire_store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    let resolver = Resolver::new(&net, "172.16.0.7".parse().unwrap(), 3, catalog.root_hints());
    let mut wire_path = WirePath::new(resolver);
    let before = net.stats().snapshot().sent;
    sweep_with_path(
        &world,
        &mut wire_path,
        Source::Com,
        0,
        &mut wire_store,
        &mut interner,
    );
    let wire_packets = net.stats().snapshot().sent - before;
    assert!(wire_packets > 0);

    // Cold recursor sweep, then a warm repeat of the same day.
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut rec_path = RecursorPath::new(recursor.worker(&net, "172.16.0.8".parse().unwrap(), 3));
    let mut cold_store = SnapshotStore::new();
    let mut warm_store = SnapshotStore::new();
    let mut rec_interner = SldInterner::new();
    recursor.begin_day(Day(0));

    let before = net.stats().snapshot().sent;
    sweep_with_path(
        &world,
        &mut rec_path,
        Source::Com,
        0,
        &mut cold_store,
        &mut rec_interner,
    );
    let cold_packets = net.stats().snapshot().sent - before;

    let before = net.stats().snapshot().sent;
    sweep_with_path(
        &world,
        &mut rec_path,
        Source::Com,
        0,
        &mut warm_store,
        &mut rec_interner,
    );
    let warm_packets = net.stats().snapshot().sent - before;

    // Identical observations: the encoded snapshots are byte-for-byte equal.
    let wire_bytes = wire_store.encoded(Source::Com);
    assert_eq!(wire_bytes, cold_store.encoded(Source::Com));
    assert_eq!(wire_bytes, warm_store.encoded(Source::Com));

    // The cache pays for itself: even the cold sweep shares infrastructure,
    // and the warm sweep costs at least 5× less than the uncached wire path.
    assert!(
        cold_packets < wire_packets,
        "cold recursor sweep {cold_packets} vs wire {wire_packets}"
    );
    assert!(
        warm_packets * 5 <= wire_packets,
        "warm recursor sweep {warm_packets} vs wire {wire_packets}"
    );
    assert!(recursor.stats().cache_hits > 0);
}
