//! End-to-end: world → measurement → storage → every analysis, on one
//! small study, asserting the cross-cutting invariants that tie the
//! figures together.

use dps_scope::core::{attribution, flux, growth, peaks, report};
use dps_scope::prelude::*;

const DAYS: u32 = 90;
const CC: u32 = 60;

fn run() -> (World, SnapshotStore, ScanOutput, CompiledRefs) {
    let params = ScenarioParams {
        seed: 123,
        scale: 0.03,
        gtld_days: DAYS,
        cc_start_day: CC,
    };
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: CC,
        stride: 1,
    })
    .run(&mut world);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);
    (world, store, out, refs)
}

#[test]
fn full_pipeline_invariants() {
    let (_world, store, out, refs) = run();

    // -- Table 1 consistency: every source measured the expected days.
    for (source, expected_days) in [
        (Source::Com, DAYS),
        (Source::Net, DAYS),
        (Source::Org, DAYS),
        (Source::Nl, DAYS - CC),
        (Source::Alexa, DAYS - CC),
    ] {
        assert_eq!(store.stats(source).days, expected_days, "{source:?}");
    }
    let t1 = report::table1(&store);
    assert!(t1.contains(".com") && t1.contains("Alexa"), "{t1}");

    // -- Fig. 2: combined = com + net + org, per construction and count.
    let combined = out.series.combined_any();
    for i in [0usize, (DAYS / 2) as usize, (DAYS - 1) as usize] {
        let sum: u32 = (0..3).map(|s| out.series.tld_any[s][i]).sum();
        assert_eq!(combined[i], sum);
        assert!(combined[i] > 0);
    }

    // -- Fig. 3: the method lines never exceed the any line.
    for p in 0..refs.n {
        for i in 0..out.series.days.len() {
            let any = out.series.provider_any[p][i];
            assert!(out.series.provider_asn[p][i] <= any);
            assert!(out.series.provider_cname[p][i] <= any);
            assert!(out.series.provider_ns[p][i] <= any);
        }
    }

    // -- Fig. 4: both distributions are proper percentages, com-dominated.
    let ((ns, dps), _) = report::fig4(&out.series);
    assert!((ns.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    assert!((dps.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    assert!(ns[0] > 70.0 && dps[0] > 70.0);

    // -- Fig. 5: DPS adoption grows faster than the namespace.
    let g_dps = growth::analyze(
        &out.series.days,
        &combined,
        &growth::GrowthConfig::default(),
    );
    let g_zone = growth::analyze(
        &out.series.days,
        &out.series.combined_zone_size(),
        &growth::GrowthConfig::default(),
    );
    assert!(
        g_dps.factor > g_zone.factor,
        "dps {} vs zone {}",
        g_dps.factor,
        g_zone.factor
    );
    assert!(g_zone.factor > 1.0);

    // -- Fig. 7: flux conservation per provider.
    let fl = flux::analyze(&out.timelines, refs.n, 14);
    for (p, series) in fl.iter().enumerate() {
        let (influx, outflux) = flux::total_domains(series);
        assert_eq!(influx, outflux, "provider {p}");
        let domains = out
            .timelines
            .map
            .keys()
            .filter(|&&(_, q)| q as usize == p)
            .count() as u64;
        assert_eq!(influx, domains, "provider {p}");
    }

    // -- Fig. 8: peak durations bounded by the window; CDFs monotone.
    let dists = peaks::analyze(&out.timelines, refs.n, 1);
    for dist in &dists {
        let mut last = 0.0;
        for d in 1..=DAYS {
            let c = dist.cdf(d);
            assert!(c >= last && c <= 1.0);
            last = c;
        }
        for &d in &dist.durations {
            assert!(d <= DAYS);
        }
    }

    // -- Attribution: the biggest anomaly is explained by a dominant party.
    let incapsula = 5usize;
    let anomalies = attribution::find_anomalies(&out.series.provider_any[incapsula], 8.0, 10);
    assert!(
        !anomalies.is_empty(),
        "Wix swings expected in the first 90 days"
    );
    let a = &anomalies[0];
    let att = attribution::explain(
        &store,
        &refs,
        incapsula as u8,
        out.series.days[a.day_index - 1],
        out.series.days[a.day_index],
    );
    assert_eq!(att.dominant_party(), Some("wixdns.net"));
}

#[test]
fn growth_csv_and_fig_outputs_are_well_formed() {
    let (_world, _store, out, refs) = run();
    let combined = out.series.combined_any();
    let g = growth::analyze(
        &out.series.days,
        &combined,
        &growth::GrowthConfig::default(),
    );
    let csv = report::growth_csv(&[("dps", &g)]);
    assert_eq!(csv.lines().count(), 1 + DAYS as usize);
    assert!(csv.starts_with("date,dps"));

    let fig2 = report::fig2_csv(&out.series);
    assert!(fig2.lines().nth(1).unwrap().starts_with("2015-03-01,"));

    let fig3 = report::fig3_csv(&out.series, &refs.names);
    assert_eq!(fig3.lines().count(), 1 + refs.n * DAYS as usize);

    let dists = peaks::analyze(&out.timelines, refs.n, 1);
    let (summary, csv8) = report::fig8(&dists, &refs.names);
    assert!(summary.contains("CloudFlare"));
    assert!(csv8.starts_with("provider,duration_days,cdf"));
}

#[test]
fn determinism_same_seed_same_study() {
    let runs: Vec<u64> = (0..2)
        .map(|_| {
            let params = ScenarioParams {
                seed: 9,
                scale: 0.01,
                gtld_days: 20,
                cc_start_day: 20,
            };
            let mut world = World::imc2016(params);
            let store = Study::new(StudyConfig {
                days: 20,
                cc_start_day: 20,
                stride: 1,
            })
            .run(&mut world);
            store.total_stored_bytes()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}
