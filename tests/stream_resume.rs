//! Integration: the real `dpscope` binary running `--stream` sweeps.
//!
//! The acceptance bar for the streaming engine, end to end over real
//! processes:
//!
//! * the archive (data + analysis checkpoint pages) is byte-identical
//!   across 1-, 2-, and 4-worker cluster sweeps of the same scenario;
//! * a sweep killed mid-window and resumed replays its checkpoints to
//!   the *same* analysis state an uninterrupted sweep reaches (verified
//!   through `stream status --json` and archive bytes);
//! * `stream check` proves the incremental state equals a full
//!   dps-core rescan of the archive it rode in on.

use std::path::{Path, PathBuf};
use std::process::Command;

const SCENARIO: [&str; 8] = [
    "--seed",
    "2016",
    "--scale",
    "0.004",
    "--days",
    "5",
    "--cc-start",
    "2",
];

/// The same scenario, stopped two days early: stands in for a sweep
/// killed mid-window (per-day commits make kill points day-granular).
const PARTIAL: [&str; 8] = [
    "--seed",
    "2016",
    "--scale",
    "0.004",
    "--days",
    "3",
    "--cc-start",
    "2",
];

fn dpscope() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dpscope"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dps-it-stream-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_measure(archive: &Path, scenario: &[&str], extra: &[&str]) {
    let status = dpscope()
        .arg("measure")
        .args(scenario)
        .args(["--archive", archive.to_str().expect("utf8 path")])
        .arg("--stream")
        .args(extra)
        .status()
        .expect("spawn dpscope measure");
    assert!(status.success(), "dpscope measure {extra:?} failed");
}

fn archive_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("archive.dps")).expect("read archive.dps")
}

/// `dpscope stream <action> <dir>`; returns stdout, asserting success.
fn stream_cmd(dir: &Path, action: &str, extra: &[&str]) -> String {
    let out = dpscope()
        .arg("stream")
        .arg(action)
        .arg(dir)
        .args(extra)
        .output()
        .expect("spawn dpscope stream");
    assert!(
        out.status.success(),
        "dpscope stream {action} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn streamed_archives_are_worker_count_independent_and_pass_check() {
    let single = temp_dir("w1");
    let two = temp_dir("w2");
    let four = temp_dir("w4");
    run_measure(&single, &SCENARIO, &[]);
    run_measure(&two, &SCENARIO, &["--workers", "2"]);
    run_measure(&four, &SCENARIO, &["--workers", "4"]);

    let reference = archive_bytes(&single);
    assert_eq!(
        reference,
        archive_bytes(&two),
        "2-worker streamed archive must be byte-identical to single-process"
    );
    assert_eq!(
        reference,
        archive_bytes(&four),
        "4-worker streamed archive must be byte-identical to single-process"
    );

    // The equivalence gate: incremental state == full dps-core rescan.
    let check = stream_cmd(&single, "check", &[]);
    assert!(check.contains("matches full rescan"), "{check}");

    // And the streamed status renders identically regardless of the
    // worker count that produced the archive.
    let status_single = stream_cmd(&single, "status", &["--json"]);
    let status_four = stream_cmd(&four, "status", &["--json"]);
    assert_eq!(status_single, status_four);
    assert!(status_single.contains("\"days\": 5"), "{status_single}");

    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&two).ok();
    std::fs::remove_dir_all(&four).ok();
}

#[test]
fn crashed_stream_sweep_resumes_to_identical_analysis_state() {
    let straight = temp_dir("straight");
    let resumed = temp_dir("resumed");

    // Uninterrupted 5-day streamed sweep.
    run_measure(&straight, &SCENARIO, &[]);

    // Crash: SIGKILL the sweep once the archive holds committed bytes
    // (each day lands under a durable footer, so the kill point is
    // arbitrary — resume truncates any uncommitted tail). Then resume:
    // committed days replay their checkpoint pages through the engine
    // instead of being re-measured.
    std::fs::create_dir_all(&resumed).expect("archive dir");
    let mut child = dpscope()
        .arg("measure")
        .args(SCENARIO)
        .args(["--archive", resumed.to_str().expect("utf8 path")])
        .arg("--stream")
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn dpscope measure --stream");
    let archive_file = resumed.join("archive.dps");
    loop {
        // Kill only once at least one day's footer is durable: a file
        // with no valid footer yet is indistinguishable from corruption
        // and is (rightly) refused on resume.
        let committed =
            dps_scope::store::Archive::open(&archive_file).map_or(0, |a| a.catalog().pages.len());
        if committed > 0 || child.try_wait().expect("poll child").is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().ok();
    child.wait().ok();
    run_measure(&resumed, &SCENARIO, &[]);

    assert_eq!(
        archive_bytes(&straight),
        archive_bytes(&resumed),
        "resumed streamed archive must be byte-identical to uninterrupted"
    );
    assert_eq!(
        stream_cmd(&straight, "status", &["--json"]),
        stream_cmd(&resumed, "status", &["--json"]),
        "checkpoint replay must land in the same analysis state"
    );
    let check = stream_cmd(&resumed, "check", &[]);
    assert!(check.contains("matches full rescan"), "{check}");

    std::fs::remove_dir_all(&straight).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn plain_archive_without_checkpoints_is_refused() {
    let plain = temp_dir("plain");
    // Measured WITHOUT --stream: no checkpoint pages.
    let status = dpscope()
        .arg("measure")
        .args(PARTIAL)
        .args(["--archive", plain.to_str().expect("utf8 path")])
        .status()
        .expect("spawn dpscope measure");
    assert!(status.success());

    // `stream status` refuses rather than inventing empty analysis…
    let out = dpscope()
        .arg("stream")
        .arg("status")
        .arg(&plain)
        .output()
        .expect("spawn dpscope stream");
    assert!(!out.status.success(), "plain archive must be refused");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("no analysis checkpoints"), "{err}");

    // …and so does resuming the sweep with --stream: the committed days
    // carry no checkpoints to replay, which would silently fork the
    // analysis state from the archive's contents.
    let resume = dpscope()
        .arg("measure")
        .args(SCENARIO)
        .args(["--archive", plain.to_str().expect("utf8 path")])
        .arg("--stream")
        .output()
        .expect("spawn dpscope measure --stream resume");
    assert!(
        !resume.status.success(),
        "resuming a checkpoint-less archive with --stream must fail"
    );

    std::fs::remove_dir_all(&plain).ok();
}
