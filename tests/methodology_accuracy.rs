//! Scoring the detector against ground truth — something the paper could
//! not do on the live Internet, and the main payoff of reproducing it over
//! a simulator: per domain-day, does the methodology attribute use of the
//! right provider, and does the always-on/on-demand split match the
//! scripted behaviour?

use dps_scope::core::peaks::{classify_mode, UseMode};
use dps_scope::prelude::*;
use std::collections::{HashMap, HashSet};

const DAYS: u32 = 130;

fn study() -> (World, SnapshotStore) {
    let params = ScenarioParams {
        seed: 77,
        scale: 0.03,
        gtld_days: DAYS,
        cc_start_day: DAYS,
    };
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: DAYS,
        stride: 1,
    })
    .run(&mut world);
    (world, store)
}

/// Ground truth per day: (day, domain) → provider index, gathered by
/// stepping a fresh copy of the world.
fn truth_by_day(params: ScenarioParams) -> HashMap<(u32, u32), u8> {
    let mut world = World::imc2016(params);
    let mut out = HashMap::new();
    for day in 0..DAYS {
        world.advance_to(Day(day));
        for (i, st) in world.domains().iter().enumerate() {
            // Only gTLD zones are measured in this study window (.nl starts
            // at cc_start_day, which is past the horizon here).
            let measured = matches!(st.tld, Tld::Com | Tld::Net | Tld::Org);
            if !measured || !st.alive_on(Day(day)) || st.outage {
                continue;
            }
            if let Some(p) = st.diversion.provider() {
                out.insert((day, i as u32), p.0);
            }
        }
    }
    out
}

#[test]
fn per_domain_day_attribution_is_near_perfect() {
    let (world, store) = study();
    let truth = truth_by_day(world.params);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);

    // Detected: (day_index, entry, provider) from timelines.
    let mut detected: HashSet<(u32, u32, u8)> = HashSet::new();
    for (&(entry, p), tl) in &out.timelines.map {
        if entry % 2 == 1 {
            continue; // infrastructure SLDs self-reference by design
        }
        for di in 0..tl.any.len() {
            if tl.any.get(di) {
                detected.insert((out.timelines.days[di], entry / 2, p));
            }
        }
    }

    let truth_set: HashSet<(u32, u32, u8)> =
        truth.iter().map(|(&(d, id), &p)| (d, id, p)).collect();

    let tp = detected.intersection(&truth_set).count() as f64;
    let precision = tp / detected.len() as f64;
    let recall = tp / truth_set.len() as f64;
    assert!(
        truth_set.len() > 5_000,
        "truth set too small: {}",
        truth_set.len()
    );
    assert!(precision > 0.995, "precision {precision}");
    assert!(recall > 0.995, "recall {recall}");
}

#[test]
fn always_on_and_on_demand_modes_match_script() {
    let (world, store) = study();
    let params = world.params;
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);

    // Ground truth: per-domain daily "traffic diverted?" flags, reduced to
    // the number of maximal diverted runs.
    let mut fresh = World::imc2016(params);
    let mut diverted_days: HashMap<u32, Vec<bool>> = HashMap::new();
    for day in 0..DAYS {
        fresh.advance_to(Day(day));
        for (i, st) in fresh.domains().iter().enumerate() {
            if st.diversion.diverts_traffic() && st.alive_on(Day(day)) {
                diverted_days
                    .entry(i as u32)
                    .or_insert_with(|| vec![false; DAYS as usize])[day as usize] = true;
            }
        }
    }
    let truth_runs = |id: u32| -> usize {
        let Some(days) = diverted_days.get(&id) else {
            return 0;
        };
        let mut runs = 0;
        let mut inside = false;
        for &d in days {
            if d && !inside {
                runs += 1;
            }
            inside = d;
        }
        runs
    };

    let mut always_on_checked = 0;
    let mut on_demand_checked = 0;
    for (&(entry, _p), tl) in &out.timelines.map {
        if entry % 2 == 1 {
            continue;
        }
        let id = entry / 2;
        let st = &fresh.domains()[id as usize];
        if st.basket.is_some() {
            continue; // basket scripts are exercised elsewhere
        }
        match classify_mode(&tl.asn) {
            UseMode::AlwaysOn => {
                let runs = truth_runs(id);
                assert!(
                    runs <= 1,
                    "domain d{id} classified AlwaysOn but has {runs} truth runs"
                );
                always_on_checked += 1;
            }
            UseMode::OnDemand => {
                let runs = truth_runs(id);
                assert!(
                    runs >= 3,
                    "domain d{id} classified OnDemand but has {runs} truth runs"
                );
                on_demand_checked += 1;
            }
            _ => {}
        }
    }
    assert!(
        always_on_checked > 50,
        "always-on sample: {always_on_checked}"
    );
    assert!(
        on_demand_checked > 3,
        "on-demand sample: {on_demand_checked}"
    );
}

#[test]
fn sedo_outage_day_visible_as_akamai_dip() {
    // Extend past day 266 to include the scripted Sedo DNS incident.
    let params = ScenarioParams {
        seed: 5,
        scale: 0.05,
        gtld_days: 270,
        cc_start_day: 270,
    };
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: 270,
        cc_start_day: 270,
        stride: 1,
    })
    .run(&mut world);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);
    let akamai = &out.series.provider_any[0];
    let before = akamai[265];
    let outage = akamai[266];
    let after = akamai[267];
    assert!(
        outage < before,
        "dip on the outage day: {before} -> {outage}"
    );
    assert!(
        after >= before - 2,
        "recovery next day: {after} vs {before}"
    );
    // The dip is roughly the Sedo basket size (716 × 0.05 ≈ 36).
    let dip = before - outage;
    assert!((25..=45).contains(&dip), "dip magnitude {dip}");
}

#[test]
fn domain_deletions_end_timelines() {
    let (world, store) = study();
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);
    // Every timeline's observed days must lie within the domain's
    // registered lifetime.
    for (&(entry, _), tl) in out.timelines.map.iter().take(2000) {
        if entry % 2 == 1 {
            continue;
        }
        let st = &world.domains()[(entry / 2) as usize];
        if let Some(first) = tl.any.first() {
            assert!(out.timelines.days[first] >= st.registered.0);
        }
        if let (Some(last), Some(deleted)) = (tl.any.last(), st.deleted) {
            assert!(out.timelines.days[last] < deleted.0);
        }
    }
}
