//! Measurement under network faults: a wire-path sweep over a lossy
//! network must agree with the bulk ground truth on every name it manages
//! to measure — loss may cause gaps, never wrong data.

use dps_scope::authdns::{Resolver, ResolverConfig};
use dps_scope::measure::collector::{SldInterner, WirePath};
use dps_scope::measure::pipeline::sweep_with_path;
use dps_scope::prelude::*;

fn sweep(loss: f64) -> (SnapshotStore, SnapshotStore) {
    let params = ScenarioParams {
        seed: 31,
        scale: 0.004,
        gtld_days: 10,
        cc_start_day: 10,
    };
    let mut world = World::imc2016(params);

    // Bulk reference store.
    let bulk_store = Study::new(StudyConfig {
        days: 1,
        cc_start_day: 10,
        stride: 1,
    })
    .run(&mut world);

    // Wire store under faults.
    let net = Network::new(5);
    // Corruption is deliberately off here: DNS-over-UDP has no payload
    // integrity, so a bit flipped inside the RDATA of an otherwise valid
    // response is accepted by any real resolver too (the id + question
    // check only guards the envelope). Loss and duplication, by contrast,
    // must never change recorded data — that is what this test pins.
    net.set_faults(FaultProfile {
        loss,
        corrupt: 0.0,
        duplicate: 0.05,
        ..FaultProfile::default()
    });
    let catalog = world.materialize(&net);
    let resolver = Resolver::new(&net, "172.16.0.9".parse().unwrap(), 3, catalog.root_hints())
        .with_config(ResolverConfig {
            retries: 6,
            ..Default::default()
        });
    let mut path = WirePath::new(resolver);
    let mut wire_store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    for source in [Source::Com, Source::Net, Source::Org] {
        sweep_with_path(&world, &mut path, source, 0, &mut wire_store, &mut interner);
    }
    (bulk_store, wire_store)
}

fn compare(bulk: &SnapshotStore, wire: &SnapshotStore) -> (usize, usize) {
    use dps_scope::measure::observation::Row;
    let mut matched = 0usize;
    let mut failed = 0usize;
    for source in [Source::Com, Source::Net, Source::Org] {
        let b = bulk.table(0, source).unwrap();
        let w = wire.table(0, source).unwrap();
        assert_eq!(b.rows(), w.rows(), "same input list");
        let bc: Vec<&[u32]> = (0..b.schema().width()).map(|c| b.column(c)).collect();
        let wc: Vec<&[u32]> = (0..w.schema().width()).map(|c| w.column(c)).collect();
        for i in 0..b.rows() {
            let (_, _, rb) = Row::unpack(&bc, i);
            let (_, _, rw) = Row::unpack(&wc, i);
            assert_eq!(rb.entry, rw.entry);
            if rw.failed {
                failed += 1;
                continue;
            }
            // Dictionaries differ between stores; compare via strings.
            let resolve =
                |store: &SnapshotStore, id: u32| store.dict.resolve(id).unwrap_or("?").to_string();
            // A non-failed row has a good apex measurement; per-record-type
            // sub-queries (www/NS/AAAA) may individually have been lost.
            // Whatever the wire path DID capture must equal ground truth —
            // loss creates gaps, never wrong data.
            assert_eq!(rb.apex_v4, rw.apex_v4, "entry {}", rb.entry);
            assert_eq!(rb.asn1, rw.asn1);
            if rw.www_v4 != 0 {
                assert_eq!(rb.www_v4, rw.www_v4);
            }
            if rw.aaaa {
                assert!(rb.aaaa);
            }
            if rw.cname1 != 0 {
                assert_eq!(resolve(bulk, rb.cname1), resolve(wire, rw.cname1));
            }
            if rw.ns1 != 0 {
                assert_eq!(resolve(bulk, rb.ns1), resolve(wire, rw.ns1));
            }
            matched += 1;
        }
    }
    (matched, failed)
}

#[test]
fn healthy_network_measures_everything_identically() {
    let (bulk, wire) = sweep(0.0);
    let (matched, failed) = compare(&bulk, &wire);
    assert_eq!(failed, 0);
    assert!(matched > 500, "matched {matched}");
}

#[test]
fn corruption_can_alter_rdata_but_not_crash() {
    // With corruption on, rows may carry flipped bits — the pipeline must
    // still complete and produce decodable tables.
    let params = ScenarioParams {
        seed: 32,
        scale: 0.002,
        gtld_days: 5,
        cc_start_day: 5,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(0));
    let net = Network::new(6);
    net.set_faults(FaultProfile {
        corrupt: 0.3,
        ..FaultProfile::default()
    });
    let catalog = world.materialize(&net);
    let resolver = Resolver::new(&net, "172.16.0.8".parse().unwrap(), 4, catalog.root_hints())
        .with_config(ResolverConfig {
            retries: 4,
            ..Default::default()
        });
    let mut path = WirePath::new(resolver);
    let mut store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    sweep_with_path(&world, &mut path, Source::Com, 0, &mut store, &mut interner);
    let table = store.table(0, Source::Com).unwrap();
    assert!(table.rows() > 50);
}

#[test]
fn lossy_network_degrades_gracefully_but_never_lies() {
    let (bulk, wire) = sweep(0.25);
    let (matched, failed) = compare(&bulk, &wire);
    assert!(matched > 300, "matched {matched}");
    // Loss shows up as failed measurements, not corrupted rows.
    assert!(failed > 0, "25% loss should fail some measurements");
    assert!(failed < matched, "most measurements should still succeed");
}
