//! Integration: the single-file `dps-store` archive across the whole
//! pipeline — an aborted sweep resumes into a byte-identical archive,
//! projected scans decode strictly fewer bytes than full-table loads, and
//! a warm page cache serves repeated classification passes without
//! touching disk.

use dps_scope::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

const DAYS: u32 = 12;
const CC: u32 = 8;

fn study_config() -> StudyConfig {
    StudyConfig {
        days: DAYS,
        cc_start_day: CC,
        stride: 1,
    }
}

fn fresh_world() -> World {
    World::imc2016(ScenarioParams {
        seed: 77,
        scale: 0.02,
        gtld_days: DAYS,
        cc_start_day: CC,
    })
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dps-it-{tag}-{}.dps", std::process::id()))
}

/// A sweep killed mid-day (torn page bytes after the last committed
/// footer) resumes from its last durable day and finishes into an archive
/// byte-identical to an uninterrupted run — catalog, row counts, stats,
/// dictionary and page bytes included — with every checksum valid.
#[test]
fn aborted_sweep_resumes_byte_identically() {
    let full_path = temp_path("uninterrupted");
    let resumed_path = temp_path("resumed");
    std::fs::remove_file(&full_path).ok();
    std::fs::remove_file(&resumed_path).ok();

    // Reference: one uninterrupted archived sweep.
    let mut world = fresh_world();
    let full_store = Study::new(study_config())
        .run_archived(&mut world, &full_path)
        .expect("uninterrupted run");

    // The "killed" sweep: five committed days, then a torn page append
    // that never reached its commit (the kill point).
    let mut world = fresh_world();
    Study::new(StudyConfig {
        days: 5,
        ..study_config()
    })
    .run_archived(&mut world, &resumed_path)
    .expect("partial run");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&resumed_path)
        .unwrap();
    file.write_all(&[0xAB; 4321]).unwrap();
    drop(file);

    // Restart "the process": fresh world, same parameters, full window.
    let mut world = fresh_world();
    let resumed_store = Study::new(study_config())
        .run_archived(&mut world, &resumed_path)
        .expect("resumed run");

    let full_bytes = std::fs::read(&full_path).unwrap();
    let resumed_bytes = std::fs::read(&resumed_path).unwrap();
    assert_eq!(full_bytes.len(), resumed_bytes.len(), "file sizes differ");
    assert!(full_bytes == resumed_bytes, "resumed archive diverged");

    // Every page checksum is valid (what `dpscope store verify` reports).
    let archive = Archive::open(&resumed_path).unwrap();
    let report = archive.verify().unwrap();
    assert!(report.all_ok(), "corrupt pages: {:?}", report.corrupt);
    // Three gTLD pages per day, two more per cc/Alexa day, plus one
    // quality page and one telemetry page per measured day.
    assert_eq!(report.pages, 5 * DAYS as usize + 2 * (DAYS - CC) as usize);

    // And the stores the two runs returned agree exactly.
    for source in dps_scope::measure::SOURCES {
        let (a, b) = (full_store.stats(source), resumed_store.stats(source));
        assert_eq!(a.days, b.days, "{source:?}");
        assert_eq!(a.data_points, b.data_points, "{source:?}");
        assert_eq!(a.stored_bytes, b.stored_bytes, "{source:?}");
        assert_eq!(a.unique_slds, b.unique_slds, "{source:?}");
    }

    std::fs::remove_file(&full_path).ok();
    std::fs::remove_file(&resumed_path).ok();
}

/// Projecting two columns decodes strictly fewer bytes than loading the
/// full 18-column tables (asserted via the archive's own counters), and
/// day-range pruning never touches pages outside the range.
#[test]
fn projected_scan_decodes_fewer_bytes() {
    let path = temp_path("projection");
    std::fs::remove_file(&path).ok();
    let mut world = fresh_world();
    Study::new(study_config())
        .run_archived(&mut world, &path)
        .expect("archived run");

    // Cache disabled so both passes really decode.
    let archive = dps_scope::store::Archive::open_with_cache(&path, 0).unwrap();

    let before = archive.counters();
    let full = archive.scan(&ScanQuery::all().source(0)).unwrap();
    let full_pass = archive.counters().since(&before);

    let before = archive.counters();
    let projected = archive
        .scan(&ScanQuery::all().source(0).columns(&["entry", "asn1"]))
        .unwrap();
    let projected_pass = archive.counters().since(&before);

    assert_eq!(full.len(), DAYS as usize);
    assert_eq!(projected.len(), full.len());
    assert_eq!(projected_pass.pages_decoded, full_pass.pages_decoded);
    assert!(
        projected_pass.decoded_bytes < full_pass.decoded_bytes,
        "projection decoded {} bytes, full load {}",
        projected_pass.decoded_bytes,
        full_pass.decoded_bytes
    );
    // 2 of 18 columns: well under a quarter of the full decode.
    assert!(projected_pass.decoded_bytes * 4 < full_pass.decoded_bytes);

    // Pruning: a one-day scan reads exactly the pages of that day.
    let before = archive.counters();
    let one_day = archive.scan(&ScanQuery::all().days(3, 3)).unwrap();
    let pruned_pass = archive.counters().since(&before);
    // Before cc start a day holds 3 gTLD data pages plus its quality and
    // telemetry pages.
    assert_eq!(
        one_day.len(),
        5,
        "gTLD sources + quality + telemetry before cc start"
    );
    assert_eq!(pruned_pass.pages_decoded, 5);

    std::fs::remove_file(&path).ok();
}

/// A repeated classification pass over the same archive is served from
/// the page cache: at least an order of magnitude fewer page decodes
/// (zero, in fact), with identical output.
#[test]
fn warm_page_cache_serves_repeated_classification() {
    let path = temp_path("warm-cache");
    std::fs::remove_file(&path).ok();
    let mut world = fresh_world();
    Study::new(study_config())
        .run_archived(&mut world, &path)
        .expect("archived run");

    let archive = Archive::open(&path).unwrap();
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), archive.dict());
    let scanner = Scanner::new(&refs);

    let before = archive.counters();
    let cold = scanner.run_archive(&archive).unwrap();
    let cold_pass = archive.counters().since(&before);

    let before = archive.counters();
    let warm = scanner.run_archive(&archive).unwrap();
    let warm_pass = archive.counters().since(&before);

    assert!(
        cold_pass.pages_decoded >= 10,
        "cold pass decoded {} pages",
        cold_pass.pages_decoded
    );
    assert!(
        warm_pass.pages_decoded * 10 <= cold_pass.pages_decoded,
        "warm pass decoded {} pages vs {} cold",
        warm_pass.pages_decoded,
        cold_pass.pages_decoded
    );
    assert!(warm_pass.cache_hits >= cold_pass.pages_decoded);

    assert_eq!(cold.series.days, warm.series.days);
    assert_eq!(cold.series.provider_any, warm.series.provider_any);
    assert_eq!(cold.timelines.map.len(), warm.timelines.map.len());

    std::fs::remove_file(&path).ok();
}
