//! Chaos-engineering integration: supervised wire sweeps under scripted
//! fault schedules must (a) recover coverage and agree byte-for-byte with
//! a healthy-network snapshot, (b) stay seed-reproducible, and (c) record
//! unrecoverable days as low-coverage `DayQuality` cells that the growth
//! analysis masks instead of mistaking for a provider exodus.

use dps_scope::authdns::{Resolver, ResolverConfig};
use dps_scope::core::{growth, DEFAULT_MIN_COVERAGE};
use dps_scope::measure::collector::{SldInterner, WirePath};
use dps_scope::measure::pipeline::{sweep_with_path, sweep_with_path_supervised_metered};
use dps_scope::measure::SweepMetrics;
use dps_scope::prelude::*;
use dps_scope::telemetry::Registry;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dps-chaos-{tag}-{}.dps", std::process::id()))
}

/// One supervised `.com` sweep of `world`'s current day over a fresh
/// network running `schedule`, appended to `store`. When `registry` is
/// given, the network, health tracker and supervisor all publish
/// telemetry into it (mirroring `dpscope measure --chaos`).
#[allow(clippy::too_many_arguments)]
fn supervised_sweep(
    world: &World,
    schedule: Option<ChaosSchedule>,
    net_seed: u64,
    day: u32,
    passes: u32,
    store: &mut SnapshotStore,
    interner: &mut SldInterner,
    registry: Option<&Registry>,
) -> DayQuality {
    let net = match registry {
        Some(r) => Network::with_telemetry(net_seed, r),
        None => Network::new(net_seed),
    };
    if let Some(s) = schedule {
        net.set_chaos(s);
    }
    let catalog = world.materialize(&net);
    let mut health = HealthTracker::new(HealthConfig::default());
    if let Some(r) = registry {
        health = health.with_telemetry(r);
    }
    let health = Arc::new(health);
    let resolver = Resolver::new(
        &net,
        "172.16.0.7".parse().unwrap(),
        11,
        catalog.root_hints(),
    )
    .with_config(ResolverConfig::resilient())
    .with_health(health);
    let mut path = WirePath::new(resolver);
    let config = SupervisorConfig {
        retry_passes: passes,
        ..SupervisorConfig::default()
    };
    let metrics = registry.map(SweepMetrics::new).unwrap_or_default();
    sweep_with_path_supervised_metered(
        world,
        &mut path,
        Source::Com,
        day,
        store,
        interner,
        &config,
        &metrics,
    )
}

fn chaos_schedule() -> ChaosSchedule {
    // A 1.5 s total blackout at the start of the sweep plus 15% loss for
    // the whole day — the ISSUE's scripted outage scenario.
    ChaosSchedule::parse("blackout@0..1500ms; degrade@0..inf@loss=0.15").unwrap()
}

/// Under a scripted blackout plus 15% loss, the supervisor's retry passes
/// recover full coverage and the recovered snapshot is byte-identical to
/// one taken over a healthy network: faults cost time, never data.
#[test]
fn chaotic_sweep_recovers_and_matches_healthy_snapshot() {
    let mut world = World::imc2016(ScenarioParams {
        seed: 31,
        scale: 0.004,
        gtld_days: 3,
        cc_start_day: 3,
    });
    world.advance_to(Day(0));

    // Healthy baseline: a plain unsupervised wire sweep.
    let net = Network::new(5);
    let catalog = world.materialize(&net);
    let resolver = Resolver::new(
        &net,
        "172.16.0.7".parse().unwrap(),
        11,
        catalog.root_hints(),
    );
    let mut path = WirePath::new(resolver);
    let mut healthy = SnapshotStore::new();
    let mut interner = SldInterner::new();
    sweep_with_path(
        &world,
        &mut path,
        Source::Com,
        0,
        &mut healthy,
        &mut interner,
    );

    // Chaotic run, supervised.
    let mut chaotic = SnapshotStore::new();
    let mut interner = SldInterner::new();
    let q = supervised_sweep(
        &world,
        Some(chaos_schedule()),
        5,
        0,
        3,
        &mut chaotic,
        &mut interner,
        None,
    );

    assert!(q.coverage() >= 0.99, "coverage {}", q.coverage());
    assert_eq!(q.failed, 0, "every dead-lettered name recovered");
    assert!(q.retried > 0, "the chaos schedule actually bit");
    assert!(q.causes.timeouts > 0, "blackout+loss show up as timeouts");
    assert!(q.hedges > 0, "stragglers were hedged");

    let h = healthy.table(0, Source::Com).expect("healthy table");
    let c = chaotic.table(0, Source::Com).expect("chaotic table");
    assert_eq!(h.rows(), c.rows());
    assert_eq!(
        h.to_bytes(),
        c.to_bytes(),
        "recovered snapshot diverged from the healthy one"
    );
}

/// Two sweeps with the same world seed, network seed and chaos schedule
/// produce byte-identical archives — quality records, telemetry and all.
#[test]
fn same_seed_chaos_sweeps_are_byte_identical() {
    let mut archives = Vec::new();
    for run in 0..2 {
        let mut world = World::imc2016(ScenarioParams {
            seed: 31,
            scale: 0.003,
            gtld_days: 2,
            cc_start_day: 2,
        });
        let mut store = SnapshotStore::new();
        let mut interner = SldInterner::new();
        for day in 0..2 {
            world.advance_to(Day(day));
            supervised_sweep(
                &world,
                Some(chaos_schedule()),
                40 + u64::from(day),
                day,
                2,
                &mut store,
                &mut interner,
                None,
            );
        }
        let path = temp_path(&format!("det-{run}"));
        std::fs::remove_file(&path).ok();
        store.save_archive(&path).expect("save archive");
        archives.push(std::fs::read(&path).expect("read archive"));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        archives[0], archives[1],
        "same seed + schedule must replay identically"
    );
}

/// Two same-seed chaos sweeps with full telemetry wiring render
/// byte-identical `metrics --json` output — both per day and merged —
/// and archive byte-identically, telemetry pages included.
#[test]
fn same_seed_chaos_telemetry_renders_identically() {
    let mut runs = Vec::new();
    for run in 0..2 {
        let mut world = World::imc2016(ScenarioParams {
            seed: 31,
            scale: 0.003,
            gtld_days: 2,
            cc_start_day: 2,
        });
        let mut store = SnapshotStore::new();
        let mut interner = SldInterner::new();
        for day in 0..2 {
            world.advance_to(Day(day));
            // One registry per day, like `dpscope measure --chaos`: each
            // day's telemetry page is a self-contained snapshot.
            let registry = Registry::new();
            supervised_sweep(
                &world,
                Some(chaos_schedule()),
                40 + u64::from(day),
                day,
                2,
                &mut store,
                &mut interner,
                Some(&registry),
            );
            store.add_telemetry(day, registry.snapshot());
        }
        let per_day: Vec<String> = (0..2)
            .map(|d| store.telemetry(d).expect("day telemetry").to_json())
            .collect();
        let merged = store.merged_telemetry();
        assert!(
            merged
                .counters
                .get("net.packets.sent")
                .copied()
                .unwrap_or(0)
                > 0,
            "network telemetry flowed"
        );
        assert!(
            merged.counters.get("sweep.attempted").copied().unwrap_or(0) > 0,
            "supervisor telemetry flowed"
        );
        let path = temp_path(&format!("telemetry-{run}"));
        std::fs::remove_file(&path).ok();
        store.save_archive(&path).expect("save archive");
        let bytes = std::fs::read(&path).expect("read archive");
        std::fs::remove_file(&path).ok();
        runs.push((per_day, merged.to_json(), bytes));
    }
    assert_eq!(runs[0].0, runs[1].0, "per-day metrics JSON diverged");
    assert_eq!(runs[0].1, runs[1].1, "merged metrics JSON diverged");
    assert_eq!(runs[0].2, runs[1].2, "archives with telemetry diverged");
}

/// A healthy sweep and a chaotic sweep over the same world disagree in
/// their chaos-facing telemetry (degraded packets, drops, retries) while
/// producing byte-identical data pages: faults show up in the metrics,
/// never in the measurements.
#[test]
fn chaos_telemetry_diverges_while_data_pages_match() {
    let mut world = World::imc2016(ScenarioParams {
        seed: 31,
        scale: 0.004,
        gtld_days: 3,
        cc_start_day: 3,
    });
    world.advance_to(Day(0));

    let healthy_reg = Registry::new();
    let mut healthy = SnapshotStore::new();
    let mut interner = SldInterner::new();
    supervised_sweep(
        &world,
        None,
        5,
        0,
        3,
        &mut healthy,
        &mut interner,
        Some(&healthy_reg),
    );

    let chaos_reg = Registry::new();
    let mut chaotic = SnapshotStore::new();
    let mut interner = SldInterner::new();
    supervised_sweep(
        &world,
        Some(chaos_schedule()),
        5,
        0,
        3,
        &mut chaotic,
        &mut interner,
        Some(&chaos_reg),
    );

    let h = healthy_reg.snapshot();
    let c = chaos_reg.snapshot();
    let counter =
        |s: &dps_scope::telemetry::Snapshot, name: &str| s.counters.get(name).copied().unwrap_or(0);

    assert_eq!(counter(&h, "net.chaos.degraded"), 0, "healthy run degraded");
    assert!(counter(&c, "net.chaos.degraded") > 0, "chaos never bit");
    assert!(
        counter(&c, "net.packets.dropped") + counter(&c, "net.packets.blackholed")
            > counter(&h, "net.packets.dropped") + counter(&h, "net.packets.blackholed"),
        "chaos run lost no more packets than the healthy one"
    );
    assert!(
        counter(&c, "sweep.retries") > counter(&h, "sweep.retries"),
        "chaos run retried no more than the healthy one"
    );

    let ht = healthy.table(0, Source::Com).expect("healthy table");
    let ct = chaotic.table(0, Source::Com).expect("chaotic table");
    assert_eq!(
        ht.to_bytes(),
        ct.to_bytes(),
        "telemetry diverged AND took the data with it"
    );
}

/// A day-long total outage cannot be recovered; it must surface as a
/// zero-coverage `DayQuality` record, be gated by the quality mask, and be
/// bridged (not counted as an exodus) by the masked growth analysis.
#[test]
fn full_outage_day_is_recorded_and_masked() {
    let mut world = World::imc2016(ScenarioParams {
        seed: 32,
        scale: 0.002,
        gtld_days: 3,
        cc_start_day: 3,
    });
    let mut store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    for day in 0..3 {
        world.advance_to(Day(day));
        let schedule = (day == 1).then(|| ChaosSchedule::new().blackout(None, 0, u64::MAX));
        supervised_sweep(
            &world,
            schedule,
            60,
            day,
            1,
            &mut store,
            &mut interner,
            None,
        );
    }

    let outage = store.quality(1, Source::Com).expect("day 1 quality");
    assert_eq!(
        outage.coverage(),
        0.0,
        "nothing resolved through a blackout"
    );
    assert_eq!(outage.failed, outage.attempted);
    assert!(outage.causes.timeouts > 0);
    assert!(outage.breaker_trips > 0, "every server's breaker tripped");
    for day in [0, 2] {
        let q = store
            .quality(day, Source::Com)
            .expect("healthy-day quality");
        assert_eq!(q.failed, 0, "day {day}");
    }

    let mask = QualityMask::from_store(&store, DEFAULT_MIN_COVERAGE);
    assert!(mask.is_masked(1, Source::Com));
    assert!(!mask.is_masked(0, Source::Com));
    assert_eq!(mask.masked_gtld_days(), vec![1]);

    // Growth over the resolved-row counts: unmasked analysis sees a
    // day-long trough to zero; the masked analysis bridges it.
    let days: Vec<u32> = vec![0, 1, 2];
    let series: Vec<u32> = days
        .iter()
        .map(|&d| {
            let t = store.table(d, Source::Com).expect("table");
            let failed: u32 = t
                .column_by_name("failed")
                .expect("failed column")
                .iter()
                .sum();
            t.rows() as u32 - failed
        })
        .collect();
    assert_eq!(series[1], 0);
    assert!(series[0] > 0);

    let config = growth::GrowthConfig {
        median_window: 1,
        clean_anomalies: false,
        ..growth::GrowthConfig::default()
    };
    let unmasked = growth::analyze(&days, &series, &config);
    let masked = growth::analyze_masked(&days, &series, &config, &mask.masked_days(Source::Com));
    assert_eq!(
        unmasked.cleaned[1], 0.0,
        "unmasked analysis keeps the trough"
    );
    assert!(
        masked.cleaned[1] > 0.9 * f64::from(series[0]),
        "masked analysis bridges the outage: {}",
        masked.cleaned[1]
    );
    assert_eq!(masked.masked_days, vec![1]);
    assert_eq!(masked.raw[1], 0.0, "raw keeps the true measurement");
}
