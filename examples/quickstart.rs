//! Quickstart: build a small synthetic Internet, run the measurement
//! study over it, and report DPS adoption — the whole pipeline in ~40
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dps_scope::prelude::*;

fn main() {
    // 1. A world at 1/50 000 of the real 2015 namespace, 60 days.
    let params = ScenarioParams {
        seed: 42,
        scale: 0.05,
        gtld_days: 60,
        cc_start_day: 40,
    };
    let mut world = World::imc2016(params);
    println!(
        "world: {} domains across .com/.net/.org/.nl, day 0 = {}",
        world.domains().len(),
        Day(0)
    );

    // 2. Measure: daily sweeps of every zone plus the Alexa-style list.
    let store = Study::new(StudyConfig {
        days: 60,
        cc_start_day: 40,
        stride: 1,
    })
    .run(&mut world);
    println!(
        "measured {} data points, stored {} (compressed)",
        dps_scope::core::report::human_count(
            (0..5)
                .map(|i| store.stats(Source::from_index(i).unwrap()).data_points)
                .sum::<u64>() as f64
        ),
        dps_scope::core::report::human_bytes(store.total_stored_bytes()),
    );

    // 3. Classify against the paper's Table 2 reference sets.
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);

    println!("\nDPS use on day 0 vs day 59 (gTLD sources):");
    println!("{:<14} {:>7} {:>7}", "provider", "day 0", "day 59");
    for (p, name) in refs.names.iter().enumerate() {
        let s = &out.series.provider_any[p];
        println!("{:<14} {:>7} {:>7}", name, s[0], s[59]);
    }
    let combined = out.series.combined_any();
    println!("{:<14} {:>7} {:>7}", "combined", combined[0], combined[59]);

    // 4. Growth vs overall namespace expansion (Fig. 5 in miniature).
    let g_dps = growth_analyze(&out.series.days, &combined, &GrowthConfig::default());
    let g_zone = growth_analyze(
        &out.series.days,
        &out.series.combined_zone_size(),
        &GrowthConfig::default(),
    );
    println!(
        "\nadoption growth {:.3}x vs namespace expansion {:.3}x over {} days",
        g_dps.factor,
        g_zone.factor,
        out.series.days.len()
    );
}
