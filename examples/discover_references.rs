//! Rediscovering Table 2: run the §3.3 seed-expansion procedure against
//! measurement data only, and compare the result with ground truth.
//!
//! ```sh
//! cargo run --release --example discover_references
//! ```

use dps_scope::core::report;
use dps_scope::prelude::*;
use dps_scope::PROVIDER_KEYWORDS;

fn main() {
    let params = ScenarioParams {
        seed: 1,
        scale: 0.25,
        gtld_days: 60,
        cc_start_day: 60,
    };
    let mut world = World::imc2016(params);

    // Seeds: what an analyst finds by searching AS-to-name data.
    let seeds = seeds_from_registry(world.as_registry(), &PROVIDER_KEYWORDS);
    println!("name-matched seed ASNs:");
    for s in &seeds {
        println!("  {:<14} {:?}", s.name, s.asns);
    }

    let store = Study::new(StudyConfig {
        days: 60,
        cc_start_day: 60,
        stride: 1,
    })
    .run(&mut world);
    let found = discover(
        &store,
        &seeds,
        &DiscoveryConfig {
            day_stride: 5,
            ..Default::default()
        },
    );

    println!("\ndiscovered references (the paper's Table 2):\n");
    println!("{}", report::table2(&found));

    let truth = ProviderRefs::paper_table2();
    let (diff, exact) = report::table2_comparison(&found, &truth);
    println!("comparison against ground truth ({exact}/9 providers exact):\n{diff}");
}
