//! Chaos engineering for the measurement pipeline: replay one day's sweep
//! under increasingly hostile scripted fault schedules and watch the
//! supervisor (backoff + breakers + dead-letter retries) claw coverage
//! back — then see the one unrecoverable day get masked, not mistaken for
//! a provider exodus.
//!
//! ```sh
//! cargo run --release --example chaos_sweep
//! ```

use dps_scope::authdns::{Resolver, ResolverConfig};
use dps_scope::core::DEFAULT_MIN_COVERAGE;
use dps_scope::measure::collector::{SldInterner, WirePath};
use dps_scope::measure::pipeline::sweep_with_path_supervised;
use dps_scope::prelude::*;
use std::sync::Arc;

fn main() {
    let params = ScenarioParams {
        seed: 5,
        scale: 0.005,
        gtld_days: 10,
        cc_start_day: 10,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(0));

    let scenarios: [(&str, &str); 4] = [
        ("calm seas", ""),
        ("15% loss all day", "degrade@0..inf@loss=0.15"),
        (
            "loss + 2s blackout + flapping TLD link",
            "degrade@0..inf@loss=0.15; blackout@0..2s; flap@2s..30s@period=1s,up=0.6",
        ),
        ("day-long total outage", "blackout@0..inf"),
    ];

    let mut store = SnapshotStore::new();
    let mut interner = SldInterner::new();
    for (day, (label, spec)) in scenarios.iter().enumerate() {
        let net = Network::new(42);
        if !spec.is_empty() {
            net.set_chaos(ChaosSchedule::parse(spec).expect("valid spec"));
        }
        let catalog = world.materialize(&net);
        let health = Arc::new(HealthTracker::new(HealthConfig::default()));
        let resolver = Resolver::new(&net, "172.16.0.5".parse().unwrap(), 7, catalog.root_hints())
            .with_config(ResolverConfig::resilient())
            .with_health(health);
        let mut path = WirePath::new(resolver);
        let q = sweep_with_path_supervised(
            &world,
            &mut path,
            Source::Com,
            day as u32,
            &mut store,
            &mut interner,
            &SupervisorConfig::default(),
        );
        println!(
            "{label:<38} coverage {:>6.2}%  retried {:>3} recovered {:>3}  \
             breaker trips {:>3}  hedges {:>4}",
            100.0 * q.coverage(),
            q.retried,
            q.recovered,
            q.breaker_trips,
            q.hedges,
        );
    }

    let mask = QualityMask::from_store(&store, DEFAULT_MIN_COVERAGE);
    println!(
        "\nquality mask (coverage < {:.0}%): days {:?} gated out of trend analyses —",
        100.0 * mask.min_coverage(),
        mask.masked_days(Source::Com),
    );
    println!("the outage day reads as missing data, not as every customer leaving at once.");
}
