//! Full-fidelity measurement over a faulty network: materialise the world
//! into real zones + authoritative servers on the simulated UDP fabric,
//! then sweep it with the iterative resolver under increasing packet loss
//! — smoltcp-style fault injection applied to the whole pipeline.
//!
//! ```sh
//! cargo run --release --example lossy_network
//! ```

use dps_scope::authdns::{Resolver, ResolverConfig};
use dps_scope::measure::collector::{SldInterner, WirePath};
use dps_scope::measure::pipeline::sweep_with_path;
use dps_scope::prelude::*;

fn main() {
    let params = ScenarioParams {
        seed: 5,
        scale: 0.005,
        gtld_days: 10,
        cc_start_day: 10,
    };
    let world = World::imc2016(params);

    for loss in [0.0, 0.10, 0.25, 0.40] {
        let net = Network::new(99);
        net.set_faults(FaultProfile {
            loss,
            corrupt: loss / 2.0,
            ..FaultProfile::default()
        });
        let catalog = world.materialize(&net);

        let resolver = Resolver::new(
            &net,
            "172.16.0.10".parse().unwrap(),
            1,
            catalog.root_hints(),
        )
        .with_config(ResolverConfig {
            retries: 6,
            ..Default::default()
        });
        let mut path = WirePath::new(resolver);

        let mut store = SnapshotStore::new();
        let mut interner = SldInterner::new();
        sweep_with_path(&world, &mut path, Source::Com, 0, &mut store, &mut interner);

        let table = store.table(0, Source::Com).expect("table written");
        let failed: u32 = table.column_by_name("failed").unwrap().iter().sum();
        let stats = net.stats().snapshot();
        println!(
            "loss {:>4.0}%: {:>4} names swept, {:>3} failed ({:.1}%), {} datagrams sent, {} dropped, {} corrupted",
            loss * 100.0,
            table.rows(),
            failed,
            100.0 * f64::from(failed) / table.rows() as f64,
            stats.sent,
            stats.dropped,
            stats.corrupted,
        );
    }
    println!("\nretries + per-attempt timeouts keep the sweep usable well past 25% loss.");
}
