//! A `dig`-style lookup tool against the simulated Internet: builds a
//! small world, materialises it onto the network, and resolves whatever
//! name/type you pass, printing response sections dig-style.
//!
//! ```sh
//! cargo run --release --example dig -- d42.com A
//! cargo run --release --example dig -- www.d42.com A
//! cargo run --release --example dig -- cloudflare.com NS
//! cargo run --release --example dig              # picks a showcase set
//! ```

use dps_scope::authdns::Resolver;
use dps_scope::prelude::*;

fn print_resolution(qname: &Name, qtype: RrType, resolver: &mut Resolver) {
    println!("; <<>> dps-scope dig <<>> {qname} {qtype}");
    match resolver.resolve(qname, qtype) {
        Ok(res) => {
            println!(";; status: {}, elapsed: {} µs (virtual)", res.rcode, res.elapsed_us);
            println!(";; ANSWER SECTION ({} records):", res.answers.len());
            for rec in &res.answers {
                println!("{rec}");
            }
        }
        Err(e) => println!(";; resolution failed: {e}"),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let params = ScenarioParams { seed: 42, scale: 0.01, gtld_days: 30, cc_start_day: 30 };
    let mut world = World::imc2016(params);
    world.advance_to(Day(7));
    let net = Network::new(1);
    let catalog = world.materialize(&net);
    let mut resolver =
        Resolver::new(&net, "172.16.0.53".parse().unwrap(), 0, catalog.root_hints());

    if args.len() >= 2 {
        let qname: Name = args[0].parse().expect("valid name");
        let qtype: RrType = args[1].parse().expect("valid RR type");
        print_resolution(&qname, qtype, &mut resolver);
        return;
    }

    // Showcase: one domain per diversion flavour.
    println!("(no arguments: showing one domain per protection posture)\n");
    let mut shown = std::collections::HashSet::new();
    for (i, st) in world.domains().iter().enumerate() {
        if !st.alive_on(world.day()) || st.basket.is_some() {
            continue;
        }
        let key = std::mem::discriminant(&st.diversion);
        if !shown.insert(key) {
            continue;
        }
        let id = dps_scope::ecosystem::DomainId(i as u32);
        let apex = world.domain_name(id);
        println!("--- {:?} ---", st.diversion);
        print_resolution(&apex, RrType::A, &mut resolver);
        print_resolution(&apex.prepend("www").unwrap(), RrType::A, &mut resolver);
        print_resolution(&apex, RrType::Ns, &mut resolver);
        if shown.len() >= 5 {
            break;
        }
    }
}
