//! A `dig`-style lookup tool against the simulated Internet: builds a
//! small world, materialises it onto the network, and resolves whatever
//! name/type you pass, printing response sections dig-style.
//!
//! ```sh
//! cargo run --release --example dig -- d42.com A
//! cargo run --release --example dig -- www.d42.com A +cache
//! cargo run --release --example dig -- cloudflare.com NS +norecurse
//! cargo run --release --example dig              # picks a showcase set
//! ```
//!
//! Flags (anywhere on the command line, like real dig):
//! * `+cache`     route queries through the caching recursor (`dps-recursor`);
//!   each query runs twice so the second pass shows the cache at work.
//! * `+norecurse` use the bare iterative resolver, fresh descent per query
//!   (the default).

use dps_scope::authdns::{Resolution, ResolveError, Resolver};
use dps_scope::prelude::*;
use dps_scope::recursor::RecursorWorker;

enum Engine {
    Wire(Resolver),
    Cached(Recursor, RecursorWorker),
}

impl Engine {
    fn resolve(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        match self {
            Engine::Wire(r) => r.resolve(qname, qtype),
            Engine::Cached(_, w) => w.resolve(qname, qtype),
        }
    }
}

fn print_resolution(qname: &Name, qtype: RrType, engine: &mut Engine) {
    println!("; <<>> dps-scope dig <<>> {qname} {qtype}");
    match engine.resolve(qname, qtype) {
        Ok(res) => {
            println!(
                ";; status: {}, elapsed: {} µs (virtual)",
                res.rcode, res.elapsed_us
            );
            println!(";; ANSWER SECTION ({} records):", res.answers.len());
            for rec in &res.answers {
                println!("{rec}");
            }
        }
        Err(e) => println!(";; resolution failed: {e}"),
    }
    println!();
}

fn main() {
    let mut cached = false;
    let mut args: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "+cache" => cached = true,
            "+norecurse" => cached = false,
            _ => args.push(arg),
        }
    }

    let params = ScenarioParams {
        seed: 42,
        scale: 0.01,
        gtld_days: 30,
        cc_start_day: 30,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(7));
    let net = Network::new(1);
    let catalog = world.materialize(&net);
    let source: std::net::IpAddr = "172.16.0.53".parse().unwrap();

    let mut engine = if cached {
        let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
        let worker = recursor.worker(&net, source, 0);
        Engine::Cached(recursor, worker)
    } else {
        Engine::Wire(Resolver::new(&net, source, 0, catalog.root_hints()))
    };

    if args.len() >= 2 {
        let qname: Name = args[0].parse().expect("valid name");
        let qtype: RrType = args[1].parse().expect("valid RR type");
        print_resolution(&qname, qtype, &mut engine);
        if cached {
            // Ask again: the second pass is answered from cache.
            print_resolution(&qname, qtype, &mut engine);
        }
        print_stats(&net, &engine);
        return;
    }

    // Showcase: one domain per diversion flavour.
    println!("(no arguments: showing one domain per protection posture)\n");
    let mut shown = std::collections::HashSet::new();
    for (i, st) in world.domains().iter().enumerate() {
        if !st.alive_on(world.day()) || st.basket.is_some() {
            continue;
        }
        let key = std::mem::discriminant(&st.diversion);
        if !shown.insert(key) {
            continue;
        }
        let id = dps_scope::ecosystem::DomainId(i as u32);
        let apex = world.domain_name(id);
        println!("--- {:?} ---", st.diversion);
        print_resolution(&apex, RrType::A, &mut engine);
        print_resolution(&apex.prepend("www").unwrap(), RrType::A, &mut engine);
        print_resolution(&apex, RrType::Ns, &mut engine);
        if shown.len() >= 5 {
            break;
        }
    }
    print_stats(&net, &engine);
}

fn print_stats(net: &std::sync::Arc<Network>, engine: &Engine) {
    let sent = net.stats().snapshot().sent;
    match engine {
        Engine::Wire(_) => {
            println!(";; MODE: iterative (no cache); udp packets sent: {sent}");
        }
        Engine::Cached(recursor, _) => {
            let s = recursor.stats();
            let c = recursor.answer_cache().stats();
            println!(";; MODE: caching recursor; udp packets sent: {sent}");
            println!(
                ";; queries: {} (cache hits {}, misses {}, coalesced {})",
                s.queries, s.cache_hits, s.cache_misses, s.coalesced
            );
            println!(
                ";; answer cache: {} entries, {} inserts, {} evictions; infra cuts cached: {}",
                recursor.answer_cache().len(),
                c.inserts,
                c.evictions,
                recursor.infra_cache().len()
            );
        }
    }
}
