//! On-demand mitigation, domain's-eye view: watch a single customer turn
//! DDoS protection on and off, and see how the §3.4 methodology classifies
//! the resulting DNS/BGP footprint.
//!
//! ```sh
//! cargo run --release --example on_demand_mitigation
//! ```

use dps_scope::core::peaks::{classify_mode, UseMode};
use dps_scope::ecosystem::{DomainId, ScenarioParams, World};
use dps_scope::prelude::*;

fn describe(world: &World, id: DomainId) {
    let apex = world.domain_name(id);
    let www = apex.prepend("www").unwrap();
    let a = world.resolve(&apex, RrType::A).unwrap();
    let ns = world.resolve(&apex, RrType::Ns).unwrap();
    let w = world.resolve(&www, RrType::A).unwrap();
    let pfx2as = world.pfx2as();

    for rec in &a.answers {
        if let RData::A(ip) = rec.rdata {
            let origin = pfx2as
                .origins(std::net::IpAddr::V4(ip))
                .map(|(o, _)| format!("{:?}", o))
                .unwrap_or_else(|| "unrouted".into());
            println!("    {apex} A {ip}  (origin {origin})");
        }
    }
    for rec in &ns.answers {
        if let RData::Ns(host) = &rec.rdata {
            println!("    {apex} NS {host}");
        }
    }
    let chain = w.cname_chain();
    if chain.is_empty() {
        println!("    {www} → direct A record");
    } else {
        for hop in chain {
            println!("    {www} CNAME {hop}");
        }
    }
}

fn main() {
    let params = ScenarioParams {
        seed: 11,
        scale: 0.3,
        gtld_days: 120,
        cc_start_day: 120,
    };
    let mut world = World::imc2016(params);

    // Find a domain that flips protection several times: advance a copy of
    // the schedule and look for a state change.
    let candidates: Vec<DomainId> = (0..world.domains().len() as u32).map(DomainId).collect();
    let initial: Vec<Diversion> = world.domains().iter().map(|d| d.diversion).collect();

    // Probe the timeline day by day and remember flips.
    let mut flips: std::collections::HashMap<DomainId, Vec<(u32, Diversion)>> =
        std::collections::HashMap::new();
    for day in 0..120u32 {
        world.advance_to(Day(day));
        for &id in &candidates {
            let cur = world.domains()[id.0 as usize].diversion;
            let prev = flips
                .get(&id)
                .and_then(|v| v.last().map(|&(_, d)| d))
                .unwrap_or(initial[id.0 as usize]);
            if cur != prev {
                flips.entry(id).or_default().push((day, cur));
            }
        }
    }
    let (&star, moves) = flips
        .iter()
        .filter(|(id, v)| v.len() >= 3 && world.domains()[id.0 as usize].basket.is_none())
        .max_by_key(|(_, v)| v.len())
        .expect("an on-demand customer exists");

    println!("on-demand customer: {}", world.domain_name(star));
    println!("state changes over 120 days:");
    for (day, div) in moves {
        println!("  day {day:>3} ({}): {div:?}", Day(*day));
    }

    // Show the DNS footprint in the final diverted and undiverted states.
    println!("\nDNS footprint today (day 119):");
    describe(&world, star);

    // Run the real pipeline and show the methodology's verdict.
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: 120,
        cc_start_day: 120,
        stride: 1,
    })
    .run(&mut world);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);

    let entry = star.0 * 2;
    for ((e, p), tl) in &out.timelines.map {
        if *e == entry {
            let mode = classify_mode(&tl.asn);
            println!(
                "\nmethodology verdict for provider {}: {:?}",
                refs.names[*p as usize], mode
            );
            println!(
                "  diversion peaks (start, length in days): {:?}",
                tl.asn.runs()
            );
            assert!(matches!(mode, UseMode::OnDemand | UseMode::Ambiguous));
        }
    }
}
