//! Anomaly forensics (§4.4.1): find the big swings in a provider's daily
//! use count and trace them to the third party responsible — the way the
//! paper traced a 1.1M-domain Incapsula peak to Wix.
//!
//! ```sh
//! cargo run --release --example anomaly_forensics
//! ```

use dps_scope::core::attribution::{explain, find_anomalies};
use dps_scope::prelude::*;

fn main() {
    // 80 days is enough to catch the March 2015 Wix↔F5 swing (days 4–6)
    // and the May 2015 plateau onset (day 66).
    let params = ScenarioParams {
        seed: 3,
        scale: 0.3,
        gtld_days: 80,
        cc_start_day: 80,
    };
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: 80,
        cc_start_day: 80,
        stride: 1,
    })
    .run(&mut world);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let out = Scanner::new(&refs).run(&store);

    let mut explained = 0;
    for (p, name) in refs.names.iter().enumerate() {
        let series = &out.series.provider_any[p];
        let anomalies = find_anomalies(series, 8.0, 20);
        for a in anomalies {
            let day = out.series.days[a.day_index];
            let prev = out.series.days[a.day_index - 1];
            let attribution = explain(&store, &refs, p as u8, prev, day);
            println!(
                "{:<12} {}: Δ{:+}  (+{} joined, -{} left)",
                name,
                Day(day),
                a.delta,
                attribution.joined,
                attribution.left
            );
            for (sld, count) in &attribution.top_ns_slds {
                println!("    shared NS SLD   {sld:<24} ×{count}");
            }
            for (sld, count) in &attribution.top_cname_slds {
                println!("    shared CNAME    {sld:<24} ×{count}");
            }
            if let Some(party) = attribution.dominant_party() {
                println!("    → dominant third party: {party}");
            }
            explained += 1;
        }
    }
    assert!(explained > 0, "the Wix swings should be visible");
    println!("\n{explained} anomalies explained");
}
