//! Fuzz targets: one per untrusted-input decoder in the workspace.
//!
//! Each target is a pure function `&[u8] -> Result<(), String>` checking
//! two invariants on arbitrary bytes:
//!
//! 1. **No panic.** The harness wraps every call in `catch_unwind`; a
//!    panic is always a finding.
//! 2. **Decode∘encode idempotence.** Whatever decodes successfully must
//!    re-encode and decode back to an equal value. (The encoding itself
//!    need not be byte-identical — name compression, varint choices — but
//!    the *value* must survive.)
//!
//! Seeds are built with the real encoders so mutations start from
//! structurally valid inputs; the checked-in corpus under
//! `crates/fuzz/corpus/<target>/` adds regression inputs from previously
//! found bugs.

use dps_authdns::zonefile;
use dps_cluster::wire as cluster_wire;
use dps_dns::wire::{Decoder, Encoder};
use dps_dns::{Class, Message, Name, Question, RData, Record, RrType};
use dps_store::catalog::{CatalogDelta, PageMeta};
use std::collections::BTreeSet;

/// One fuzzable decoder.
pub struct Target {
    /// CLI name (`dpscope fuzz <name>`).
    pub name: &'static str,
    /// One-line description for listings.
    pub about: &'static str,
    /// The invariant checker; panics count as failures.
    pub check: fn(&[u8]) -> Result<(), String>,
    /// Structurally valid starting inputs.
    pub seeds: fn() -> Vec<Vec<u8>>,
}

/// All targets, in CLI listing order.
pub const TARGETS: &[Target] = &[
    Target {
        name: "dns_wire",
        about: "dns::wire name/record decode → re-encode → decode",
        check: check_dns_wire,
        seeds: seeds_dns_wire,
    },
    Target {
        name: "dns_message",
        about: "dns::message parse → to_bytes → parse",
        check: check_dns_message,
        seeds: seeds_dns_message,
    },
    Target {
        name: "zonefile",
        about: "authdns::zonefile parse → format → reparse",
        check: check_zonefile,
        seeds: seeds_zonefile,
    },
    Target {
        name: "store_format",
        about: "store catalog-delta decode → encode → decode",
        check: check_store_format,
        seeds: seeds_store_format,
    },
    Target {
        name: "cluster_frame",
        about: "cluster message decode + chunked frame reassembly",
        check: check_cluster_frame,
        seeds: seeds_cluster_frame,
    },
];

/// Looks a target up by CLI name.
pub fn find_target(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

// ---------------------------------------------------------------- dns_wire

fn check_dns_wire(input: &[u8]) -> Result<(), String> {
    // A name decoded from arbitrary bytes must survive re-encoding.
    let mut name_dec = Decoder::new(input);
    if let Ok(name) = name_dec.get_name() {
        let mut enc = Encoder::new();
        enc.put_name(&name)
            .map_err(|e| format!("decoded name failed to re-encode: {e:?}"))?;
        let bytes = enc.finish();
        let back = Decoder::new(&bytes)
            .get_name()
            .map_err(|e| format!("re-encoded name failed to decode: {e:?}"))?;
        if back != name {
            return Err(format!("name changed across re-encode: {name} → {back}"));
        }
    }
    // Same for a run of records.
    let mut dec = Decoder::new(input);
    for _ in 0..1024 {
        let Ok(rec) = dec.get_record() else {
            break;
        };
        let mut enc = Encoder::new();
        enc.put_record(&rec)
            .map_err(|e| format!("decoded record failed to re-encode: {e:?}"))?;
        let bytes = enc.finish();
        let back = Decoder::new(&bytes)
            .get_record()
            .map_err(|e| format!("re-encoded record failed to decode: {e:?}"))?;
        if back != rec {
            return Err(format!(
                "record changed across re-encode: {rec:?} → {back:?}"
            ));
        }
        if dec.remaining() == 0 {
            break;
        }
    }
    Ok(())
}

fn seeds_dns_wire() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    let name: Name = match "www.examp.le".parse() {
        Ok(n) => n,
        Err(_) => return seeds,
    };
    let mut enc = Encoder::new();
    if enc.put_name(&name).is_ok() {
        seeds.push(enc.finish());
    }
    for rdata in [
        RData::A([10, 0, 0, 1].into()),
        RData::Cname(name.clone()),
        RData::Txt(vec![b"v=spf1 -all".to_vec()]),
        RData::Mx {
            preference: 10,
            exchange: name.clone(),
        },
        RData::Raw {
            rtype: 41,
            data: vec![0, 3, 0, 2, 0xAA, 0xBB],
        },
    ] {
        let mut enc = Encoder::new();
        if enc
            .put_record(&Record::new(name.clone(), Class::In, 300, rdata))
            .is_ok()
        {
            seeds.push(enc.finish());
        }
    }
    seeds
}

// ------------------------------------------------------------- dns_message

fn check_dns_message(input: &[u8]) -> Result<(), String> {
    let Ok(msg) = Message::parse(input) else {
        return Ok(());
    };
    let bytes = msg
        .to_bytes()
        .map_err(|e| format!("parsed message failed to re-encode: {e:?}"))?;
    let back =
        Message::parse(&bytes).map_err(|e| format!("re-encoded message failed to parse: {e:?}"))?;
    if back != msg {
        return Err(format!(
            "message changed across re-encode:\n  {msg:?}\n  {back:?}"
        ));
    }
    Ok(())
}

fn seeds_dns_message() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    let Ok(name) = "www.examp.le".parse::<Name>() else {
        return seeds;
    };
    let query = Message::query(0x1234, Question::new(name.clone(), RrType::A));
    if let Ok(b) = query.to_bytes() {
        seeds.push(b);
    }
    let mut resp = query.answer_template();
    resp.header.aa = true;
    resp.answers.push(Record::new(
        name.clone(),
        Class::In,
        60,
        RData::A([10, 0, 0, 2].into()),
    ));
    resp.authorities.push(Record::new(
        name.clone(),
        Class::In,
        3600,
        RData::Ns(name.clone()),
    ));
    // An EDNS OPT in the additional section.
    resp.additionals.push(Record::new(
        Name::root(),
        Class::from_code(1232),
        0,
        RData::Raw {
            rtype: 41,
            data: Vec::new(),
        },
    ));
    if let Ok(b) = resp.to_bytes() {
        seeds.push(b);
    }
    seeds
}

// ---------------------------------------------------------------- zonefile

fn check_zonefile(input: &[u8]) -> Result<(), String> {
    let text = String::from_utf8_lossy(input);
    let Ok(origin) = "fuzz.test".parse::<Name>() else {
        return Ok(());
    };
    let Ok(zone) = zonefile::parse_zone(&origin, &text) else {
        return Ok(());
    };
    let rendered = zonefile::format_zone(&zone);
    let back = zonefile::parse_zone(&origin, &rendered)
        .map_err(|e| format!("formatted zone failed to reparse: {e}"))?;
    let collect = |z: &dps_authdns::Zone| -> Vec<String> {
        let mut v: Vec<String> = z.iter().map(|(o, r)| format!("{o} {r:?}")).collect();
        v.sort();
        v
    };
    if back.origin() != zone.origin() {
        return Err(format!(
            "origin changed across format: {} → {}",
            zone.origin(),
            back.origin()
        ));
    }
    let (a, b) = (collect(&zone), collect(&back));
    if a != b {
        return Err(format!(
            "records changed across format:\n  before: {a:?}\n  after:  {b:?}"
        ));
    }
    Ok(())
}

fn seeds_zonefile() -> Vec<Vec<u8>> {
    vec![
        b"$ORIGIN examp.le.\n$TTL 300\n@ IN A 10.0.0.1\nwww IN CNAME @\n".to_vec(),
        b"@ IN NS ns1.examp.le.\nns1 IN A 10.0.0.53\n".to_vec(),
        b"@ IN MX 10 mx.examp.le.\n@ IN TXT \"v=spf1 -all\"\n".to_vec(),
        b"@ IN TXT \"two words\" \"second string\"\n".to_vec(),
        b"@ IN AAAA fd00::1\n; comment line\n".to_vec(),
    ]
}

// ------------------------------------------------------------ store_format

fn check_store_format(input: &[u8]) -> Result<(), String> {
    let Some(delta) = CatalogDelta::decode(input) else {
        return Ok(());
    };
    let bytes = delta.encode();
    let back = CatalogDelta::decode(&bytes)
        .ok_or_else(|| "re-encoded delta failed to decode".to_string())?;
    if back != delta {
        return Err(format!(
            "delta changed across re-encode:\n  {delta:?}\n  {back:?}"
        ));
    }
    Ok(())
}

fn seeds_store_format() -> Vec<Vec<u8>> {
    let empty = CatalogDelta::default();
    let populated = CatalogDelta {
        pages: vec![
            PageMeta {
                day: 1,
                source: 0,
                offset: 64,
                len: 128,
                rows: 10,
                data_points: 40,
                raw_bytes: 4096,
            },
            PageMeta {
                day: 1,
                source: 1,
                offset: 192,
                len: 64,
                rows: 4,
                data_points: 16,
                raw_bytes: 1024,
            },
        ],
        uniques: vec![BTreeSet::from([1u32, 2, 7]), BTreeSet::from([40, 41])],
        dict_base: 3,
        dict_tail: vec!["ns1.hostco0.net".to_string(), "examp.le".to_string()],
    };
    vec![empty.encode(), populated.encode()]
}

// ----------------------------------------------------------- cluster_frame

fn check_cluster_frame(input: &[u8]) -> Result<(), String> {
    // Message body decode∘encode idempotence.
    if let Some(msg) = cluster_wire::decode(input) {
        let bytes = cluster_wire::encode(&msg);
        let back = cluster_wire::decode(&bytes)
            .ok_or_else(|| "re-encoded message failed to decode".to_string())?;
        if back != msg {
            return Err(format!(
                "message changed across re-encode:\n  {msg:?}\n  {back:?}"
            ));
        }
    }
    // Frame reassembly must not depend on how bytes are chunked.
    let drain = |buf: &mut cluster_wire::FrameBuf| -> (Vec<Vec<u8>>, bool) {
        let mut frames = Vec::new();
        loop {
            match buf.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => return (frames, false),
                Err(_) => return (frames, true),
            }
        }
    };
    let mut whole = cluster_wire::FrameBuf::new();
    whole.extend(input);
    let (frames_whole, err_whole) = drain(&mut whole);

    // Deterministic chunk size derived from the input itself.
    let chunk = 1 + usize::from(input.first().copied().unwrap_or(0)) % 7;
    let mut chunked = cluster_wire::FrameBuf::new();
    let mut frames_chunked = Vec::new();
    let mut err_chunked = false;
    for piece in input.chunks(chunk) {
        chunked.extend(piece);
        let (mut fs, err) = drain(&mut chunked);
        frames_chunked.append(&mut fs);
        if err {
            err_chunked = true;
            break;
        }
    }
    if frames_whole != frames_chunked || err_whole != err_chunked {
        return Err(format!(
            "frame reassembly depends on chunking: whole {} frames (err {err_whole}), \
             chunked-by-{chunk} {} frames (err {err_chunked})",
            frames_whole.len(),
            frames_chunked.len()
        ));
    }
    Ok(())
}

fn seeds_cluster_frame() -> Vec<Vec<u8>> {
    let msgs = [
        cluster_wire::Msg::Hello {
            proto: cluster_wire::PROTO_VERSION,
            name: "fuzz-agent".to_string(),
        },
        cluster_wire::Msg::Heartbeat { seq: 7 },
        cluster_wire::Msg::Bye,
    ];
    let mut seeds = Vec::new();
    for m in &msgs {
        let body = cluster_wire::encode(m);
        seeds.push(cluster_wire::frame(&body));
        seeds.push(body);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_check;

    #[test]
    fn every_target_has_working_seeds() {
        for t in TARGETS {
            let seeds = (t.seeds)();
            assert!(!seeds.is_empty(), "{} has no seeds", t.name);
            for (i, s) in seeds.iter().enumerate() {
                assert_eq!(
                    run_check(t.check, s),
                    Ok(()),
                    "{} seed {i} fails its own check",
                    t.name
                );
            }
        }
    }

    #[test]
    fn find_target_resolves_all_names() {
        for t in TARGETS {
            assert!(find_target(t.name).is_some());
        }
        assert!(find_target("no-such-target").is_none());
    }

    #[test]
    fn targets_tolerate_degenerate_inputs() {
        for t in TARGETS {
            for input in [&[][..], &[0][..], &[0xFF; 64][..]] {
                assert!(
                    run_check(t.check, input).is_ok(),
                    "{} fails on degenerate input {input:?}",
                    t.name
                );
            }
        }
    }
}
