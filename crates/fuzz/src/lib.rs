//! # dps-fuzz — seed-deterministic mutation fuzzing for the decoders
//!
//! Every byte-level decoder in the workspace claims two properties:
//! *no panic on any input* and *decode∘encode is the identity on whatever
//! decodes*. Proptest exercises those claims with well-shaped random
//! values; this crate attacks them with hostile ones — corpus seeds run
//! through byte- and structure-level mutators, driven by a splitmix64
//! generator, so a `(target, seed, iters)` triple replays the exact same
//! inputs on every machine.
//!
//! No dependencies, no wall clock, no ambient randomness: the crate is in
//! dps-analyzer's determinism scope, which is what makes the CI gate
//! (`ci.sh fuzz-smoke`) meaningful — a failure there is a real decoder
//! bug, not flake.
//!
//! A found failure is greedily minimised (chunk removal, then byte
//! zeroing, under a fixed check budget) so the committed regression input
//! is small enough to read.

pub mod targets;

pub use targets::{find_target, Target, TARGETS};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Inputs never grow beyond this during mutation (decoders size-check
/// early; giant inputs only slow the loop down).
pub const MAX_INPUT_LEN: usize = 4096;

/// Check-call budget for minimising one failure.
pub const MINIMISE_BUDGET: usize = 4096;

/// splitmix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): the simplest generator that passes BigCrush, and tiny
/// enough to make the fuzzer dependency-free.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xFF) as u8
    }
}

/// Byte values that disproportionately find decoder edges: zero, sign
/// and length extremes, and DNS-specific magic (compression pointer
/// `0xC0 0x0C`, OPT type 41).
const INTERESTING_BYTES: &[u8] = &[0x00, 0x01, 0x7F, 0x80, 0xC0, 0x0C, 0xFF, 41];

/// 16-bit values worth planting where counts and lengths live.
const INTERESTING_U16: &[u16] = &[0, 1, 41, 255, 256, 512, 0x8000, 0xC00C, 0xFFFF];

/// Applies one random mutation to `input`. `corpus` feeds the splice
/// mutator; the result is capped at [`MAX_INPUT_LEN`].
pub fn mutate(rng: &mut SplitMix64, input: &[u8], corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut out = input.to_vec();
    match rng.below(9) {
        // Bit flip.
        0 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] ^= 1 << rng.below(8);
        }
        // Random byte overwrite.
        1 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] = rng.byte();
        }
        // Insert a random byte.
        2 => {
            let i = rng.below(out.len() + 1);
            out.insert(i, rng.byte());
        }
        // Delete a byte.
        3 if !out.is_empty() => {
            let i = rng.below(out.len());
            out.remove(i);
        }
        // Truncate.
        4 if !out.is_empty() => {
            out.truncate(rng.below(out.len()));
        }
        // Duplicate a chunk somewhere else.
        5 if !out.is_empty() => {
            let start = rng.below(out.len());
            let len = 1 + rng.below((out.len() - start).min(16));
            let chunk: Vec<u8> = out[start..start + len].to_vec();
            let at = rng.below(out.len() + 1);
            for (k, b) in chunk.into_iter().enumerate() {
                out.insert((at + k).min(out.len()), b);
            }
        }
        // Splice: prefix of this input + suffix of another corpus entry.
        6 if !corpus.is_empty() => {
            let other = &corpus[rng.below(corpus.len())];
            if !other.is_empty() {
                let cut_a = rng.below(out.len() + 1);
                let cut_b = rng.below(other.len());
                out.truncate(cut_a);
                out.extend_from_slice(&other[cut_b..]);
            }
        }
        // Plant an interesting byte.
        7 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())];
        }
        // Plant an interesting big-endian u16 (counts, lengths, pointers).
        _ => {
            if out.len() >= 2 {
                let i = rng.below(out.len() - 1);
                let v = INTERESTING_U16[rng.below(INTERESTING_U16.len())].to_be_bytes();
                out[i] = v[0];
                out[i + 1] = v[1];
            } else {
                out.push(rng.byte());
            }
        }
    }
    out.truncate(MAX_INPUT_LEN);
    out
}

/// One input that broke a target.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The mutated input as generated.
    pub input: Vec<u8>,
    /// The same failure, greedily minimised.
    pub minimised: Vec<u8>,
    /// Panic message or invariant-violation description.
    pub reason: String,
}

/// What one fuzzing run did.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Iterations executed.
    pub iters: u64,
    /// Corpus entries the run started from (seeds + extra).
    pub corpus_size: usize,
    /// Distinct failures found (capped; duplicates by reason are merged).
    pub failures: Vec<Failure>,
}

/// Runs `check` on `input`, converting a panic into `Err`.
pub fn run_check(check: fn(&[u8]) -> Result<(), String>, input: &[u8]) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| check(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Greedily minimises a failing input: repeated chunk removal (halving
/// sizes), then byte zeroing, until nothing shrinks or the check budget
/// runs out. The failure *reason* may drift during minimisation (a
/// smaller input may trip a different assert); only failure-ness is
/// preserved.
pub fn minimise(check: fn(&[u8]) -> Result<(), String>, input: &[u8]) -> Vec<u8> {
    let mut cur = input.to_vec();
    let mut budget = MINIMISE_BUDGET;
    let still_fails = |bytes: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        run_check(check, bytes).is_err()
    };
    if !still_fails(&cur, &mut budget) {
        return cur;
    }
    let mut changed = true;
    while changed && budget > 0 {
        changed = false;
        // Remove chunks, largest first.
        let mut size = cur.len() / 2;
        while size >= 1 && budget > 0 {
            let mut start = 0;
            while start < cur.len() && budget > 0 {
                let end = (start + size).min(cur.len());
                let mut cand = Vec::with_capacity(cur.len() - (end - start));
                cand.extend_from_slice(&cur[..start]);
                cand.extend_from_slice(&cur[end..]);
                if cand.len() < cur.len() && still_fails(&cand, &mut budget) {
                    cur = cand;
                    changed = true;
                } else {
                    start += size;
                }
            }
            size /= 2;
        }
        // Canonicalise surviving bytes to zero.
        for i in 0..cur.len() {
            if budget == 0 {
                break;
            }
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            if still_fails(&cand, &mut budget) {
                cur = cand;
                changed = true;
            }
        }
    }
    cur
}

/// Fuzzes one target: `iters` mutated inputs derived deterministically
/// from `seed`, starting from the target's built-in seeds plus
/// `extra_corpus` (checked-in corpus files). Stops collecting after
/// `max_failures` distinct failure reasons.
pub fn fuzz(
    target: &Target,
    iters: u64,
    seed: u64,
    extra_corpus: &[Vec<u8>],
    max_failures: usize,
) -> FuzzOutcome {
    let mut corpus: Vec<Vec<u8>> = (target.seeds)();
    corpus.extend(extra_corpus.iter().cloned());
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }
    let corpus_size = corpus.len();

    // Panics inside targets are expected findings; keep them off stderr
    // for the duration of the run.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = SplitMix64::new(seed);
    let mut failures: Vec<Failure> = Vec::new();
    let mut executed = 0u64;
    for _ in 0..iters {
        executed += 1;
        let base = &corpus[rng.below(corpus.len())];
        let mut input = base.clone();
        for _ in 0..1 + rng.below(4) {
            input = mutate(&mut rng, &input, &corpus);
        }
        if let Err(reason) = run_check(target.check, &input) {
            if failures.iter().any(|f| f.reason == reason) {
                continue; // already recorded this failure mode
            }
            let minimised = minimise(target.check, &input);
            failures.push(Failure {
                input,
                minimised,
                reason,
            });
            if failures.len() >= max_failures {
                break;
            }
        }
    }

    std::panic::set_hook(quiet);
    FuzzOutcome {
        iters: executed,
        corpus_size,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(2016);
        let mut b = SplitMix64::new(2016);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // All distinct over a short run.
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len());
        // Different seeds diverge.
        let mut c = SplitMix64::new(2017);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn mutate_is_deterministic_for_a_seed() {
        let corpus = vec![vec![1u8, 2, 3, 4, 5, 6, 7, 8]];
        let gen = |seed: u64| -> Vec<Vec<u8>> {
            let mut rng = SplitMix64::new(seed);
            (0..32)
                .map(|_| mutate(&mut rng, &corpus[0], &corpus))
                .collect()
        };
        assert_eq!(gen(7), gen(7));
    }

    #[test]
    fn mutate_respects_length_cap() {
        let mut rng = SplitMix64::new(1);
        let big = vec![0xAB; MAX_INPUT_LEN];
        for _ in 0..200 {
            let m = mutate(&mut rng, &big, std::slice::from_ref(&big));
            assert!(m.len() <= MAX_INPUT_LEN);
        }
    }

    #[test]
    fn run_check_converts_panics() {
        fn panicky(input: &[u8]) -> Result<(), String> {
            assert!(input.len() < 3, "too long");
            Ok(())
        }
        assert!(run_check(panicky, &[1]).is_ok());
        let err = run_check(panicky, &[1, 2, 3]).unwrap_err();
        assert!(err.starts_with("panic:"), "{err}");
    }

    #[test]
    fn minimise_shrinks_to_the_essential_byte() {
        // Fails iff the input contains 0x42 anywhere.
        fn has_42(input: &[u8]) -> Result<(), String> {
            if input.contains(&0x42) {
                Err("contains 0x42".into())
            } else {
                Ok(())
            }
        }
        let noisy: Vec<u8> = (0..200u8).collect(); // includes 0x42
        let min = minimise(has_42, &noisy);
        assert_eq!(min, vec![0x42]);
    }

    #[test]
    fn fuzz_finds_a_planted_bug_deterministically() {
        // A "decoder" that panics on a magic two-byte sequence.
        fn fragile(input: &[u8]) -> Result<(), String> {
            if input.windows(2).any(|w| w == [0xC0, 0x0C]) {
                // Simulated decoder crash.
                #[allow(clippy::panic)]
                {
                    panic!("hit the magic sequence");
                }
            }
            Ok(())
        }
        let target = Target {
            name: "planted",
            about: "test target",
            check: fragile,
            seeds: || vec![vec![0u8; 16]],
        };
        let a = fuzz(&target, 20_000, 2016, &[], 4);
        let b = fuzz(&target, 20_000, 2016, &[], 4);
        assert!(!a.failures.is_empty(), "planted bug not found");
        assert_eq!(
            a.failures.iter().map(|f| &f.input).collect::<Vec<_>>(),
            b.failures.iter().map(|f| &f.input).collect::<Vec<_>>(),
            "same seed must find the same inputs"
        );
        // Minimisation got it down to little more than the magic pair.
        assert!(a.failures[0].minimised.len() <= 4);
    }
}
