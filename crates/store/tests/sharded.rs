//! Sharded-archive integration: manifest + N shard files must be
//! indistinguishable from a single-file archive through the `StoreReader`
//! surface, resume must roll partially-committed shards back to the
//! manifest's coverage, and `shards = 1` through `StoreWriter` must stay
//! byte-identical to the historical `ArchiveWriter` layout.

use dps_columnar::{Schema, StringDict, Table, TableBuilder};
use dps_store::{
    sharded::{manifest_path, shard_path, shard_range},
    ArchiveWriter, ShardedArchive, ShardedWriter, StoreReader, StoreWriter,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_base(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dps-sharded-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("archive.dps")
}

fn cleanup(base: &Path) {
    if let Some(dir) = base.parent() {
        std::fs::remove_dir_all(dir).ok();
    }
}

fn schema() -> Schema {
    Schema::new(&["day", "entry", "v4", "asn"])
}

fn table(day: u32, rows: u32) -> Table {
    let mut b = TableBuilder::new(schema());
    for i in 0..rows {
        b.push_row(&[day, i * 2, 0x0A00_0000 + i, 13335 + (i % 3)]);
    }
    b.finish()
}

fn dict() -> StringDict {
    let mut d = StringDict::new();
    d.intern("cloudflare.com");
    d.intern("akamai.com");
    d
}

fn write_days(w: &mut StoreWriter, days: std::ops::Range<u32>, dict: &StringDict) {
    for day in days {
        for source in 0..3u8 {
            w.append_table(day, source, &table(day, 20 + day + u32::from(source)), 100)
                .unwrap();
        }
        w.commit(dict).unwrap();
    }
}

#[test]
fn shard_range_partitions_exactly() {
    for rows in [0usize, 1, 2, 7, 100, 8193] {
        for n in [1u32, 2, 3, 5, 16] {
            let mut covered = 0usize;
            for k in 0..n {
                let (start, end) = shard_range(rows, k, n);
                assert_eq!(start, covered, "rows={rows} n={n} k={k}");
                assert!(end >= start);
                covered = end;
            }
            assert_eq!(covered, rows, "ranges must cover all rows exactly once");
        }
    }
}

#[test]
fn sharded_roundtrip_matches_single_file() {
    let single = temp_base("single");
    let sharded = temp_base("sharded");
    let dict = dict();
    let mut ws = StoreWriter::create_store(&single, 1, Some("entry")).unwrap();
    let mut wm = StoreWriter::create_store(&sharded, 3, Some("entry")).unwrap();
    write_days(&mut ws, 0..4, &dict);
    write_days(&mut wm, 0..4, &dict);
    drop((ws, wm));

    let a = StoreReader::open_auto(&single).unwrap();
    let b = StoreReader::open_auto(&sharded).unwrap();
    assert!(!a.is_sharded());
    assert!(b.is_sharded());
    assert_eq!(b.n_shards(), 3);
    assert_eq!(a.n_sources(), b.n_sources());
    for source in 0..3u8 {
        assert_eq!(a.days(source), b.days(source));
        let sa = a.stats(source).unwrap();
        let sb = b.stats(source).unwrap();
        assert_eq!(sa.days, sb.days);
        assert_eq!(sa.data_points, sb.data_points, "source {source}");
        assert_eq!(sa.unique_keys, sb.unique_keys, "source {source}");
        for day in a.days(source) {
            let ta = a.table(day, source).unwrap().unwrap();
            let tb = b.table(day, source).unwrap().unwrap();
            assert_eq!(ta.schema().names(), tb.schema().names());
            assert_eq!(ta.rows(), tb.rows());
            for col in ta.schema().names() {
                assert_eq!(
                    ta.column_by_name(col).unwrap(),
                    tb.column_by_name(col).unwrap(),
                    "day {day} source {source} column {col}"
                );
            }
            let pa = a.project(day, source, &["entry", "asn"]).unwrap().unwrap();
            let pb = b.project(day, source, &["entry", "asn"]).unwrap().unwrap();
            assert_eq!(
                pa.column_by_name("asn").unwrap(),
                pb.column_by_name("asn").unwrap()
            );
        }
    }
    assert_eq!(
        a.dict().get("akamai.com"),
        b.dict().get("akamai.com"),
        "manifest carries the real dictionary"
    );
    assert!(b.verify().unwrap().all_ok());
    // Shard sub-tables reassemble the logical page in shard order.
    let whole = b.table(2, 1).unwrap().unwrap();
    let mut rows = 0usize;
    for shard in 0..3 {
        if let Some(part) = b.shard_table(shard, 2, 1).unwrap() {
            rows += part.rows();
        }
    }
    assert_eq!(rows, whole.rows());
    cleanup(&single);
    cleanup(&sharded);
}

#[test]
fn store_writer_with_one_shard_is_byte_identical_to_archive_writer() {
    let via_store = temp_base("one-shard");
    let via_archive = temp_base("plain");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&via_store, 1, Some("entry")).unwrap();
        write_days(&mut w, 0..3, &dict);
    }
    {
        let mut w = ArchiveWriter::create(&via_archive, Some("entry")).unwrap();
        for day in 0..3u32 {
            for source in 0..3u8 {
                w.append_table(day, source, &table(day, 20 + day + u32::from(source)), 100)
                    .unwrap();
            }
            w.commit(&dict).unwrap();
        }
    }
    assert!(
        !manifest_path(&via_store).exists(),
        "shards=1 must not create a manifest"
    );
    assert_eq!(
        std::fs::read(&via_store).unwrap(),
        std::fs::read(&via_archive).unwrap(),
        "StoreWriter with shards=1 must keep the historical single-file bytes"
    );
    cleanup(&via_store);
    cleanup(&via_archive);
}

#[test]
fn sharded_resume_appends_after_clean_commit() {
    let base = temp_base("resume");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..2, &dict);
    }
    {
        let mut w = StoreWriter::resume_or_create(&base, 2, Some("entry")).unwrap();
        assert_eq!(w.n_shards(), 2);
        assert_eq!(w.last_day(), Some(1));
        assert!(w.contains(1, 0));
        assert!(!w.contains(2, 0));
        assert_eq!(
            w.dict().get("akamai.com"),
            dict.get("akamai.com"),
            "dictionary recovered from the manifest"
        );
        write_days(&mut w, 2..4, &dict);
    }
    let archive = StoreReader::open_auto(&base).unwrap();
    assert_eq!(archive.days(0), vec![0, 1, 2, 3]);
    assert!(archive.verify().unwrap().all_ok());
    cleanup(&base);
}

#[test]
fn resume_or_create_rejects_shard_count_mismatch() {
    let base = temp_base("mismatch");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 3, Some("entry")).unwrap();
        write_days(&mut w, 0..1, &dict);
    }
    assert!(
        StoreWriter::resume_or_create(&base, 2, Some("entry")).is_err(),
        "resuming a 3-shard archive with --shards 2 must fail loudly"
    );
    // shards=1 means "keep whatever layout exists": resume succeeds.
    let w = StoreWriter::resume_or_create(&base, 1, Some("entry")).unwrap();
    assert_eq!(w.n_shards(), 3);
    cleanup(&base);

    let plain = temp_base("plain-mismatch");
    {
        let mut w = StoreWriter::create_store(&plain, 1, Some("entry")).unwrap();
        write_days(&mut w, 0..1, &dict);
    }
    assert!(
        StoreWriter::resume_or_create(&plain, 4, Some("entry")).is_err(),
        "a single-file archive cannot be resumed with --shards > 1"
    );
    cleanup(&plain);
}

/// Crash between the shard commits and the manifest commit: the shards
/// durably hold day k+1, the manifest does not. Resume must roll every
/// shard back to the manifest's coverage, and re-appending the same day
/// must produce files byte-identical to an uninterrupted run.
#[test]
fn crash_before_manifest_commit_rolls_shards_back() {
    let crashed = temp_base("crash");
    let witness = temp_base("witness");
    let dict = dict();

    // Uninterrupted witness run: days 0..3 in one go.
    {
        let mut w = StoreWriter::create_store(&witness, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..3, &dict);
    }

    // Crashed run: commit days 0..2 cleanly, snapshot the manifest, commit
    // day 2, then restore the stale manifest — exactly the on-disk state a
    // crash between shard fsync and manifest fsync leaves behind.
    {
        let mut w = StoreWriter::create_store(&crashed, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..2, &dict);
    }
    let stale_manifest = std::fs::read(manifest_path(&crashed)).unwrap();
    {
        let mut w = StoreWriter::resume_or_create(&crashed, 2, Some("entry")).unwrap();
        write_days(&mut w, 2..3, &dict);
    }
    std::fs::write(manifest_path(&crashed), &stale_manifest).unwrap();

    // Resume: shards carry day 2, the manifest only covers 0..2 → roll back.
    {
        let mut w = StoreWriter::resume_or_create(&crashed, 2, Some("entry")).unwrap();
        assert_eq!(w.last_day(), Some(1), "uncovered shard commits discarded");
        assert!(!w.contains(2, 0));
        write_days(&mut w, 2..3, &dict);
    }
    assert_eq!(
        std::fs::read(manifest_path(&crashed)).unwrap(),
        std::fs::read(manifest_path(&witness)).unwrap(),
        "replayed manifest must match the uninterrupted run"
    );
    for shard in 0..2u32 {
        assert_eq!(
            std::fs::read(shard_path(&crashed, shard)).unwrap(),
            std::fs::read(shard_path(&witness, shard)).unwrap(),
            "replayed shard {shard} must match the uninterrupted run"
        );
    }
    let archive = ShardedArchive::open(&crashed).unwrap();
    assert!(archive.verify().unwrap().all_ok());
    cleanup(&crashed);
    cleanup(&witness);
}

/// A shard missing days the manifest covers (e.g. a deleted or truncated
/// shard file) is unrecoverable and must be a clean error, not silent
/// data loss.
#[test]
fn shard_behind_manifest_is_a_clean_error() {
    let base = temp_base("behind");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..1, &dict);
    }
    let one_day = std::fs::read(shard_path(&base, 1)).unwrap();
    {
        let mut w = StoreWriter::resume_or_create(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 1..3, &dict);
    }
    // Shard 1 loses days 1..3 while the manifest keeps them.
    std::fs::write(shard_path(&base, 1), &one_day).unwrap();
    let err = match ShardedWriter::resume(&base, Some("entry")) {
        Err(err) => err,
        Ok(_) => panic!("resume must fail when a shard is behind the manifest"),
    };
    assert!(
        err.to_string().contains("missing days"),
        "unexpected error: {err}"
    );
    assert!(ShardedArchive::open(&base).is_err());
    cleanup(&base);
}

#[test]
fn flipped_shard_byte_fails_verify_with_page_location() {
    let base = temp_base("flip");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..2, &dict);
    }
    let shard = shard_path(&base, 1);
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[20] ^= 0x01; // inside the first page region (pages start at 8)
    std::fs::write(&shard, &bytes).unwrap();
    let archive = ShardedArchive::open(&base).unwrap();
    let report = archive.verify().unwrap();
    assert!(!report.all_ok());
    assert!(
        report.corrupt.contains(&(0, 0)),
        "corrupt list names the damaged logical page: {:?}",
        report.corrupt
    );
    assert!(archive.table(0, 0).is_err());
    cleanup(&base);
}

#[test]
fn open_auto_detects_layout_and_single_file_shard_view() {
    let base = temp_base("auto");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 1, Some("entry")).unwrap();
        write_days(&mut w, 0..1, &dict);
    }
    let r = StoreReader::open_auto(&base).unwrap();
    assert!(!r.is_sharded());
    assert_eq!(r.n_shards(), 1);
    // Shard 0 of a single-file archive is the whole page; other shards
    // are empty, so per-shard scan tasks work uniformly over both layouts.
    let whole = r.table(0, 2).unwrap().unwrap();
    let shard0 = r.shard_table(0, 0, 2).unwrap().unwrap();
    assert_eq!(shard0.rows(), whole.rows());
    assert!(r.shard_table(1, 0, 2).unwrap().is_none());
    cleanup(&base);
}

/// An open `ShardedArchive` keeps serving reads found in its catalog even
/// as a writer appends more days — and a reopen sees the new coverage.
#[test]
fn reopen_after_append_sees_new_days() {
    let base = temp_base("reopen");
    let dict = dict();
    {
        let mut w = StoreWriter::create_store(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 0..1, &dict);
    }
    let before = ShardedArchive::open(&base).unwrap();
    {
        let mut w = StoreWriter::resume_or_create(&base, 2, Some("entry")).unwrap();
        write_days(&mut w, 1..2, &dict);
    }
    assert_eq!(before.days(0), vec![0]);
    assert!(before.table(0, 0).unwrap().is_some());
    let after = ShardedArchive::open(&base).unwrap();
    assert_eq!(after.days(0), vec![0, 1]);
    assert!(after.verify().unwrap().all_ok());
    cleanup(&base);
}
