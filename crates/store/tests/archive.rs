//! Archive format integration: write→open roundtrips, checkpoint/resume
//! recovery, and corruption negatives (truncated page, flipped byte,
//! corrupt footer → clean `io::Error`, never a panic or wrong data).

use dps_columnar::{Schema, StringDict, Table, TableBuilder};
use dps_store::{Archive, ArchiveWriter, ScanQuery};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_archive(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dps-store-{tag}-{}-{}.dps",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn schema() -> Schema {
    Schema::new(&["day", "entry", "v4", "asn"])
}

fn table(day: u32, rows: u32) -> Table {
    let mut b = TableBuilder::new(schema());
    for i in 0..rows {
        b.push_row(&[day, i * 2, 0x0A00_0000 + i, 13335 + (i % 3)]);
    }
    b.finish()
}

fn write_archive(path: &Path, days: u32) -> StringDict {
    let mut dict = StringDict::new();
    dict.intern("cloudflare.com");
    let mut w = ArchiveWriter::create(path, Some("entry")).unwrap();
    for day in 0..days {
        for source in 0..2u8 {
            w.append_table(day, source, &table(day, 20 + day + u32::from(source)), 100)
                .unwrap();
        }
        w.commit(&dict).unwrap();
    }
    dict
}

#[test]
fn write_open_roundtrip_with_exact_stats() {
    let path = temp_archive("roundtrip");
    let dict = write_archive(&path, 3);
    let archive = Archive::open(&path).unwrap();
    assert_eq!(archive.n_sources(), 2);
    assert_eq!(archive.days(0), vec![0, 1, 2]);
    let st = archive.stats(0).unwrap();
    assert_eq!(st.days, 3);
    assert_eq!(st.first_day, Some(0));
    assert_eq!(st.last_day, Some(2));
    assert_eq!(st.data_points, 300);
    // Unique entry codes: day 2 / source 0 has the most rows (22), and
    // entry codes 0,2,..,42 nest across days.
    assert_eq!(st.unique_keys.len(), 22);
    assert_eq!(
        archive.dict().get("cloudflare.com"),
        dict.get("cloudflare.com")
    );
    let t = archive.table(1, 1).unwrap().unwrap();
    assert_eq!(t.rows(), 22);
    assert_eq!(t.column_by_name("day").unwrap()[0], 1);
    assert!(archive.table(7, 0).unwrap().is_none());
    assert!(archive.verify().unwrap().all_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn scan_prunes_and_projects() {
    let path = temp_archive("scan");
    write_archive(&path, 5);
    let archive = Archive::open(&path).unwrap();
    // Pruning: only days 1..=2, source 1.
    let items = archive
        .scan(&ScanQuery::all().days(1, 2).source(1))
        .unwrap();
    assert_eq!(items.len(), 2);
    assert!(items.iter().all(|it| it.source == 1));
    assert_eq!(items[0].day, 1);
    assert_eq!(items[1].day, 2);
    // Projection: two columns only, and the counters prove fewer decoded
    // bytes than a full scan of the same pages.
    let before = archive.counters();
    let narrow = archive
        .scan(&ScanQuery::all().columns(&["entry", "asn"]))
        .unwrap();
    let after_narrow = archive.counters().since(&before);
    assert!(narrow
        .iter()
        .all(|it| it.table.schema().names() == ["entry", "asn"]));
    let full = archive.scan(&ScanQuery::all()).unwrap();
    let after_full = archive.counters().since(&before);
    let full_delta = after_full.since(&after_narrow);
    assert_eq!(narrow.len(), full.len());
    assert!(
        after_narrow.decoded_bytes < full_delta.decoded_bytes,
        "projected scan decoded {} bytes, full scan {}",
        after_narrow.decoded_bytes,
        full_delta.decoded_bytes
    );
    // Projected values equal the full table's columns.
    for (n, f) in narrow.iter().zip(&full) {
        assert_eq!(
            n.table.column_by_name("asn").unwrap(),
            f.table.column_by_name("asn").unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_cache_serves_repeated_scans_without_decoding() {
    let path = temp_archive("warm");
    write_archive(&path, 10);
    let archive = Archive::open(&path).unwrap();
    let cold = archive.counters();
    archive.par_scan(&ScanQuery::all()).unwrap();
    let after_first = archive.counters();
    let first = after_first.since(&cold);
    assert_eq!(first.pages_decoded, 20);
    archive.par_scan(&ScanQuery::all()).unwrap();
    let second = archive.counters().since(&after_first);
    assert_eq!(second.pages_decoded, 0, "warm pass decodes nothing");
    assert_eq!(second.cache_hits, 20);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_after_clean_commit_appends() {
    let path = temp_archive("resume");
    let dict = write_archive(&path, 2);
    {
        let mut w = ArchiveWriter::resume(&path, Some("entry")).unwrap();
        assert_eq!(w.last_day(), Some(1));
        assert!(w.contains(1, 0));
        assert!(!w.contains(2, 0));
        assert_eq!(
            w.dict().get("cloudflare.com"),
            dict.get("cloudflare.com"),
            "dictionary recovered from footer"
        );
        for source in 0..2u8 {
            w.append_table(2, source, &table(2, 22 + u32::from(source)), 100)
                .unwrap();
        }
        w.commit(&dict).unwrap();
    }
    let archive = Archive::open(&path).unwrap();
    assert_eq!(archive.days(0), vec![0, 1, 2]);
    assert_eq!(archive.stats(0).unwrap().data_points, 300);
    assert!(archive.verify().unwrap().all_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_recovers_from_torn_tail() {
    let path = temp_archive("torn");
    let dict = write_archive(&path, 3);
    let committed_len = std::fs::metadata(&path).unwrap().len();
    // Simulate a writer killed mid-append: garbage pages and half a footer
    // after the durable trailer.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&vec![0xAB; 4096]).unwrap();
        f.write_all(b"DPSFOO").unwrap(); // torn magic prefix
    }
    assert!(
        Archive::open(&path).is_err(),
        "strict open refuses a torn tail"
    );
    let mut w = ArchiveWriter::resume(&path, Some("entry")).unwrap();
    assert_eq!(w.last_day(), Some(2), "recovered the last durable footer");
    w.commit(&dict).unwrap();
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        committed_len,
        "recommit truncates the torn tail and restores the committed image"
    );
    let archive = Archive::open(&path).unwrap();
    assert!(archive.verify().unwrap().all_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_page_byte_is_a_clean_error() {
    let path = temp_archive("flip");
    write_archive(&path, 2);
    // Flip one byte inside the first page region (pages start at offset 8).
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let archive = Archive::open(&path).unwrap();
    let report = archive.verify().unwrap();
    assert!(!report.all_ok());
    assert_eq!(report.corrupt.len(), 1);
    let err = archive
        .table(report.corrupt[0].0, report.corrupt[0].1)
        .unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
    // Untouched pages still load.
    assert!(archive.table(1, 1).unwrap().is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_and_corrupt_footers_are_clean_errors() {
    let path = temp_archive("footer");
    write_archive(&path, 2);
    let bytes = std::fs::read(&path).unwrap();

    // Truncated mid-footer: open and resume both fail without panicking
    // (resume still finds the *previous* committed footer).
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    assert!(Archive::open(&path).is_err());
    let w = ArchiveWriter::resume(&path, None).unwrap();
    assert_eq!(w.last_day(), Some(0), "fell back to the day-0 footer");

    // Flipped byte inside the final footer: checksum rejects it.
    let mut corrupt = bytes.clone();
    let n = corrupt.len();
    corrupt[n - 30] ^= 0xFF;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(Archive::open(&path).is_err());

    // Not an archive at all.
    std::fs::write(&path, b"not an archive").unwrap();
    assert!(Archive::open(&path).is_err());
    assert!(ArchiveWriter::resume(&path, None).is_err());

    // Empty file.
    std::fs::write(&path, b"").unwrap();
    assert!(Archive::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}

/// Regression for the old `Mutex<File>` seek+read page path: positioned
/// reads (`read_exact_at`) carry their own offset, so concurrent scan
/// threads reading *disjoint* pages share no cursor. The barrier forces
/// every read to start at the same instant; if page reads ever went back
/// to a shared seek position without a lock, the racing cursors would
/// corrupt reads and the per-page content assertions below would fail.
#[test]
fn concurrent_disjoint_page_reads_do_not_serialize() {
    let path = temp_archive("concurrent");
    write_archive(&path, 8);
    // Cache disabled: every access must hit the positioned-read path.
    let archive = Archive::open_with_cache(&path, 0).unwrap();
    let threads = 4usize;
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let archive = &archive;
            let barrier = &barrier;
            scope.spawn(move || {
                for pass in 0..25 {
                    barrier.wait();
                    // Each thread owns a disjoint slice of days; both
                    // sources of each day are read back and checked.
                    for day in (t as u32 * 2)..(t as u32 * 2 + 2) {
                        for source in 0..2u8 {
                            let table = archive.table(day, source).unwrap().unwrap();
                            assert_eq!(
                                table.rows() as u32,
                                20 + day + u32::from(source),
                                "pass {pass}: thread {t} read a torn page"
                            );
                            assert!(table
                                .column_by_name("day")
                                .unwrap()
                                .iter()
                                .all(|&d| d == day));
                        }
                    }
                }
            });
        }
    });
    let io = archive.counters();
    assert_eq!(io.pages_decoded, 4 * 25 * 2 * 2);
    assert_eq!(io.cache_hits, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_page_rejected() {
    let path = temp_archive("dup");
    let mut w = ArchiveWriter::create(&path, None).unwrap();
    w.append_table(0, 0, &table(0, 5), 25).unwrap();
    assert!(w.append_table(0, 0, &table(0, 5), 25).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_mirrors_counters_and_footer_walks() {
    let path = temp_archive("telemetry");
    write_archive(&path, 3);
    let registry = dps_telemetry::Registry::new();
    let archive = Archive::open_with_telemetry(&path, 1 << 20, &registry).unwrap();
    archive.scan(&ScanQuery::all()).unwrap();
    archive.scan(&ScanQuery::all()).unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counters["store.footer.walks"], 1);
    assert_eq!(snap.counters["store.scans"], 2);
    // 3 days × 2 sources = 6 pages; cold pass misses, warm pass hits.
    assert_eq!(snap.counters["store.cache.misses"], 6);
    assert_eq!(snap.counters["store.cache.hits"], 6);
    assert_eq!(snap.counters["store.pages.decoded"], 6);
    let io = archive.counters();
    assert_eq!(snap.counters["store.bytes.read"], io.disk_bytes_read);
    let chain = &snap.histograms["store.footer.chain"];
    assert_eq!(chain.count, 1);
    assert_eq!(chain.sum, 3, "one committed footer delta per day");
    assert_eq!(snap.histograms["store.scan.pages"].sum, 12);
    std::fs::remove_file(&path).ok();
}
