//! Property: archive write→open→projected-scan roundtrips exactly — for
//! random day/source/column subsets, what comes back from the file equals
//! the in-memory tables it was built from.

use dps_columnar::{Schema, StringDict, Table, TableBuilder};
use dps_store::{Archive, ArchiveWriter, ScanQuery};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

const COLS: [&str; 5] = ["day", "entry", "v4", "asn", "failed"];

fn temp_archive() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dps-store-prop-{}-{}.dps",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn build_table(day: u32, rows: &[[u32; 5]]) -> Table {
    let mut b = TableBuilder::new(Schema::new(&COLS));
    for row in rows {
        let mut r = *row;
        r[0] = day;
        b.push_row(&r);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn projected_scan_equals_in_memory(
        // (day, source, rows) triples; duplicates collapse via the map.
        specs in proptest::collection::vec(
            (
                (0u32..6),
                (0u8..3),
                proptest::collection::vec(
                    (any::<u32>(), any::<u32>(), any::<u32>(), (0u32..2))
                        .prop_map(|(a, b, c, d)| [0u32, a, b, c, d]),
                    0..25,
                ),
            ),
            1..10,
        ),
        // Random projection: non-empty subset of column indices.
        proj_mask in 1u8..32,
        day_lo in 0u32..6,
        day_span in 0u32..6,
        // 0..3 pins one source; 3 scans all of them.
        pick_source in 0u8..4,
    ) {
        let mut expected: BTreeMap<(u32, u8), Table> = BTreeMap::new();
        for (day, source, rows) in &specs {
            expected
                .entry((*day, *source))
                .or_insert_with(|| build_table(*day, rows));
        }

        let path = temp_archive();
        let mut dict = StringDict::new();
        dict.intern("incapdns.net");
        let mut writer = ArchiveWriter::create(&path, Some("entry")).unwrap();
        for ((day, source), table) in &expected {
            writer
                .append_table(*day, *source, table, u64::from(table.rows() as u32) * 5)
                .unwrap();
        }
        writer.commit(&dict).unwrap();

        let archive = Archive::open(&path).unwrap();
        prop_assert!(archive.verify().unwrap().all_ok());

        let projection: Vec<&str> = COLS
            .iter()
            .enumerate()
            .filter(|(i, _)| proj_mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let mut query = ScanQuery::all()
            .days(day_lo, day_lo + day_span)
            .columns(&projection);
        if pick_source < 3 {
            query = query.source(pick_source);
        }
        let items = archive.scan(&query).unwrap();

        // Every scanned item matches the in-memory table, column by column.
        for item in &items {
            let mem = &expected[&(item.day, item.source)];
            prop_assert_eq!(item.table.rows(), mem.rows());
            for col in &projection {
                prop_assert_eq!(
                    item.table.column_by_name(col).unwrap(),
                    mem.column_by_name(col).unwrap(),
                    "column {} of (day {}, source {})", col, item.day, item.source
                );
            }
        }
        // And the scan is complete: exactly the pages the predicate admits.
        let expected_keys: Vec<(u32, u8)> = expected
            .keys()
            .copied()
            .filter(|&(d, s)| {
                d >= day_lo && d <= day_lo + day_span && (pick_source == 3 || pick_source == s)
            })
            .collect();
        let got_keys: Vec<(u32, u8)> = items.iter().map(|it| (it.day, it.source)).collect();
        prop_assert_eq!(got_keys, expected_keys);

        std::fs::remove_file(&path).ok();
    }
}
