//! CRC-32 (IEEE 802.3 polynomial, the one Parquet/gzip/zlib use), table
//! driven. The environment has no registry access, so this is implemented
//! here rather than pulled from the `crc32fast` crate.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // dps: allow(taint-panic, reason = "the & 0xFF mask keeps the index below TABLE's fixed length of 256 for any input byte")
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
