//! # dps-store — single-file paged columnar archive
//!
//! The paper's Stage II is Parquet on a cluster filesystem: compact
//! per-day columnar tables that Stage III scans with column projection.
//! This crate is that storage engine for the reproduction: **one file**,
//! random access by footer catalog, bounded memory, restartable
//! collection.
//!
//! On disk (see [`format`] for the exact layout): a magic header, then
//! row-group **pages** — one encoded `dps-columnar` table chunk each,
//! CRC32-checksummed — then a footer **catalog** mapping `(day, source)`
//! to byte ranges, row counts and exact per-source statistics, plus the
//! interned string dictionary. Opening an archive reads only the footer.
//!
//! Three moving parts on top of the format:
//!
//! * [`ArchiveWriter`] — streaming writes with per-day durable commits;
//!   a killed sweep resumes from its last committed footer instead of
//!   day 0 (the footer is re-located by backward scan if the tail is
//!   torn).
//! * [`Archive`] — the read handle: CRC-checked lazy page loads through a
//!   sharded LRU [`PageCache`] keyed by `(day, source, projection)`, with
//!   [`ScanQuery`] pruning (day/source predicates skip pages entirely)
//!   and projection (only the touched columns are decoded).
//! * [`CounterSnapshot`] — per-archive I/O and decode counters, so tests
//!   and benchmarks can assert that projection and caching actually avoid
//!   work.
//!
//! ```
//! use dps_columnar::{Schema, TableBuilder};
//! use dps_store::{Archive, ArchiveWriter, ScanQuery};
//!
//! let path = std::env::temp_dir().join("dps-store-doctest.dps");
//! let mut writer = ArchiveWriter::create(&path, Some("entry")).unwrap();
//! let mut b = TableBuilder::new(Schema::new(&["day", "entry", "asn"]));
//! b.push_row(&[0, 10, 13335]);
//! b.push_row(&[0, 12, 19551]);
//! let dict = dps_columnar::StringDict::new();
//! writer.append_table(0, 0, &b.finish(), 10).unwrap();
//! writer.commit(&dict).unwrap();
//!
//! let archive = Archive::open(&path).unwrap();
//! assert_eq!(archive.stats(0).unwrap().data_points, 10);
//! let items = archive.scan(&ScanQuery::all().columns(&["asn"])).unwrap();
//! assert_eq!(items[0].table.column_by_name("asn").unwrap(), &[13335, 19551]);
//! std::fs::remove_file(&path).ok();
//! ```

pub mod archive;
pub mod cache;
pub mod catalog;
pub mod crc32;
pub mod format;
pub mod sharded;
pub mod writer;

pub use archive::{Archive, CounterSnapshot, ScanItem, ScanQuery, StoreMetrics, VerifyReport};
pub use cache::PageCache;
pub use catalog::{Catalog, PageMeta, SourceStats};
pub use sharded::{ShardedArchive, ShardedWriter, StoreReader, StoreWriter};
pub use writer::ArchiveWriter;
