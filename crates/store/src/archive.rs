//! Read side: open an archive by its footer, serve CRC-checked pages
//! through the LRU cache, and run projection/pruning scans.

// Untrusted-input module: page bytes come off disk and may be corrupt;
// reads must surface errors, never panic (enforced by dps-analyzer's
// panic-safety family and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::cache::{PageCache, PageKey};
use crate::catalog::{Catalog, PageMeta, SourceStats};
use crate::crc32::crc32;
use crate::format;
use dps_columnar::{mapreduce, StringDict, Table};
use dps_telemetry::{Counter, Histogram, Registry};
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default page-cache capacity (decoded bytes).
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// I/O and decode counters, updated by every page access. These are what
/// the acceptance tests assert on: projection must decode strictly fewer
/// bytes than full-table loads, and a warm cache must decode orders of
/// magnitude fewer pages on repeated passes.
#[derive(Default)]
pub struct Counters {
    /// Pages read from disk and decoded.
    pub pages_decoded: AtomicU64,
    /// Pages served from the cache.
    pub cache_hits: AtomicU64,
    /// Compressed bytes read from disk (page chunks + checksums).
    pub disk_bytes_read: AtomicU64,
    /// Decoded bytes materialised (4 bytes per decoded cell).
    pub decoded_bytes: AtomicU64,
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Pages read from disk and decoded.
    pub pages_decoded: u64,
    /// Pages served from the cache.
    pub cache_hits: u64,
    /// Compressed bytes read from disk.
    pub disk_bytes_read: u64,
    /// Decoded bytes materialised.
    pub decoded_bytes: u64,
}

impl CounterSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            pages_decoded: self.pages_decoded - earlier.pages_decoded,
            cache_hits: self.cache_hits - earlier.cache_hits,
            disk_bytes_read: self.disk_bytes_read - earlier.disk_bytes_read,
            decoded_bytes: self.decoded_bytes - earlier.decoded_bytes,
        }
    }
}

/// Telemetry handles mirroring [`Counters`] into a shared
/// [`Registry`]. Default handles are detached (no registry), so archives
/// opened without telemetry pay only uncontended atomic increments.
#[derive(Clone, Default)]
pub struct StoreMetrics {
    /// `store.cache.hits` — pages served from the page cache.
    pub cache_hits: Counter,
    /// `store.cache.misses` — pages fetched past the cache.
    pub cache_misses: Counter,
    /// `store.pages.decoded` — pages read from disk and decoded.
    pub pages_decoded: Counter,
    /// `store.bytes.read` — raw bytes read from disk.
    pub bytes_read: Counter,
    /// `store.footer.walks` — footer chains walked at open.
    pub footer_walks: Counter,
    /// `store.footer.chain` — commits per walked footer chain.
    pub footer_chain: Histogram,
    /// `store.scans` — scan/par_scan calls issued.
    pub scans: Counter,
    /// `store.scan.pages` — pages surviving pruning, per scan.
    pub scan_pages: Histogram,
}

impl StoreMetrics {
    /// Handles registered under the `store.*` names in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            cache_hits: registry.counter("store.cache.hits"),
            cache_misses: registry.counter("store.cache.misses"),
            pages_decoded: registry.counter("store.pages.decoded"),
            bytes_read: registry.counter("store.bytes.read"),
            footer_walks: registry.counter("store.footer.walks"),
            footer_chain: registry.histogram("store.footer.chain"),
            scans: registry.counter("store.scans"),
            scan_pages: registry.histogram("store.scan.pages"),
        }
    }
}

/// Predicate + projection for a scan. Defaults to everything.
#[derive(Debug, Clone, Default)]
pub struct ScanQuery {
    days: Option<(u32, u32)>,
    sources: Option<Vec<u8>>,
    columns: Option<Vec<String>>,
}

impl ScanQuery {
    /// Scan everything, all columns.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to days in `[from, to]` (inclusive). Pages outside the
    /// range are pruned from the catalog — never read, never decoded.
    pub fn days(mut self, from: u32, to: u32) -> Self {
        self.days = Some((from, to));
        self
    }

    /// Restrict to one source.
    pub fn source(mut self, source: u8) -> Self {
        self.sources = Some(vec![source]);
        self
    }

    /// Restrict to a set of sources.
    pub fn sources(mut self, sources: &[u8]) -> Self {
        self.sources = Some(sources.to_vec());
        self
    }

    /// Project to the named columns (decode only these).
    pub fn columns(mut self, cols: &[&str]) -> Self {
        self.columns = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    fn matches(&self, meta: &PageMeta) -> bool {
        if let Some((from, to)) = self.days {
            if meta.day < from || meta.day > to {
                return false;
            }
        }
        if let Some(sources) = &self.sources {
            if !sources.contains(&meta.source) {
                return false;
            }
        }
        true
    }
}

/// One scanned page: identity plus its (possibly projected) table.
#[derive(Debug, Clone)]
pub struct ScanItem {
    /// Measurement day.
    pub day: u32,
    /// Source id.
    pub source: u8,
    /// The decoded table (shared with the page cache).
    pub table: Arc<Table>,
}

/// Result of a full-archive checksum validation.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Pages checked.
    pub pages: usize,
    /// Pages whose stored CRC32 matched.
    pub ok: usize,
    /// `(day, source)` of pages that failed.
    pub corrupt: Vec<(u32, u8)>,
}

impl VerifyReport {
    /// True when every page checksum matched.
    pub fn all_ok(&self) -> bool {
        self.corrupt.is_empty() && self.ok == self.pages
    }
}

/// A read-only handle on a committed archive file.
///
/// Opening reads only the footer catalog; pages are fetched lazily (and
/// checksum-verified) on access, through a sharded LRU cache of decoded
/// tables. The handle is `Sync`: scans fan page decodes out over the
/// mapreduce worker pool.
pub struct Archive {
    file: File,
    catalog: Catalog,
    stats: Vec<SourceStats>,
    cache: PageCache,
    counters: Counters,
    metrics: StoreMetrics,
}

impl Archive {
    /// Opens `path` with the default page-cache capacity.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_cache(path, DEFAULT_CACHE_BYTES)
    }

    /// Opens `path` with a page cache bounded at `cache_bytes` decoded
    /// bytes (0 disables caching).
    pub fn open_with_cache(path: &Path, cache_bytes: usize) -> io::Result<Self> {
        Self::open_inner(path, cache_bytes, StoreMetrics::default())
    }

    /// Opens `path` publishing `store.*` metrics into `registry`.
    pub fn open_with_telemetry(
        path: &Path,
        cache_bytes: usize,
        registry: &Registry,
    ) -> io::Result<Self> {
        Self::open_inner(path, cache_bytes, StoreMetrics::new(registry))
    }

    fn open_inner(path: &Path, cache_bytes: usize, metrics: StoreMetrics) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let footer = format::read_footer(&mut file)?;
        metrics.footer_walks.inc();
        metrics.footer_chain.observe(footer.chain_len);
        let stats = footer.catalog.stats();
        Ok(Self {
            file,
            catalog: footer.catalog,
            stats,
            cache: PageCache::new(cache_bytes),
            counters: Counters::default(),
            metrics,
        })
    }

    /// The footer catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared string dictionary.
    pub fn dict(&self) -> &StringDict {
        &self.catalog.dict
    }

    /// Source slots present (highest source id + 1).
    pub fn n_sources(&self) -> usize {
        self.catalog.n_sources()
    }

    /// Exact statistics for `source`, if it has any pages.
    pub fn stats(&self, source: u8) -> Option<&SourceStats> {
        self.stats.get(source as usize)
    }

    /// Days archived for `source`, ascending.
    pub fn days(&self, source: u8) -> Vec<u32> {
        self.catalog.days(source)
    }

    /// Sum of encoded page bytes (Table 1 "stored size").
    pub fn total_stored_bytes(&self) -> u64 {
        self.catalog.total_stored_bytes()
    }

    /// Counter values right now.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            pages_decoded: self.counters.pages_decoded.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            disk_bytes_read: self.counters.disk_bytes_read.load(Ordering::Relaxed),
            decoded_bytes: self.counters.decoded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached page (cold-scan benchmarks).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The full table for `(day, source)`, if archived.
    pub fn table(&self, day: u32, source: u8) -> io::Result<Option<Arc<Table>>> {
        let Some(meta) = self.catalog.pages.get(&(day, source)) else {
            return Ok(None);
        };
        self.load(meta, None).map(Some)
    }

    /// A projected table for `(day, source)`: only `cols` are decoded.
    pub fn project(&self, day: u32, source: u8, cols: &[&str]) -> io::Result<Option<Arc<Table>>> {
        let Some(meta) = self.catalog.pages.get(&(day, source)) else {
            return Ok(None);
        };
        let cols: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
        self.load(meta, Some(&cols)).map(Some)
    }

    /// Pages matching `query`'s day/source predicates, in `(day, source)`
    /// order, decoded sequentially under its projection.
    pub fn scan(&self, query: &ScanQuery) -> io::Result<Vec<ScanItem>> {
        let metas = self.pruned(query);
        self.metrics.scans.inc();
        self.metrics.scan_pages.observe(metas.len() as u64);
        metas
            .into_iter()
            .map(|meta| {
                let table = self.load(meta, query.columns.as_deref())?;
                Ok(ScanItem {
                    day: meta.day,
                    source: meta.source,
                    table,
                })
            })
            .collect()
    }

    /// Like [`scan`](Self::scan) but decoding pages on the mapreduce
    /// worker pool. Order is still deterministic `(day, source)`.
    pub fn par_scan(&self, query: &ScanQuery) -> io::Result<Vec<ScanItem>> {
        let metas = self.pruned(query);
        self.metrics.scans.inc();
        self.metrics.scan_pages.observe(metas.len() as u64);
        let items = mapreduce::par_map(&metas, |&meta| {
            let table = self.load(meta, query.columns.as_deref())?;
            Ok(ScanItem {
                day: meta.day,
                source: meta.source,
                table,
            })
        });
        items.into_iter().collect()
    }

    /// Validates every page checksum without decoding any table.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for meta in self.catalog.pages.values() {
            report.pages += 1;
            let bytes = self.read_page_bytes(meta)?;
            if self.checksum_ok(&bytes) {
                report.ok += 1;
            } else {
                report.corrupt.push((meta.day, meta.source));
            }
        }
        Ok(report)
    }

    /// Catalog pages surviving `query`'s predicates (the pruning step).
    fn pruned<'a>(&'a self, query: &ScanQuery) -> Vec<&'a PageMeta> {
        let range = match query.days {
            Some((from, to)) if from <= to => (from, 0u8)..=(to, u8::MAX),
            Some(_) => return Vec::new(),
            None => (0u32, 0u8)..=(u32::MAX, u8::MAX),
        };
        self.catalog
            .pages
            .range(range)
            .map(|(_, meta)| meta)
            .filter(|meta| query.matches(meta))
            .collect()
    }

    /// Reads one page's raw chunk + CRC trailer from disk. Positioned
    /// (`read_exact_at`) so concurrent scan threads never serialize on a
    /// shared cursor: each call carries its own offset into the kernel.
    fn read_page_bytes(&self, meta: &PageMeta) -> io::Result<Vec<u8>> {
        let total = usize::try_from(meta.len + format::PAGE_CRC_LEN)
            .map_err(|_| io::Error::other("dps-store: page too large for this platform"))?;
        let mut buf = vec![0u8; total];
        self.file.read_exact_at(&mut buf, meta.offset)?;
        self.counters
            .disk_bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.metrics.bytes_read.add(buf.len() as u64);
        Ok(buf)
    }

    /// True if a raw page buffer's stored CRC matches its chunk. A buffer
    /// too short to even hold the CRC trailer fails the check.
    fn checksum_ok(&self, buf: &[u8]) -> bool {
        let Some(body_len) = buf.len().checked_sub(format::PAGE_CRC_LEN as usize) else {
            return false;
        };
        let (Some(body), Some(tail)) = (buf.get(..body_len), buf.get(body_len..)) else {
            return false;
        };
        let Ok(tail) = <[u8; 4]>::try_from(tail) else {
            return false;
        };
        crc32(body) == u32::from_le_bytes(tail)
    }

    /// Fetches a page through the cache, reading + checksumming + decoding
    /// on miss.
    fn load(&self, meta: &PageMeta, projection: Option<&[String]>) -> io::Result<Arc<Table>> {
        let key: PageKey = (meta.day, meta.source, projection.map(<[String]>::to_vec));
        if let Some(table) = self.cache.get(&key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.cache_hits.inc();
            return Ok(table);
        }
        self.metrics.cache_misses.inc();
        let buf = self.read_page_bytes(meta)?;
        if !self.checksum_ok(&buf) {
            return Err(io::Error::other(format!(
                "dps-store: page (day {}, source {}) checksum mismatch",
                meta.day, meta.source
            )));
        }
        let body_len = buf.len().saturating_sub(format::PAGE_CRC_LEN as usize);
        let body = buf.get(..body_len).unwrap_or(&[]);
        let table = match projection {
            None => Table::from_bytes(body),
            Some(cols) => {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                Table::from_bytes_projected(body, &refs)
            }
        }
        .map_err(|e| {
            io::Error::other(format!(
                "dps-store: page (day {}, source {}) decode failed: {e}",
                meta.day, meta.source
            ))
        })?;
        let decoded = table.raw_len();
        self.counters.pages_decoded.fetch_add(1, Ordering::Relaxed);
        self.metrics.pages_decoded.inc();
        self.counters
            .decoded_bytes
            .fetch_add(decoded as u64, Ordering::Relaxed);
        let table = Arc::new(table);
        self.cache.insert(key, Arc::clone(&table), decoded);
        Ok(table)
    }
}
