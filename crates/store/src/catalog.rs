//! The footer catalog: everything needed to open an archive without
//! touching its pages — page directory, per-source unique-key sets, and
//! the interned string dictionary.
//!
//! On disk the catalog is stored *incrementally*: each commit's footer
//! carries only a [`CatalogDelta`] — the pages, new unique ids, and
//! dictionary tail added since the previous commit — and the full
//! [`Catalog`] is rebuilt by applying the footer chain oldest-first.
//! This keeps per-day durable checkpoints O(day) instead of O(history):
//! a 550-day sweep would otherwise embed ~550 copies of an ever-growing
//! dictionary as dead bytes.

use dps_columnar::varint;
use dps_columnar::StringDict;
use std::collections::{BTreeMap, BTreeSet};

/// Directory entry for one page: where the encoded table chunk lives and
/// the exact statistics recorded when it was written (row count and true
/// collected data points — nothing is estimated on reload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    /// Measurement day of the page.
    pub day: u32,
    /// Source id (dense index; the store is agnostic to what it names).
    pub source: u8,
    /// Byte offset of the encoded table chunk in the archive file.
    pub offset: u64,
    /// Length of the encoded table chunk (excluding the CRC32 trailer).
    pub len: u64,
    /// Rows in the table.
    pub rows: u64,
    /// Collected data points (resource records) behind the table.
    pub data_points: u64,
    /// Uncompressed size of the table (4 bytes per cell).
    pub raw_bytes: u64,
}

/// Per-source aggregate statistics, recomputed exactly from the catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// First measured day, if any.
    pub first_day: Option<u32>,
    /// Last measured day.
    pub last_day: Option<u32>,
    /// Number of pages (measured days) for the source.
    pub days: u32,
    /// Collected data points over all pages.
    pub data_points: u64,
    /// Encoded bytes over all pages.
    pub stored_bytes: u64,
    /// Uncompressed bytes over all pages.
    pub raw_bytes: u64,
    /// Unique key-column values observed over the whole period.
    pub unique_keys: BTreeSet<u32>,
}

/// The decoded footer catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Page directory, keyed `(day, source)`.
    pub pages: BTreeMap<(u32, u8), PageMeta>,
    /// Per-source sets of unique key-column values (index = source id).
    pub uniques: Vec<BTreeSet<u32>>,
    /// The shared string dictionary.
    pub dict: StringDict,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            pages: BTreeMap::new(),
            uniques: Vec::new(),
            dict: StringDict::new(),
        }
    }

    /// Number of source slots (highest source id + 1).
    pub fn n_sources(&self) -> usize {
        let from_pages = self
            .pages
            .keys()
            .map(|&(_, s)| s as usize + 1)
            .max()
            .unwrap_or(0);
        from_pages.max(self.uniques.len())
    }

    /// Days with a page for `source`, ascending.
    pub fn days(&self, source: u8) -> Vec<u32> {
        self.pages
            .keys()
            .filter(|&&(_, s)| s == source)
            .map(|&(d, _)| d)
            .collect()
    }

    /// Sum of encoded page bytes.
    pub fn total_stored_bytes(&self) -> u64 {
        self.pages.values().map(|p| p.len).sum()
    }

    /// Exact per-source statistics (index = source id).
    pub fn stats(&self) -> Vec<SourceStats> {
        let mut out = vec![SourceStats::default(); self.n_sources()];
        for page in self.pages.values() {
            let Some(st) = out.get_mut(page.source as usize) else {
                continue;
            };
            st.first_day = Some(st.first_day.map_or(page.day, |d| d.min(page.day)));
            st.last_day = Some(st.last_day.map_or(page.day, |d| d.max(page.day)));
            st.days += 1;
            st.data_points += page.data_points;
            st.stored_bytes += page.len;
            st.raw_bytes += page.raw_bytes;
        }
        for (i, set) in self.uniques.iter().enumerate() {
            if let Some(st) = out.get_mut(i) {
                st.unique_keys = set.clone();
            }
        }
        out
    }

    /// Applies one commit's delta (oldest-first). `None` on duplicate
    /// directory entries, a dictionary-base mismatch, or a dictionary tail
    /// that re-interns an existing string — all signs of corruption.
    pub fn apply(&mut self, delta: &CatalogDelta) -> Option<()> {
        for meta in &delta.pages {
            if self
                .pages
                .insert((meta.day, meta.source), meta.clone())
                .is_some()
            {
                return None;
            }
        }
        if self.uniques.len() < delta.uniques.len() {
            self.uniques
                .resize_with(delta.uniques.len(), Default::default);
        }
        for (mine, new) in self.uniques.iter_mut().zip(&delta.uniques) {
            mine.extend(new.iter().copied());
        }
        if self.dict.len() as u64 != delta.dict_base {
            return None;
        }
        for (i, s) in delta.dict_tail.iter().enumerate() {
            let expect = delta.dict_base + i as u64;
            if u64::from(self.dict.intern(s)) != expect {
                return None; // tail string was already interned
            }
        }
        Some(())
    }
}

/// What one commit adds to the catalog: its new pages, the unique key ids
/// first seen by those pages, and the strings appended to the dictionary.
/// This is what a footer stores — see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogDelta {
    /// Pages appended by this commit.
    pub pages: Vec<PageMeta>,
    /// Per-source unique key ids first observed by this commit.
    pub uniques: Vec<BTreeSet<u32>>,
    /// Dictionary length before this commit's tail (validation anchor).
    pub dict_base: u64,
    /// Strings this commit appended to the dictionary, in id order.
    pub dict_tail: Vec<String>,
}

impl CatalogDelta {
    /// Serialises the delta into footer bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::put_u64(&mut out, self.pages.len() as u64);
        for page in &self.pages {
            varint::put_u64(&mut out, u64::from(page.day));
            varint::put_u64(&mut out, u64::from(page.source));
            varint::put_u64(&mut out, page.offset);
            varint::put_u64(&mut out, page.len);
            varint::put_u64(&mut out, page.rows);
            varint::put_u64(&mut out, page.data_points);
            varint::put_u64(&mut out, page.raw_bytes);
        }
        varint::put_u64(&mut out, self.uniques.len() as u64);
        for set in &self.uniques {
            varint::put_u64(&mut out, set.len() as u64);
            let mut prev = 0u64;
            for &id in set {
                // Sorted ascending, so deltas are non-negative.
                varint::put_u64(&mut out, u64::from(id) - prev);
                prev = u64::from(id);
            }
        }
        varint::put_u64(&mut out, self.dict_base);
        varint::put_u64(&mut out, self.dict_tail.len() as u64);
        for s in &self.dict_tail {
            varint::put_u64(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Parses footer bytes produced by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n_pages = varint::get_u64(buf, &mut pos)? as usize;
        // Each page entry needs at least 7 varint bytes.
        if n_pages > buf.len() {
            return None;
        }
        let mut pages = Vec::with_capacity(n_pages);
        let mut seen = BTreeSet::new();
        for _ in 0..n_pages {
            let day = u32::try_from(varint::get_u64(buf, &mut pos)?).ok()?;
            let source = u8::try_from(varint::get_u64(buf, &mut pos)?).ok()?;
            if !seen.insert((day, source)) {
                return None; // duplicate directory entry
            }
            pages.push(PageMeta {
                day,
                source,
                offset: varint::get_u64(buf, &mut pos)?,
                len: varint::get_u64(buf, &mut pos)?,
                rows: varint::get_u64(buf, &mut pos)?,
                data_points: varint::get_u64(buf, &mut pos)?,
                raw_bytes: varint::get_u64(buf, &mut pos)?,
            });
        }
        let n_sources = varint::get_u64(buf, &mut pos)? as usize;
        if n_sources > 256 {
            return None;
        }
        let mut uniques = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            let n = varint::get_u64(buf, &mut pos)? as usize;
            if n > buf.len() {
                return None;
            }
            let mut set = BTreeSet::new();
            let mut prev = 0u64;
            for _ in 0..n {
                // checked: a hostile delta can push the running sum past
                // u64::MAX (fuzzer-found; overflow panics in debug builds).
                prev = prev.checked_add(varint::get_u64(buf, &mut pos)?)?;
                set.insert(u32::try_from(prev).ok()?);
            }
            uniques.push(set);
        }
        let dict_base = varint::get_u64(buf, &mut pos)?;
        let n_tail = varint::get_u64(buf, &mut pos)? as usize;
        if n_tail > buf.len() {
            return None;
        }
        let mut dict_tail = Vec::with_capacity(n_tail);
        for _ in 0..n_tail {
            let len = varint::get_u64(buf, &mut pos)? as usize;
            let bytes = buf.get(pos..pos.checked_add(len)?)?;
            pos += len;
            dict_tail.push(std::str::from_utf8(bytes).ok()?.to_owned());
        }
        if pos != buf.len() {
            return None; // trailing garbage
        }
        Some(Self {
            pages,
            uniques,
            dict_base,
            dict_tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        for (day, source) in [(0u32, 0u8), (0, 1), (1, 0), (3, 1)] {
            c.pages.insert(
                (day, source),
                PageMeta {
                    day,
                    source,
                    offset: 8 + u64::from(day) * 100 + u64::from(source) * 10,
                    len: 90,
                    rows: 7,
                    data_points: 35,
                    raw_bytes: 7 * 18 * 4,
                },
            );
        }
        c.uniques = vec![BTreeSet::from([1, 5, 9]), BTreeSet::from([2])];
        c.dict.intern("cloudflare.com");
        c
    }

    fn sample_deltas() -> Vec<CatalogDelta> {
        let c = sample();
        // Split the sample into two commits: days 0..=1, then day 3.
        let (first, second): (Vec<_>, Vec<_>) = c.pages.values().cloned().partition(|p| p.day <= 1);
        vec![
            CatalogDelta {
                pages: first,
                uniques: vec![BTreeSet::from([1, 5]), BTreeSet::from([2])],
                dict_base: 1,
                dict_tail: vec!["cloudflare.com".into()],
            },
            CatalogDelta {
                pages: second,
                uniques: vec![BTreeSet::from([9])],
                dict_base: 2,
                dict_tail: vec!["incapdns.net".into()],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for delta in sample_deltas() {
            let back = CatalogDelta::decode(&delta.encode()).expect("decodes");
            assert_eq!(back, delta);
        }
    }

    #[test]
    fn decode_rejects_overflowing_unique_deltas() {
        // Fuzzer-minimised: pages=0, n_sources=1, n=2, delta1=5,
        // delta2=u64::MAX — the running delta sum must not wrap.
        let mut hostile = vec![0x00, 0x01, 0x02, 0x05];
        hostile.extend([0xFF; 9]);
        hostile.push(0x01);
        assert_eq!(CatalogDelta::decode(&hostile), None);
    }

    #[test]
    fn applying_deltas_rebuilds_the_catalog() {
        let mut c = Catalog::new();
        for delta in &sample_deltas() {
            c.apply(delta).expect("applies");
        }
        let reference = sample();
        assert_eq!(c.pages, reference.pages);
        assert_eq!(c.uniques, reference.uniques);
        assert_eq!(c.dict.get("cloudflare.com"), Some(1));
        assert_eq!(c.dict.get("incapdns.net"), Some(2));
    }

    #[test]
    fn apply_rejects_duplicates_and_dict_mismatches() {
        let deltas = sample_deltas();
        // Duplicate page across commits.
        let mut c = Catalog::new();
        c.apply(&deltas[0]).unwrap();
        let mut dup = deltas[1].clone();
        dup.pages = deltas[0].pages.clone();
        assert!(c.apply(&dup).is_none());
        // Wrong dictionary base.
        let mut c = Catalog::new();
        let mut skewed = deltas[0].clone();
        skewed.dict_base = 7;
        assert!(c.apply(&skewed).is_none());
        // Tail string already interned.
        let mut c = Catalog::new();
        c.apply(&deltas[0]).unwrap();
        let mut re = deltas[1].clone();
        re.dict_tail = vec!["cloudflare.com".into()];
        assert!(c.apply(&re).is_none());
    }

    #[test]
    fn stats_are_exact_aggregates() {
        let c = sample();
        let stats = c.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].days, 2);
        assert_eq!(stats[0].first_day, Some(0));
        assert_eq!(stats[0].last_day, Some(1));
        assert_eq!(stats[0].data_points, 70);
        assert_eq!(stats[0].stored_bytes, 180);
        assert_eq!(stats[0].unique_keys.len(), 3);
        assert_eq!(stats[1].days, 2);
        assert_eq!(stats[1].last_day, Some(3));
    }

    #[test]
    fn corrupt_footer_rejected() {
        let bytes = sample_deltas()[0].encode();
        assert!(CatalogDelta::decode(&bytes[..bytes.len() - 3]).is_none());
        assert!(CatalogDelta::decode(&[0xFF; 6]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(CatalogDelta::decode(&trailing).is_none());
    }

    #[test]
    fn empty_delta_roundtrips() {
        let d = CatalogDelta {
            dict_base: 1,
            ..CatalogDelta::default()
        };
        let back = CatalogDelta::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        let mut c = Catalog::new();
        c.apply(&back).unwrap();
        assert!(c.pages.is_empty());
        assert_eq!(c.n_sources(), 0);
    }
}
