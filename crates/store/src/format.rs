//! On-disk layout of a `.dps` archive and footer location/recovery.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   8 B   magic "DPSARCH1"                              │
//! │ pages    …     per page: [encoded table chunk][CRC32 LE 4 B] │
//! │ footer   …     catalog delta (`catalog::CatalogDelta`)       │
//! │ trailer 28 B   [CRC32(footer) 4 B][footer len 8 B LE]        │
//! │                [prev trailer end 8 B LE][magic "DPSFOOT1"]   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The file is log-structured: every commit appends a footer + trailer at
//! the end, and subsequent pages are appended *after* that trailer. A
//! footer stores only the commit's **delta** — its new pages, new unique
//! key ids, and the dictionary tail — plus a back-pointer to the previous
//! trailer, so per-day checkpoints stay O(day) instead of re-embedding the
//! whole ever-growing catalog. The full catalog is rebuilt by walking the
//! trailer chain backwards and applying the deltas oldest-first.
//!
//! That is what makes checkpointing safe: a crash mid-append or mid-commit
//! can only tear bytes written after the last durable trailer, so
//! [`recover_footer`] always finds the chain again by scanning backwards
//! for the trailer magic and validating every footer checksum on the
//! chain. A cleanly committed file is opened by reading only its tail
//! chain — no page bytes are touched.

// Untrusted-input module: archive bytes may be torn or corrupt; recovery
// must degrade to errors, never panic (enforced by dps-analyzer's
// panic-safety family and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::catalog::{Catalog, CatalogDelta};
use crate::crc32::crc32;
use std::io::{self, Read, Seek, SeekFrom};

/// File magic at offset 0.
pub const HEADER_MAGIC: &[u8; 8] = b"DPSARCH1";
/// Magic terminating each trailer (the last 8 bytes of a committed file).
pub const FOOTER_MAGIC: &[u8; 8] = b"DPSFOOT1";
/// Trailer size: footer CRC32 (4) + footer length (8) + previous trailer
/// end (8) + magic (8).
pub const TRAILER_LEN: u64 = 28;
/// Bytes appended after each page chunk (its CRC32).
pub const PAGE_CRC_LEN: u64 = 4;

fn corrupt(what: &str) -> io::Error {
    io::Error::other(format!("dps-store: corrupt archive ({what})"))
}

/// A located, validated footer chain, merged into one catalog.
pub struct Footer {
    /// The catalog as of the chain's newest commit.
    pub catalog: Catalog,
    /// Byte offset where the newest footer starts (end of its pages).
    pub data_end: u64,
    /// Byte offset just past the newest trailer — where the next page
    /// appends, and the `prev` back-pointer for the next commit.
    pub trailer_end: u64,
    /// Commits (delta footers) walked to rebuild the catalog.
    pub chain_len: u64,
}

/// One validated commit on the trailer chain. [`recover_chain`] returns
/// these oldest-first so a resuming writer can keep a *prefix* of the
/// chain (everything a sharded manifest says is durable) and truncate the
/// rest — a finer-grained rollback than [`recover_footer`]'s
/// all-or-nothing tail recovery.
pub struct ChainCommit {
    /// The commit's catalog delta (its new pages, uniques, dict tail).
    pub delta: CatalogDelta,
    /// Byte offset where this commit's footer starts.
    pub data_end: u64,
    /// Byte offset just past this commit's trailer.
    pub trailer_end: u64,
}

/// One parsed 28-byte trailer.
struct Trailer {
    crc: u32,
    footer_len: u64,
    prev: u64,
}

fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

fn parse_trailer(bytes: &[u8; TRAILER_LEN as usize]) -> Option<Trailer> {
    if bytes.get(20..28)? != FOOTER_MAGIC {
        return None;
    }
    Some(Trailer {
        crc: le_u32(bytes, 0)?,
        footer_len: le_u64(bytes, 4)?,
        prev: le_u64(bytes, 12)?,
    })
}

fn read_trailer_at(file: &mut std::fs::File, trailer_start: u64) -> Option<Trailer> {
    let mut bytes = [0u8; TRAILER_LEN as usize];
    file.seek(SeekFrom::Start(trailer_start)).ok()?;
    file.read_exact(&mut bytes).ok()?;
    parse_trailer(&bytes)
}

/// Validates the header magic at offset 0.
pub fn check_header(file: &mut std::fs::File) -> io::Result<()> {
    let mut magic = [0u8; 8];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut magic)
        .map_err(|_| corrupt("missing header"))?;
    if &magic != HEADER_MAGIC {
        return Err(corrupt("bad header magic"));
    }
    Ok(())
}

/// Reads the footer chain assuming a cleanly committed file (newest
/// trailer at EOF).
pub fn read_footer(file: &mut std::fs::File) -> io::Result<Footer> {
    check_header(file)?;
    let file_len = file.seek(SeekFrom::End(0))?;
    if file_len < 8 + TRAILER_LEN {
        return Err(corrupt("file shorter than header + trailer"));
    }
    let trailer_start = file_len - TRAILER_LEN;
    let trailer = read_trailer_at(file, trailer_start)
        .ok_or_else(|| corrupt("bad trailer magic — archive not committed cleanly"))?;
    load_chain(file, trailer_start, &trailer)
        .ok_or_else(|| corrupt("footer chain checksum or catalog invalid"))
}

/// Walks the trailer chain backwards from the footer whose trailer starts
/// at `trailer_start`, validating CRCs, strict descent, page bounds, and
/// delta decode. Returns the commits oldest-first. `None` if anything on
/// the chain is off.
fn collect_chain(
    file: &mut std::fs::File,
    trailer_start: u64,
    newest: &Trailer,
) -> Option<Vec<ChainCommit>> {
    // Collect commits newest-first, then reverse.
    let mut commits: Vec<ChainCommit> = Vec::new();
    let mut cur_start = trailer_start;
    let mut cur = Trailer {
        crc: newest.crc,
        footer_len: newest.footer_len,
        prev: newest.prev,
    };
    loop {
        let data_end = cur_start.checked_sub(cur.footer_len)?;
        if data_end < 8 {
            return None;
        }
        let mut footer = vec![0u8; usize::try_from(cur.footer_len).ok()?];
        file.seek(SeekFrom::Start(data_end)).ok()?;
        file.read_exact(&mut footer).ok()?;
        if crc32(&footer) != cur.crc {
            return None;
        }
        let delta = CatalogDelta::decode(&footer)?;
        // Every page a commit references must lie before its own footer.
        for page in &delta.pages {
            if page.offset < 8 || page.offset + page.len + PAGE_CRC_LEN > data_end {
                return None;
            }
        }
        commits.push(ChainCommit {
            delta,
            data_end,
            trailer_end: cur_start + TRAILER_LEN,
        });
        if cur.prev == 0 {
            break;
        }
        // The previous trailer ends exactly at `prev`; the chain must
        // strictly descend, which also bounds the walk.
        if cur.prev > data_end || cur.prev < 8 + TRAILER_LEN {
            return None;
        }
        cur_start = cur.prev - TRAILER_LEN;
        cur = read_trailer_at(file, cur_start)?;
    }
    commits.reverse();
    Some(commits)
}

/// Applies `commits` (oldest-first) into one merged [`Footer`]. `None` on
/// an empty chain or if the deltas do not apply cleanly (duplicate pages,
/// dictionary-base mismatch, …).
pub fn chain_to_footer(commits: &[ChainCommit]) -> Option<Footer> {
    let newest = commits.last()?;
    let mut catalog = Catalog::new();
    for commit in commits {
        catalog.apply(&commit.delta)?;
    }
    Some(Footer {
        catalog,
        data_end: newest.data_end,
        trailer_end: newest.trailer_end,
        chain_len: commits.len() as u64,
    })
}

fn load_chain(file: &mut std::fs::File, trailer_start: u64, newest: &Trailer) -> Option<Footer> {
    let commits = collect_chain(file, trailer_start, newest)?;
    chain_to_footer(&commits)
}

/// Finds the last durable footer chain, tolerating a torn tail: first
/// tries the trailer at EOF, then scans backwards for the trailer magic,
/// validating each candidate's whole chain. Returns the most recent valid
/// one.
pub fn recover_footer(file: &mut std::fs::File) -> io::Result<Footer> {
    let commits = recover_chain(file)?;
    chain_to_footer(&commits).ok_or_else(|| corrupt("no valid footer found"))
}

/// Like [`recover_footer`] but exposes the individual commits, oldest
/// first, instead of the merged catalog. Returns `Ok(vec![])` for a file
/// with a valid header and no recoverable footer — a freshly created (or
/// fully torn-back) archive. The sharded store uses this to roll a shard
/// back to the longest prefix its manifest vouches for.
pub fn recover_chain(file: &mut std::fs::File) -> io::Result<Vec<ChainCommit>> {
    check_header(file)?;
    let file_len = file.seek(SeekFrom::End(0))?;
    // Fast path: a cleanly committed file has its newest trailer at EOF.
    if file_len >= 8 + TRAILER_LEN {
        let trailer_start = file_len - TRAILER_LEN;
        if let Some(trailer) = read_trailer_at(file, trailer_start) {
            if let Some(commits) = collect_chain(file, trailer_start, &trailer) {
                if chain_to_footer(&commits).is_some() {
                    return Ok(commits);
                }
            }
        }
    }
    // Backward chunked scan for FOOTER_MAGIC, with overlap so a magic
    // spanning a chunk boundary is still seen.
    const CHUNK: u64 = 1 << 16;
    let mut high = file_len;
    while high > 8 {
        let low = high.saturating_sub(CHUNK);
        let len = usize::try_from(high - low).map_err(|_| corrupt("chunk exceeds usize"))?;
        let mut buf = vec![0u8; len];
        file.seek(SeekFrom::Start(low))?;
        file.read_exact(&mut buf)?;
        // Candidate magic positions within this chunk, scanned right-to-left.
        for i in (0..buf.len().saturating_sub(7)).rev() {
            if buf.get(i..i + 8) != Some(FOOTER_MAGIC.as_slice()) {
                continue;
            }
            let magic_at = low + i as u64;
            let Some(trailer_start) = magic_at.checked_sub(TRAILER_LEN - 8) else {
                continue;
            };
            let Some(trailer) = read_trailer_at(file, trailer_start) else {
                continue;
            };
            if let Some(commits) = collect_chain(file, trailer_start, &trailer) {
                if chain_to_footer(&commits).is_some() {
                    return Ok(commits);
                }
            }
        }
        // Overlap by 7 bytes so boundary-spanning magics are covered.
        high = low + 7.min(low);
        if low == 0 {
            break;
        }
    }
    Ok(Vec::new())
}
