//! The streaming archive writer: append pages as days are measured,
//! commit a durable footer after each day, resume from the last durable
//! footer after a crash.

use crate::catalog::{Catalog, CatalogDelta, PageMeta};
use crate::crc32::crc32;
use crate::format::{self, FOOTER_MAGIC, HEADER_MAGIC, PAGE_CRC_LEN, TRAILER_LEN};
use dps_columnar::{StringDict, Table};
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// A single-file archive being written (or appended to after a resume).
///
/// Commit protocol (log-structured): pages append after the last durable
/// trailer; [`commit`](Self::commit) fsyncs the page region, appends a
/// footer holding only this commit's *delta* (new pages, new unique key
/// ids, dictionary tail) plus a back-pointer to the previous trailer,
/// and fsyncs again. Earlier footers stay embedded — they are the rest
/// of the chain, not dead bytes — so a crash at *any* point can only
/// tear bytes after the last durable trailer. [`resume`](Self::resume)
/// recovers that trailer, truncates the torn tail, and the sweep
/// re-measures from the next day. A resumed sweep therefore produces a
/// byte-identical file to an uninterrupted one.
pub struct ArchiveWriter {
    file: File,
    catalog: Catalog,
    /// Where the next byte (page or footer) is appended.
    data_end: u64,
    /// Column whose unique values are tracked per source (e.g. `"entry"`).
    unique_key_column: Option<String>,
    /// Pages appended since the last commit.
    pending_pages: Vec<PageMeta>,
    /// Unique key ids first observed since the last commit.
    pending_uniques: Vec<BTreeSet<u32>>,
    /// Dictionary length as of the last durable footer.
    committed_dict_len: u64,
    /// `trailer_end` of the last durable footer (0 = none yet, the
    /// first-footer sentinel in the chain's back-pointer).
    prev_trailer_end: u64,
    /// Whether any footer has been written to this file yet.
    committed_once: bool,
}

impl ArchiveWriter {
    /// Creates (truncating) a new archive at `path`. `unique_key_column`
    /// names the table column whose distinct values are accumulated into
    /// the per-source statistics, if any.
    pub fn create(path: &Path, unique_key_column: Option<&str>) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(HEADER_MAGIC)?;
        let catalog = Catalog::new();
        let committed_dict_len = catalog.dict.len() as u64;
        Ok(Self {
            file,
            catalog,
            data_end: 8,
            unique_key_column: unique_key_column.map(str::to_owned),
            pending_pages: Vec::new(),
            pending_uniques: Vec::new(),
            committed_dict_len,
            prev_trailer_end: 0,
            committed_once: false,
        })
    }

    /// Opens an existing archive for appending, recovering the last durable
    /// footer (tolerating a torn tail from a killed writer) and truncating
    /// everything after it. Fails if `path` is not a valid archive.
    pub fn resume(path: &Path, unique_key_column: Option<&str>) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let footer = format::recover_footer(&mut file)?;
        // Drop any torn bytes written after the last durable trailer.
        file.set_len(footer.trailer_end)?;
        let committed_dict_len = footer.catalog.dict.len() as u64;
        Ok(Self {
            file,
            catalog: footer.catalog,
            data_end: footer.trailer_end,
            unique_key_column: unique_key_column.map(str::to_owned),
            pending_pages: Vec::new(),
            pending_uniques: Vec::new(),
            committed_dict_len,
            prev_trailer_end: footer.trailer_end,
            committed_once: true,
        })
    }

    /// Builds a writer from an already-recovered state: `file` truncated
    /// to `trailer_end` (8 = fresh, nothing committed) and `catalog` the
    /// merged result of the surviving chain prefix. The sharded store uses
    /// this after rolling a shard back to the prefix its manifest covers.
    pub(crate) fn from_recovered(
        file: File,
        catalog: Catalog,
        trailer_end: u64,
        unique_key_column: Option<&str>,
    ) -> Self {
        let committed_once = trailer_end > 8;
        let committed_dict_len = catalog.dict.len() as u64;
        Self {
            file,
            catalog,
            data_end: trailer_end.max(8),
            unique_key_column: unique_key_column.map(str::to_owned),
            pending_pages: Vec::new(),
            pending_uniques: Vec::new(),
            committed_dict_len,
            prev_trailer_end: if committed_once { trailer_end } else { 0 },
            committed_once,
        }
    }

    /// Resumes if `path` exists, creates otherwise.
    pub fn resume_or_create(path: &Path, unique_key_column: Option<&str>) -> io::Result<Self> {
        if path.exists() {
            Self::resume(path, unique_key_column)
        } else {
            Self::create(path, unique_key_column)
        }
    }

    /// The catalog as of the pages appended so far.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The dictionary recovered from the last committed footer (empty for
    /// a fresh archive). A resuming sweep must continue interning into a
    /// clone of this so dictionary ids stay identical to an uninterrupted
    /// run.
    pub fn dict(&self) -> &StringDict {
        &self.catalog.dict
    }

    /// True if a page for `(day, source)` is already present.
    pub fn contains(&self, day: u32, source: u8) -> bool {
        self.catalog.pages.contains_key(&(day, source))
    }

    /// The last day with any committed or appended page.
    pub fn last_day(&self) -> Option<u32> {
        self.catalog.pages.keys().map(|&(d, _)| d).max()
    }

    /// Appends one encoded table as a page. Duplicate `(day, source)`
    /// pages are an error — the archive is append-only per cell.
    pub fn append_table(
        &mut self,
        day: u32,
        source: u8,
        table: &Table,
        data_points: u64,
    ) -> io::Result<()> {
        if self.contains(day, source) {
            return Err(io::Error::other(format!(
                "dps-store: page (day {day}, source {source}) already archived"
            )));
        }
        let bytes = table.to_bytes();
        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&bytes)?;
        self.file.write_all(&crc32(&bytes).to_le_bytes())?;
        let meta = PageMeta {
            day,
            source,
            offset: self.data_end,
            len: bytes.len() as u64,
            rows: table.rows() as u64,
            data_points,
            raw_bytes: table.raw_len() as u64,
        };
        self.data_end += meta.len + PAGE_CRC_LEN;
        self.catalog.pages.insert((day, source), meta.clone());
        self.pending_pages.push(meta);
        if let Some(col) = self
            .unique_key_column
            .as_deref()
            .and_then(|name| table.column_by_name(name))
        {
            let idx = source as usize;
            if self.catalog.uniques.len() <= idx {
                self.catalog.uniques.resize_with(idx + 1, Default::default);
            }
            if self.pending_uniques.len() <= idx {
                self.pending_uniques.resize_with(idx + 1, Default::default);
            }
            if let (Some(all), Some(pending)) = (
                self.catalog.uniques.get_mut(idx),
                self.pending_uniques.get_mut(idx),
            ) {
                for &id in col {
                    // Only ids *first seen* by this commit go into its delta.
                    if all.insert(id) {
                        pending.insert(id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Pages appended since the last commit.
    pub fn uncommitted_pages(&self) -> usize {
        self.pending_pages.len()
    }

    /// Commits everything appended so far: fsyncs the page region, appends
    /// a footer carrying this commit's catalog delta (including the tail
    /// of `dict` since the previous commit) and its trailer, and fsyncs
    /// again. After this returns, a crash loses nothing committed. A
    /// commit with no new pages and no new dictionary entries is a no-op
    /// (the durable footer chain already describes the file).
    pub fn commit(&mut self, dict: &StringDict) -> io::Result<()> {
        let dict_len = dict.len() as u64;
        if dict_len < self.committed_dict_len {
            return Err(io::Error::other(
                "dps-store: commit dictionary is shorter than the committed one",
            ));
        }
        if self.pending_pages.is_empty()
            && dict_len == self.committed_dict_len
            && self.committed_once
        {
            return Ok(());
        }
        let mut dict_tail = Vec::with_capacity((dict_len - self.committed_dict_len) as usize);
        for id in self.committed_dict_len..dict_len {
            let s = dict.resolve(id as u32).ok_or_else(|| {
                io::Error::other("dps-store: commit dictionary has a hole in its tail")
            })?;
            dict_tail.push(s.to_owned());
        }
        // Barrier 1: the pages a footer is about to reference must be
        // durable before that footer can become the recovery point.
        self.file.sync_data()?;
        let delta = CatalogDelta {
            pages: std::mem::take(&mut self.pending_pages),
            uniques: std::mem::take(&mut self.pending_uniques),
            dict_base: self.committed_dict_len,
            dict_tail,
        };
        let footer = delta.encode();
        let mut tail = Vec::with_capacity(footer.len() + TRAILER_LEN as usize);
        tail.extend_from_slice(&footer);
        tail.extend_from_slice(&crc32(&footer).to_le_bytes());
        tail.extend_from_slice(&(footer.len() as u64).to_le_bytes());
        tail.extend_from_slice(&self.prev_trailer_end.to_le_bytes());
        tail.extend_from_slice(FOOTER_MAGIC);
        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&tail)?;
        // Barrier 2: the footer itself. Later pages append after it.
        self.file.sync_data()?;
        self.data_end += tail.len() as u64;
        self.prev_trailer_end = self.data_end;
        self.catalog.dict = dict.clone();
        self.committed_dict_len = dict_len;
        self.committed_once = true;
        Ok(())
    }
}
