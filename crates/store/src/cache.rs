//! A sharded, capacity-bounded page cache: decoded tables keyed by
//! `(day, source, projection)`, evicted LRU by decoded size so repeated
//! analysis passes over the same archive hit memory instead of re-reading
//! and re-decoding pages.

use dps_columnar::Table;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
// dps: allow-file(unordered-collection, reason = "shard maps are keyed lookups only; eviction order comes from the BTreeMap LRU index, and cache state never reaches disk")
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: page identity plus the projection it was decoded under
/// (`None` = all columns). Different projections of the same page are
/// distinct entries — a projected decode materialises different columns.
pub type PageKey = (u32, u8, Option<Vec<String>>);

const SHARDS: usize = 8;

struct CachedPage {
    table: Arc<Table>,
    bytes: usize,
    seq: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<PageKey, CachedPage>,
    /// LRU index: access sequence number → key. Eviction pops the lowest.
    lru: BTreeMap<u64, PageKey>,
    bytes: usize,
}

/// The sharded LRU page cache.
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    seq: AtomicU64,
}

impl PageCache {
    /// A cache bounded at `capacity_bytes` of decoded table data
    /// (0 disables caching entirely).
    pub fn new(capacity_bytes: usize) -> Self {
        // Round the per-shard share *up*: a small nonzero capacity must
        // still cache (flooring made any capacity below SHARDS silently
        // behave like 0). The global bound only overshoots by < SHARDS
        // bytes, well under one page.
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity_bytes.div_ceil(SHARDS),
            seq: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PageKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        // dps: allow(taint-panic, reason = "index is hash % SHARDS and the shard array is built with exactly SHARDS entries; no key can push it out of bounds")
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a decoded page, refreshing its LRU position.
    pub fn get(&self, key: &PageKey) -> Option<Arc<Table>> {
        let mut shard = self.shard(key).lock();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let page = shard.map.get_mut(key)?;
        let old = std::mem::replace(&mut page.seq, seq);
        let table = Arc::clone(&page.table);
        shard.lru.remove(&old);
        shard.lru.insert(seq, key.clone());
        Some(table)
    }

    /// Inserts a decoded page of `bytes` decoded size, evicting the least
    /// recently used entries until the shard fits its capacity share.
    ///
    /// Pages larger than the per-shard share are not cached at all: such a
    /// page could never fit, and admitting it would pin the shard over
    /// budget while evicting everything else around it.
    pub fn insert(&self, key: PageKey, table: Arc<Table>, bytes: usize) {
        if self.per_shard_capacity == 0 || bytes > self.per_shard_capacity {
            return;
        }
        let mut shard = self.shard(&key).lock();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(old) = shard
            .map
            .insert(key.clone(), CachedPage { table, bytes, seq })
        {
            shard.lru.remove(&old.seq);
            shard.bytes -= old.bytes;
        }
        shard.lru.insert(seq, key);
        shard.bytes += bytes;
        while shard.bytes > self.per_shard_capacity {
            let Some((&oldest, _)) = shard.lru.iter().next() else {
                break;
            };
            let Some(key) = shard.lru.remove(&oldest) else {
                break;
            };
            if let Some(evicted) = shard.map.remove(&key) {
                shard.bytes -= evicted.bytes;
            }
        }
    }

    /// Drops every cached page (used by cold-scan benchmarks).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.lru.clear();
            shard.bytes = 0;
        }
    }

    /// Cached pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decoded bytes currently held.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_columnar::{Schema, TableBuilder};

    fn table(rows: u32) -> (Arc<Table>, usize) {
        let mut b = TableBuilder::new(Schema::new(&["a", "b"]));
        for i in 0..rows {
            b.push_row(&[i, i * 2]);
        }
        let t = b.finish();
        let bytes = t.raw_len();
        (Arc::new(t), bytes)
    }

    fn key(day: u32) -> PageKey {
        (day, 0, None)
    }

    #[test]
    fn hit_after_insert_miss_after_eviction() {
        let cache = PageCache::new(SHARDS * 100); // 100 bytes per shard
        let (t, bytes) = table(10); // 80 bytes decoded
        cache.insert(key(1), Arc::clone(&t), bytes);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        // A second table in the same shard (if hashed there) may evict the
        // first; globally the byte bound holds.
        for day in 2..50 {
            let (t, bytes) = table(10);
            cache.insert(key(day), t, bytes);
        }
        assert!(cache.bytes() <= SHARDS * 100, "bytes={}", cache.bytes());
    }

    #[test]
    fn small_nonzero_capacity_still_caches() {
        // Below SHARDS bytes: integer flooring used to zero the per-shard
        // share and silently disable the cache the caller asked for.
        let cache = PageCache::new(SHARDS - 1);
        let (t, _) = table(1);
        cache.insert(key(1), t, 1);
        assert!(
            cache.get(&key(1)).is_some(),
            "a 1-byte page must fit a {}-byte cache",
            SHARDS - 1
        );
    }

    #[test]
    fn oversized_page_bypasses_the_cache() {
        let capacity = SHARDS * 100;
        let cache = PageCache::new(capacity);
        let (small, small_bytes) = table(10);
        cache.insert(key(1), small, small_bytes);
        // One page larger than any shard's share: must not be admitted, and
        // must not disturb the byte bound or evict well-behaved entries
        // forever.
        let (big, _) = table(10);
        cache.insert(key(2), big, capacity + 1);
        assert!(cache.get(&key(2)).is_none(), "oversized page was cached");
        assert!(
            cache.bytes() <= capacity,
            "bytes={} exceeds capacity={capacity}",
            cache.bytes()
        );
        assert!(cache.get(&key(1)).is_some(), "resident page was evicted");
    }

    #[test]
    fn lru_prefers_recently_used() {
        let cache = PageCache::new(SHARDS * 200);
        // Fill one logical shard by reusing a single key's shard: insert
        // two entries, touch the first, then overflow — the untouched one
        // should go first whenever both share a shard.
        let (t, b) = table(10);
        cache.insert(key(1), Arc::clone(&t), b);
        cache.insert(key(2), Arc::clone(&t), b);
        cache.get(&key(1));
        let before = cache.len();
        assert!(before >= 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PageCache::new(0);
        let (t, b) = table(5);
        cache.insert(key(1), t, b);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn projection_is_part_of_the_key() {
        let cache = PageCache::new(1 << 20);
        let (t, b) = table(5);
        let full = (3u32, 0u8, None);
        let proj = (3u32, 0u8, Some(vec!["a".to_string()]));
        cache.insert(full.clone(), Arc::clone(&t), b);
        assert!(cache.get(&full).is_some());
        assert!(cache.get(&proj).is_none());
    }
}
