//! Sharded multi-file archives: `archive.manifest` + N shard files.
//!
//! ```text
//! dir/archive.manifest      standard archive; real StringDict + per-day
//!                           coverage pages + an n_shards meta page
//! dir/archive.shard000.dps  standard archive; row range [0/N, 1/N) of
//! dir/archive.shard001.dps  every logical page, … empty dictionaries
//! ```
//!
//! Every logical page `(day, source)` is row-split across **all** shards
//! with the cluster-lease arithmetic (`start = rows·k/N`), so each shard's
//! catalog has exactly the logical key set and per-shard scan threads get
//! near-equal work without any placement directory. Shard files are
//! ordinary archives — the existing footer/CRC/torn-tail machinery guards
//! each one — whose dictionaries stay empty; the shared dictionary lives
//! in the manifest only, so it is stored once instead of N times.
//!
//! **Commit protocol**: every shard commits first, the manifest commits
//! last. The manifest's coverage pages therefore always describe a subset
//! of what the shards hold durably, and resume is a *rollback*: each
//! shard's footer chain is recovered commit-by-commit
//! ([`format::recover_chain`]) and truncated to the longest prefix whose
//! days the manifest vouches for. A crash at any point between the first
//! shard commit and the manifest commit rolls back to the previous day —
//! exactly the same re-measure-one-day cost as the single-file archive.
//!
//! [`StoreWriter`] / [`StoreReader`] wrap single-file and sharded layouts
//! behind one interface; [`StoreReader::open_auto`] picks the layout by
//! probing for the manifest. With one shard the writer degrades to the
//! plain single-file `archive.dps`, byte-identical to the historical
//! layout.

// Untrusted-input module: manifests and shard files may be torn or
// corrupt; recovery must degrade to errors, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::archive::{Archive, VerifyReport, DEFAULT_CACHE_BYTES};
use crate::catalog::{Catalog, PageMeta, SourceStats};
use crate::format;
use crate::writer::ArchiveWriter;
use dps_columnar::{Schema, StringDict, Table, TableBuilder};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Source id of the manifest's single metadata page (day 0): one row,
/// column `n_shards`. Far above real source ids (data 0..=4, quality 5,
/// telemetry 6, analysis 7).
pub const MANIFEST_META_SOURCE: u8 = 255;
/// Source id of the manifest's per-day coverage pages: one row per
/// logical page committed that day, recording its exact totals for
/// cross-checking shard sums in `verify`.
pub const MANIFEST_COVERAGE_SOURCE: u8 = 254;

const META_DAY: u32 = 0;

fn corrupt(what: &str) -> io::Error {
    io::Error::other(format!("dps-store: corrupt sharded archive ({what})"))
}

/// The manifest path for archive base path `base` (`…/archive.dps` →
/// `…/archive.manifest`).
pub fn manifest_path(base: &Path) -> PathBuf {
    base.with_extension("manifest")
}

/// The shard-`k` path for archive base path `base` (`…/archive.dps` →
/// `…/archive.shard000.dps`).
pub fn shard_path(base: &Path, shard: u32) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "archive".to_owned());
    base.with_file_name(format!("{stem}.shard{shard:03}.dps"))
}

/// The row range of shard `k` of `n` for a page with `rows` rows — the
/// same arithmetic the cluster uses for work leases, so ranges tile the
/// table exactly and differ in size by at most one row.
pub fn shard_range(rows: usize, shard: u32, n_shards: u32) -> (usize, usize) {
    let n = u64::from(n_shards.max(1));
    let lo = (rows as u64).saturating_mul(u64::from(shard)) / n;
    let hi = (rows as u64).saturating_mul(u64::from(shard) + 1) / n;
    (
        usize::try_from(lo).unwrap_or(rows),
        usize::try_from(hi).unwrap_or(rows),
    )
}

fn meta_table(n_shards: u32) -> Table {
    let mut b = TableBuilder::new(Schema::new(&["n_shards"]));
    b.push_row(&[n_shards]);
    b.finish()
}

/// Exact totals of one logical page, recorded in the manifest's coverage
/// page for the day it was committed.
struct CoverageRow {
    source: u8,
    rows: u64,
    data_points: u64,
    raw_bytes: u64,
}

fn coverage_table(rows: &[CoverageRow]) -> Table {
    let mut b = TableBuilder::new(Schema::new(&[
        "source", "rows_lo", "rows_hi", "dp_lo", "dp_hi", "raw_lo", "raw_hi",
    ]));
    for r in rows {
        b.push_row(&[
            u32::from(r.source),
            (r.rows & 0xFFFF_FFFF) as u32,
            (r.rows >> 32) as u32,
            (r.data_points & 0xFFFF_FFFF) as u32,
            (r.data_points >> 32) as u32,
            (r.raw_bytes & 0xFFFF_FFFF) as u32,
            (r.raw_bytes >> 32) as u32,
        ]);
    }
    b.finish()
}

fn u64_of(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

/// A sharded archive being written. See the module docs for the layout
/// and the shards-then-manifest commit protocol.
pub struct ShardedWriter {
    manifest: ArchiveWriter,
    shards: Vec<ArchiveWriter>,
    /// Shard files never intern anything; their footers always commit
    /// this empty dictionary.
    shard_dict: StringDict,
    /// Coverage rows for days appended since the last commit.
    pending_coverage: BTreeMap<u32, Vec<CoverageRow>>,
}

impl ShardedWriter {
    /// Creates (truncating) a sharded archive with base path `base` and
    /// `n_shards` shard files.
    pub fn create_sharded(
        base: &Path,
        n_shards: u32,
        unique_key_column: Option<&str>,
    ) -> io::Result<Self> {
        if n_shards == 0 {
            return Err(io::Error::other("dps-store: n_shards must be at least 1"));
        }
        let mut manifest = ArchiveWriter::create(&manifest_path(base), None)?;
        manifest.append_table(META_DAY, MANIFEST_META_SOURCE, &meta_table(n_shards), 0)?;
        manifest.commit(&StringDict::new())?;
        let mut shards = Vec::with_capacity(n_shards as usize);
        for k in 0..n_shards {
            shards.push(ArchiveWriter::create(
                &shard_path(base, k),
                unique_key_column,
            )?);
        }
        Ok(Self {
            manifest,
            shards,
            shard_dict: StringDict::new(),
            pending_coverage: BTreeMap::new(),
        })
    }

    /// Resumes a sharded archive: recovers the manifest (the anchor of
    /// truth), then rolls every shard back to the longest chain prefix
    /// whose days the manifest covers. Fails if a shard is missing a day
    /// the manifest vouches for — that is data loss, not a torn tail.
    pub fn resume(base: &Path, unique_key_column: Option<&str>) -> io::Result<Self> {
        let mpath = manifest_path(base);
        let manifest = ArchiveWriter::resume(&mpath, None)?;
        // The writer does not read pages; reopen read-only for the meta
        // page now that the torn tail (if any) has been truncated.
        let n_shards = {
            let reader = Archive::open_with_cache(&mpath, 0)?;
            let meta = reader
                .table(META_DAY, MANIFEST_META_SOURCE)?
                .ok_or_else(|| corrupt("manifest has no meta page"))?;
            meta.column_by_name("n_shards")
                .and_then(|c| c.first().copied())
                .ok_or_else(|| corrupt("manifest meta page has no n_shards"))?
        };
        if n_shards == 0 {
            return Err(corrupt("manifest says 0 shards"));
        }
        let covered: BTreeSet<u32> = manifest
            .catalog()
            .pages
            .keys()
            .filter(|&&(_, s)| s == MANIFEST_COVERAGE_SOURCE)
            .map(|&(d, _)| d)
            .collect();
        let mut shards = Vec::with_capacity(n_shards as usize);
        for k in 0..n_shards {
            let path = shard_path(base, k);
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            let commits = format::recover_chain(&mut file)?;
            // Longest prefix of commits whose pages are all covered by
            // the manifest; anything after it was committed to this shard
            // but never reached the manifest — roll it back.
            let prefix_len = commits
                .iter()
                .position(|c| c.delta.pages.iter().any(|p| !covered.contains(&p.day)))
                .unwrap_or(commits.len());
            let prefix = commits.get(..prefix_len).unwrap_or(&commits);
            let mut catalog = Catalog::new();
            for commit in prefix {
                catalog
                    .apply(&commit.delta)
                    .ok_or_else(|| corrupt("shard chain prefix does not apply cleanly"))?;
            }
            let shard_days: BTreeSet<u32> = catalog.pages.keys().map(|&(d, _)| d).collect();
            if shard_days != covered {
                return Err(corrupt(&format!(
                    "shard {k} is missing days the manifest covers"
                )));
            }
            let trailer_end = prefix.last().map_or(8, |c| c.trailer_end);
            file.set_len(trailer_end)?;
            shards.push(ArchiveWriter::from_recovered(
                file,
                catalog,
                trailer_end,
                unique_key_column,
            ));
        }
        Ok(Self {
            manifest,
            shards,
            shard_dict: StringDict::new(),
            pending_coverage: BTreeMap::new(),
        })
    }

    /// Number of shard files.
    pub fn n_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The dictionary recovered from the manifest's last committed footer.
    pub fn dict(&self) -> &StringDict {
        self.manifest.dict()
    }

    /// True if a page for `(day, source)` is already present. Every shard
    /// holds a sub-page of every logical page, so shard 0 answers for all.
    pub fn contains(&self, day: u32, source: u8) -> bool {
        self.shards.first().is_some_and(|s| s.contains(day, source))
    }

    /// The last day with any committed or appended page.
    pub fn last_day(&self) -> Option<u32> {
        self.shards.first().and_then(ArchiveWriter::last_day)
    }

    /// Logical pages appended since the last commit.
    pub fn uncommitted_pages(&self) -> usize {
        self.shards
            .first()
            .map_or(0, ArchiveWriter::uncommitted_pages)
    }

    /// The logical page directory (shard 0's catalog — its key set is the
    /// logical key set by construction).
    pub fn page_keys(&self) -> Vec<(u32, u8)> {
        self.shards
            .first()
            .map(|s| s.catalog().pages.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Appends one logical table, row-split across all shards. The full
    /// `data_points` total is attributed to shard 0's sub-page so that
    /// summing shard page metadata reproduces exact logical totals.
    pub fn append_table(
        &mut self,
        day: u32,
        source: u8,
        table: &Table,
        data_points: u64,
    ) -> io::Result<()> {
        let rows = table.rows();
        let n = self.n_shards();
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let (lo, hi) = shard_range(rows, k as u32, n);
            let sub = table.slice_rows(lo, hi);
            shard.append_table(day, source, &sub, if k == 0 { data_points } else { 0 })?;
        }
        self.pending_coverage
            .entry(day)
            .or_default()
            .push(CoverageRow {
                source,
                rows: rows as u64,
                data_points,
                raw_bytes: table.raw_len() as u64,
            });
        Ok(())
    }

    /// Commits everything appended so far: every shard first (with its
    /// permanently empty dictionary), then the manifest with this commit's
    /// coverage pages and the real `dict`. A crash between the two leaves
    /// shard commits the next [`resume`](Self::resume) rolls back.
    pub fn commit(&mut self, dict: &StringDict) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.commit(&self.shard_dict)?;
        }
        for (day, rows) in std::mem::take(&mut self.pending_coverage) {
            self.manifest
                .append_table(day, MANIFEST_COVERAGE_SOURCE, &coverage_table(&rows), 0)?;
        }
        self.manifest.commit(dict)
    }
}

/// A read-only handle on a committed sharded archive: opens the manifest
/// plus every shard and synthesizes a merged logical [`Catalog`] (page
/// metadata summed across shards, uniques unioned, the manifest's
/// dictionary). Page offsets in the synthesized catalog are zero — reads
/// go through the per-shard archives, never through these metas.
pub struct ShardedArchive {
    manifest: Archive,
    shards: Vec<Archive>,
    catalog: Catalog,
    stats: Vec<SourceStats>,
}

impl ShardedArchive {
    /// Opens the sharded archive with base path `base` and default cache.
    pub fn open(base: &Path) -> io::Result<Self> {
        Self::open_with_cache(base, DEFAULT_CACHE_BYTES)
    }

    /// Opens with `cache_bytes` of decoded-page cache split evenly across
    /// the shards (0 disables caching).
    pub fn open_with_cache(base: &Path, cache_bytes: usize) -> io::Result<Self> {
        let manifest = Archive::open_with_cache(&manifest_path(base), 0)?;
        let meta = manifest
            .table(META_DAY, MANIFEST_META_SOURCE)?
            .ok_or_else(|| corrupt("manifest has no meta page"))?;
        let n_shards = meta
            .column_by_name("n_shards")
            .and_then(|c| c.first().copied())
            .ok_or_else(|| corrupt("manifest meta page has no n_shards"))?;
        if n_shards == 0 {
            return Err(corrupt("manifest says 0 shards"));
        }
        let per_shard_cache = cache_bytes / n_shards as usize;
        let mut shards = Vec::with_capacity(n_shards as usize);
        for k in 0..n_shards {
            shards.push(Archive::open_with_cache(
                &shard_path(base, k),
                per_shard_cache,
            )?);
        }
        let catalog = Self::merge_catalogs(&manifest, &shards)?;
        let stats = catalog.stats();
        Ok(Self {
            manifest,
            shards,
            catalog,
            stats,
        })
    }

    fn merge_catalogs(manifest: &Archive, shards: &[Archive]) -> io::Result<Catalog> {
        let mut catalog = Catalog::new();
        catalog.dict = manifest.dict().clone();
        let Some(first) = shards.first() else {
            return Err(corrupt("no shards"));
        };
        for (&key, meta0) in &first.catalog().pages {
            let mut merged = PageMeta {
                day: meta0.day,
                source: meta0.source,
                offset: 0,
                len: 0,
                rows: 0,
                data_points: 0,
                raw_bytes: 0,
            };
            for shard in shards {
                let meta = shard.catalog().pages.get(&key).ok_or_else(|| {
                    corrupt(&format!(
                        "page (day {}, source {}) missing from a shard",
                        key.0, key.1
                    ))
                })?;
                merged.len += meta.len;
                merged.rows += meta.rows;
                merged.data_points += meta.data_points;
                merged.raw_bytes += meta.raw_bytes;
            }
            catalog.pages.insert(key, merged);
        }
        for shard in shards {
            if shard.catalog().pages.len() != first.catalog().pages.len() {
                return Err(corrupt("shard catalogs disagree on the page set"));
            }
            for (i, set) in shard.catalog().uniques.iter().enumerate() {
                if catalog.uniques.len() <= i {
                    catalog.uniques.resize_with(i + 1, Default::default);
                }
                if let Some(mine) = catalog.uniques.get_mut(i) {
                    mine.extend(set.iter().copied());
                }
            }
        }
        Ok(catalog)
    }

    /// Number of shard files.
    pub fn n_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The synthesized logical catalog (summed metas, unioned uniques,
    /// the manifest's dictionary; offsets are zero).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared string dictionary (stored once, in the manifest).
    pub fn dict(&self) -> &StringDict {
        &self.catalog.dict
    }

    /// Source slots present (highest source id + 1).
    pub fn n_sources(&self) -> usize {
        self.catalog.n_sources()
    }

    /// Exact statistics for `source`, if it has any pages.
    pub fn stats(&self, source: u8) -> Option<&SourceStats> {
        self.stats.get(source as usize)
    }

    /// Days archived for `source`, ascending.
    pub fn days(&self, source: u8) -> Vec<u32> {
        self.catalog.days(source)
    }

    /// Sum of encoded page bytes across all shard files.
    pub fn total_stored_bytes(&self) -> u64 {
        self.catalog.total_stored_bytes()
    }

    /// The full logical table for `(day, source)`: every shard's sub-page
    /// stacked in shard order, which is original row order.
    pub fn table(&self, day: u32, source: u8) -> io::Result<Option<Arc<Table>>> {
        self.assemble(day, source, |shard| shard.table(day, source))
    }

    /// Like [`table`](Self::table) but decodes only the named columns.
    pub fn project(&self, day: u32, source: u8, cols: &[&str]) -> io::Result<Option<Arc<Table>>> {
        self.assemble(day, source, |shard| shard.project(day, source, cols))
    }

    /// One shard's sub-table of a logical page — the unit of parallel
    /// scan work.
    pub fn shard_table(&self, shard: u32, day: u32, source: u8) -> io::Result<Option<Arc<Table>>> {
        match self.shards.get(shard as usize) {
            Some(archive) => archive.table(day, source),
            None => Ok(None),
        }
    }

    fn assemble(
        &self,
        day: u32,
        source: u8,
        load: impl Fn(&Archive) -> io::Result<Option<Arc<Table>>>,
    ) -> io::Result<Option<Arc<Table>>> {
        if !self.catalog.pages.contains_key(&(day, source)) {
            return Ok(None);
        }
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            parts.push(load(shard)?.ok_or_else(|| {
                corrupt(&format!(
                    "page (day {day}, source {source}) missing from a shard"
                ))
            })?);
        }
        let refs: Vec<&Table> = parts.iter().map(Arc::as_ref).collect();
        let merged = Table::vstack(&refs)
            .ok_or_else(|| corrupt("shard sub-pages have mismatched schemas"))?;
        Ok(Some(Arc::new(merged)))
    }

    /// Verifies every page checksum in the manifest and all shards, then
    /// cross-checks each coverage row against the summed shard metadata.
    /// Each coverage row counts as one checked page in the report.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = self.manifest.verify()?;
        for shard in &self.shards {
            let r = shard.verify()?;
            report.pages += r.pages;
            report.ok += r.ok;
            report.corrupt.extend(r.corrupt);
        }
        for day in self.manifest.days(MANIFEST_COVERAGE_SOURCE) {
            let Some(cov) = self.manifest.table(day, MANIFEST_COVERAGE_SOURCE)? else {
                continue;
            };
            let (src, r_lo, r_hi, d_lo, d_hi, w_lo, w_hi) = (
                cov.column_by_name("source"),
                cov.column_by_name("rows_lo"),
                cov.column_by_name("rows_hi"),
                cov.column_by_name("dp_lo"),
                cov.column_by_name("dp_hi"),
                cov.column_by_name("raw_lo"),
                cov.column_by_name("raw_hi"),
            );
            let (Some(src), Some(r_lo), Some(r_hi), Some(d_lo), Some(d_hi), Some(w_lo), Some(w_hi)) =
                (src, r_lo, r_hi, d_lo, d_hi, w_lo, w_hi)
            else {
                report.pages += 1;
                report.corrupt.push((day, MANIFEST_COVERAGE_SOURCE));
                continue;
            };
            for i in 0..cov.rows() {
                report.pages += 1;
                let source = src.get(i).map_or(u8::MAX, |&s| s.min(255) as u8);
                let want_rows = u64_of(
                    r_lo.get(i).copied().unwrap_or(0),
                    r_hi.get(i).copied().unwrap_or(0),
                );
                let want_dp = u64_of(
                    d_lo.get(i).copied().unwrap_or(0),
                    d_hi.get(i).copied().unwrap_or(0),
                );
                let want_raw = u64_of(
                    w_lo.get(i).copied().unwrap_or(0),
                    w_hi.get(i).copied().unwrap_or(0),
                );
                let meta = self.catalog.pages.get(&(day, source));
                let matches = meta.is_some_and(|m| {
                    m.rows == want_rows && m.data_points == want_dp && m.raw_bytes == want_raw
                });
                if matches {
                    report.ok += 1;
                } else {
                    report.corrupt.push((day, source));
                }
            }
        }
        Ok(report)
    }
}

/// A writer over either archive layout, so the measurement pipeline and
/// the cluster manager are layout-agnostic.
pub enum StoreWriter {
    /// The historical single-file `archive.dps`.
    Single(ArchiveWriter),
    /// Manifest + N shard files.
    Sharded(ShardedWriter),
}

impl StoreWriter {
    /// Creates (truncating) an archive at base path `path`: single-file
    /// when `shards <= 1`, sharded otherwise.
    pub fn create_store(
        path: &Path,
        shards: u32,
        unique_key_column: Option<&str>,
    ) -> io::Result<Self> {
        if shards <= 1 {
            Ok(Self::Single(ArchiveWriter::create(
                path,
                unique_key_column,
            )?))
        } else {
            Ok(Self::Sharded(ShardedWriter::create_sharded(
                path,
                shards,
                unique_key_column,
            )?))
        }
    }

    /// Resumes whichever layout exists at `path` (a manifest beats the
    /// requested shard count — an existing sharded archive is resumed as
    /// such even when the caller asks for 1), creating a fresh archive
    /// with `shards` shard files when nothing exists. Refuses a shard
    /// count that contradicts an existing archive.
    pub fn resume_or_create(
        path: &Path,
        shards: u32,
        unique_key_column: Option<&str>,
    ) -> io::Result<Self> {
        if manifest_path(path).exists() {
            let writer = ShardedWriter::resume(path, unique_key_column)?;
            if shards > 1 && writer.n_shards() != shards {
                return Err(io::Error::other(format!(
                    "dps-store: archive has {} shards but {} were requested",
                    writer.n_shards(),
                    shards
                )));
            }
            return Ok(Self::Sharded(writer));
        }
        if path.exists() {
            if shards > 1 {
                return Err(io::Error::other(
                    "dps-store: cannot resume a single-file archive with --shards > 1",
                ));
            }
            return Ok(Self::Single(ArchiveWriter::resume(
                path,
                unique_key_column,
            )?));
        }
        Self::create_store(path, shards, unique_key_column)
    }

    /// Number of shard files (1 for the single-file layout).
    pub fn n_shards(&self) -> u32 {
        match self {
            Self::Single(_) => 1,
            Self::Sharded(w) => w.n_shards(),
        }
    }

    /// The dictionary recovered from the last committed footer.
    pub fn dict(&self) -> &StringDict {
        match self {
            Self::Single(w) => w.dict(),
            Self::Sharded(w) => w.dict(),
        }
    }

    /// True if a page for `(day, source)` is already present.
    pub fn contains(&self, day: u32, source: u8) -> bool {
        match self {
            Self::Single(w) => w.contains(day, source),
            Self::Sharded(w) => w.contains(day, source),
        }
    }

    /// The last day with any committed or appended page.
    pub fn last_day(&self) -> Option<u32> {
        match self {
            Self::Single(w) => w.last_day(),
            Self::Sharded(w) => w.last_day(),
        }
    }

    /// True if no page has been committed or appended yet.
    pub fn is_empty(&self) -> bool {
        match self {
            Self::Single(w) => w.catalog().pages.is_empty(),
            Self::Sharded(w) => w.page_keys().is_empty(),
        }
    }

    /// Logical pages appended since the last commit.
    pub fn uncommitted_pages(&self) -> usize {
        match self {
            Self::Single(w) => w.uncommitted_pages(),
            Self::Sharded(w) => w.uncommitted_pages(),
        }
    }

    /// Appends one logical table (row-split across shards when sharded).
    pub fn append_table(
        &mut self,
        day: u32,
        source: u8,
        table: &Table,
        data_points: u64,
    ) -> io::Result<()> {
        match self {
            Self::Single(w) => w.append_table(day, source, table, data_points),
            Self::Sharded(w) => w.append_table(day, source, table, data_points),
        }
    }

    /// Commits everything appended so far (shards first, then the
    /// manifest, when sharded).
    pub fn commit(&mut self, dict: &StringDict) -> io::Result<()> {
        match self {
            Self::Single(w) => w.commit(dict),
            Self::Sharded(w) => w.commit(dict),
        }
    }
}

/// A read-only handle over either archive layout.
pub enum StoreReader {
    /// The historical single-file `archive.dps`.
    Single(Archive),
    /// Manifest + N shard files.
    Sharded(ShardedArchive),
}

impl StoreReader {
    /// Opens whichever layout exists at base path `path` with the default
    /// cache: sharded if a manifest sits next to it, single-file
    /// otherwise.
    pub fn open_auto(path: &Path) -> io::Result<Self> {
        Self::open_auto_with_cache(path, DEFAULT_CACHE_BYTES)
    }

    /// Like [`open_auto`](Self::open_auto) with an explicit cache budget
    /// (0 disables caching).
    pub fn open_auto_with_cache(path: &Path, cache_bytes: usize) -> io::Result<Self> {
        if manifest_path(path).exists() {
            Ok(Self::Sharded(ShardedArchive::open_with_cache(
                path,
                cache_bytes,
            )?))
        } else {
            Ok(Self::Single(Archive::open_with_cache(path, cache_bytes)?))
        }
    }

    /// True for the manifest + shard-files layout.
    pub fn is_sharded(&self) -> bool {
        matches!(self, Self::Sharded(_))
    }

    /// Number of shard files (1 for the single-file layout).
    pub fn n_shards(&self) -> u32 {
        match self {
            Self::Single(_) => 1,
            Self::Sharded(a) => a.n_shards(),
        }
    }

    /// The logical catalog (synthesized for the sharded layout).
    pub fn catalog(&self) -> &Catalog {
        match self {
            Self::Single(a) => a.catalog(),
            Self::Sharded(a) => a.catalog(),
        }
    }

    /// The shared string dictionary.
    pub fn dict(&self) -> &StringDict {
        match self {
            Self::Single(a) => a.dict(),
            Self::Sharded(a) => a.dict(),
        }
    }

    /// Source slots present (highest source id + 1).
    pub fn n_sources(&self) -> usize {
        match self {
            Self::Single(a) => a.n_sources(),
            Self::Sharded(a) => a.n_sources(),
        }
    }

    /// Exact statistics for `source`, if it has any pages.
    pub fn stats(&self, source: u8) -> Option<&SourceStats> {
        match self {
            Self::Single(a) => a.stats(source),
            Self::Sharded(a) => a.stats(source),
        }
    }

    /// Days archived for `source`, ascending.
    pub fn days(&self, source: u8) -> Vec<u32> {
        match self {
            Self::Single(a) => a.days(source),
            Self::Sharded(a) => a.days(source),
        }
    }

    /// Sum of encoded page bytes.
    pub fn total_stored_bytes(&self) -> u64 {
        match self {
            Self::Single(a) => a.total_stored_bytes(),
            Self::Sharded(a) => a.total_stored_bytes(),
        }
    }

    /// The full logical table for `(day, source)`, if archived.
    pub fn table(&self, day: u32, source: u8) -> io::Result<Option<Arc<Table>>> {
        match self {
            Self::Single(a) => a.table(day, source),
            Self::Sharded(a) => a.table(day, source),
        }
    }

    /// Like [`table`](Self::table) but decodes only the named columns.
    pub fn project(&self, day: u32, source: u8, cols: &[&str]) -> io::Result<Option<Arc<Table>>> {
        match self {
            Self::Single(a) => a.project(day, source, cols),
            Self::Sharded(a) => a.project(day, source, cols),
        }
    }

    /// One shard's sub-table of a logical page — the unit of parallel
    /// scan work. Shard 0 of a single-file archive is the whole page.
    pub fn shard_table(&self, shard: u32, day: u32, source: u8) -> io::Result<Option<Arc<Table>>> {
        match self {
            Self::Single(a) => {
                if shard == 0 {
                    a.table(day, source)
                } else {
                    Ok(None)
                }
            }
            Self::Sharded(a) => a.shard_table(shard, day, source),
        }
    }

    /// Verifies every page checksum (plus coverage cross-checks when
    /// sharded).
    pub fn verify(&self) -> io::Result<VerifyReport> {
        match self {
            Self::Single(a) => a.verify(),
            Self::Sharded(a) => a.verify(),
        }
    }
}
