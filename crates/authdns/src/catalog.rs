//! The global zone catalog: which zones exist and which server addresses
//! are authoritative for each.
//!
//! The catalog is the simulator's equivalent of "the state of the DNS" on a
//! given day. Authoritative servers serve zones *through* it (sharing the
//! same `Arc<RwLock<Zone>>` handles), the ecosystem mutates zones in place,
//! and the bulk resolver walks it directly.

use crate::zone::Zone;
use dps_dns::Name;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Shared handle to a mutable zone.
pub type ZoneHandle = Arc<RwLock<Zone>>;

/// Global zone directory.
#[derive(Default)]
pub struct Catalog {
    zones: RwLock<HashMap<Name, ZoneHandle>>,
    servers: RwLock<HashMap<Name, Vec<IpAddr>>>,
    root_hints: RwLock<Vec<IpAddr>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `zone`, served at `servers`. Returns the shared handle.
    /// Re-registering an origin replaces both zone and server list.
    pub fn add_zone(&self, zone: Zone, servers: Vec<IpAddr>) -> ZoneHandle {
        let origin = zone.origin().clone();
        let handle = Arc::new(RwLock::new(zone));
        self.zones
            .write()
            .insert(origin.clone(), Arc::clone(&handle));
        self.servers.write().insert(origin, servers);
        handle
    }

    /// Removes a zone (e.g. a delegated domain whose registration lapsed).
    pub fn remove_zone(&self, origin: &Name) {
        self.zones.write().remove(origin);
        self.servers.write().remove(origin);
    }

    /// Handle to the zone with exactly this origin.
    pub fn zone(&self, origin: &Name) -> Option<ZoneHandle> {
        self.zones.read().get(origin).cloned()
    }

    /// The deepest zone whose origin is a suffix of `qname`.
    pub fn find_zone(&self, qname: &Name) -> Option<(Name, ZoneHandle)> {
        let zones = self.zones.read();
        let mut cur = Some(qname.clone());
        while let Some(c) = cur {
            if let Some(h) = zones.get(&c) {
                return Some((c, Arc::clone(h)));
            }
            cur = c.parent();
        }
        // The root zone has the root name as origin.
        zones
            .get(&Name::root())
            .map(|h| (Name::root(), Arc::clone(h)))
    }

    /// Addresses authoritative for the zone with this origin.
    pub fn servers_for(&self, origin: &Name) -> Vec<IpAddr> {
        self.servers.read().get(origin).cloned().unwrap_or_default()
    }

    /// Updates the server list for an existing zone.
    pub fn set_servers(&self, origin: &Name, servers: Vec<IpAddr>) {
        self.servers.write().insert(origin.clone(), servers);
    }

    /// Sets the root-hint addresses used by iterative resolvers.
    pub fn set_root_hints(&self, hints: Vec<IpAddr>) {
        *self.root_hints.write() = hints;
    }

    /// Root-hint addresses.
    pub fn root_hints(&self) -> Vec<IpAddr> {
        self.root_hints.read().clone()
    }

    /// Number of registered zones.
    pub fn zone_count(&self) -> usize {
        self.zones.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn find_zone_picks_deepest() {
        let cat = Catalog::new();
        cat.add_zone(Zone::new(Name::root()), vec![ip("10.0.0.1")]);
        cat.add_zone(Zone::new(n("le")), vec![ip("10.0.0.2")]);
        cat.add_zone(Zone::new(n("examp.le")), vec![ip("10.0.0.3")]);

        let (origin, _) = cat.find_zone(&n("www.examp.le")).unwrap();
        assert_eq!(origin, n("examp.le"));
        let (origin, _) = cat.find_zone(&n("other.le")).unwrap();
        assert_eq!(origin, n("le"));
        let (origin, _) = cat.find_zone(&n("foo.bar")).unwrap();
        assert_eq!(origin, Name::root());
    }

    #[test]
    fn find_zone_without_root_returns_none_for_strays() {
        let cat = Catalog::new();
        cat.add_zone(Zone::new(n("le")), vec![]);
        assert!(cat.find_zone(&n("foo.bar")).is_none());
    }

    #[test]
    fn zone_handles_are_shared() {
        let cat = Catalog::new();
        let h = cat.add_zone(Zone::new(n("examp.le")), vec![]);
        h.write().bump_serial();
        let again = cat.zone(&n("examp.le")).unwrap();
        assert_eq!(again.read().soa().serial, h.read().soa().serial);
    }

    #[test]
    fn remove_zone_unregisters() {
        let cat = Catalog::new();
        cat.add_zone(Zone::new(n("examp.le")), vec![ip("10.0.0.3")]);
        cat.remove_zone(&n("examp.le"));
        assert!(cat.zone(&n("examp.le")).is_none());
        assert!(cat.servers_for(&n("examp.le")).is_empty());
    }
}
