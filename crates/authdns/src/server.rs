//! Authoritative name-server processes bound on the simulated network.

use crate::catalog::ZoneHandle;
use crate::zone::{LookupOutcome, Zone};
use dps_dns::{Message, Name, RData, Rcode, Record};
use dps_netsim::net::Handler;
use dps_netsim::Network;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Maximum CNAME chase depth inside one response.
const MAX_CHAIN: usize = 8;

/// An authoritative server serving a set of zones.
///
/// One `AuthServer` can serve millions of zones (as CloudFlare's name
/// servers do); it can be bound at several addresses.
#[derive(Default)]
pub struct AuthServer {
    zones: RwLock<HashMap<Name, ZoneHandle>>,
}

impl AuthServer {
    /// A server with no zones.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Starts serving a (shared) zone.
    pub fn serve_zone(&self, zone: ZoneHandle) {
        let origin = zone.read().origin().clone();
        self.zones.write().insert(origin, zone);
    }

    /// Stops serving the zone with this origin.
    pub fn drop_zone(&self, origin: &Name) {
        self.zones.write().remove(origin);
    }

    /// Number of zones served.
    pub fn zone_count(&self) -> usize {
        self.zones.read().len()
    }

    /// The deepest served zone covering `qname`.
    fn find_zone(&self, qname: &Name) -> Option<ZoneHandle> {
        let zones = self.zones.read();
        let mut cur = Some(qname.clone());
        while let Some(c) = cur {
            if let Some(z) = zones.get(&c) {
                return Some(Arc::clone(z));
            }
            cur = c.parent();
        }
        zones.get(&Name::root()).cloned()
    }

    /// Answers one parsed query (the wire-independent core, also used by
    /// tests). Returns `None` for messages we would drop on the floor.
    pub fn answer(&self, query: &Message) -> Option<Message> {
        if query.header.qr || query.questions.len() != 1 {
            return None;
        }
        let question = query.questions.first()?;
        let mut resp = query.answer_template();

        let Some(zone) = self.find_zone(&question.qname) else {
            resp.header.rcode = Rcode::Refused;
            return Some(resp);
        };

        let mut qname = question.qname.clone();
        for hop in 0..MAX_CHAIN {
            let outcome = {
                let z = zone.read();
                if !qname.is_subdomain_of(z.origin()) {
                    // CNAME led out of this zone; see if we serve the target.
                    drop(z);
                    match self.find_zone(&qname) {
                        Some(other) => {
                            let z = other.read();
                            if qname.is_subdomain_of(z.origin()) {
                                z.lookup(&qname, question.qtype)
                            } else {
                                break;
                            }
                        }
                        None => break,
                    }
                } else {
                    z.lookup(&qname, question.qtype)
                }
            };
            match outcome {
                LookupOutcome::Answer(recs) => {
                    resp.header.aa = true;
                    resp.answers.extend(recs);
                    break;
                }
                LookupOutcome::Cname(rec) => {
                    resp.header.aa = true;
                    let target = match &rec.rdata {
                        RData::Cname(t) => t.clone(),
                        // A Cname outcome always carries CNAME rdata; if
                        // that invariant ever broke, answer with what we
                        // have rather than abort the server.
                        _ => break,
                    };
                    resp.answers.push(rec);
                    if hop + 1 == MAX_CHAIN {
                        break;
                    }
                    qname = target;
                }
                LookupOutcome::Referral { ns, glue } => {
                    resp.header.aa = false;
                    resp.authorities.extend(ns);
                    resp.additionals.extend(glue);
                    break;
                }
                LookupOutcome::NoData => {
                    resp.header.aa = true;
                    Self::attach_soa(&mut resp, &zone.read());
                    break;
                }
                LookupOutcome::NxDomain => {
                    // Only authoritative for the *first* owner; a dangling
                    // CNAME target keeps NOERROR with the partial chain.
                    if resp.answers.is_empty() {
                        resp.header.aa = true;
                        resp.header.rcode = Rcode::NxDomain;
                    }
                    Self::attach_soa(&mut resp, &zone.read());
                    break;
                }
            }
        }
        Some(resp)
    }

    fn attach_soa(resp: &mut Message, zone: &Zone) {
        resp.authorities.push(Record::new(
            zone.origin().clone(),
            dps_dns::Class::In,
            zone.soa().minimum,
            RData::Soa(zone.soa().clone()),
        ));
    }

    /// A network handler decoding/encoding wire messages.
    pub fn handler(self: &Arc<Self>) -> Handler {
        let me = Arc::clone(self);
        Arc::new(move |_src: IpAddr, payload: &[u8]| {
            let query = Message::parse(payload).ok()?;
            let resp = me.answer(&query)?;
            resp.to_bytes().ok()
        })
    }

    /// Binds this server's handler at `addr` on `net`.
    pub fn bind(self: &Arc<Self>, net: &Network, addr: IpAddr) {
        net.bind_service(addr, self.handler());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::{Question, RrType, Soa};
    use parking_lot::RwLock;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse::<Ipv4Addr>().unwrap())
    }

    fn handle(z: Zone) -> ZoneHandle {
        Arc::new(RwLock::new(z))
    }

    fn server_with_zones() -> Arc<AuthServer> {
        let srv = AuthServer::new();
        let mut customer = Zone::new(n("examp.le"));
        customer.add(n("examp.le"), a("10.0.0.1"));
        customer.add(n("www.examp.le"), RData::Cname(n("edge.foob.ar")));
        srv.serve_zone(handle(customer));

        let mut dps = Zone::new(n("foob.ar"));
        dps.add(n("edge.foob.ar"), a("10.0.0.2"));
        srv.serve_zone(handle(dps));
        srv
    }

    fn ask(srv: &Arc<AuthServer>, qname: &str, qtype: RrType) -> Message {
        let q = Message::query(1, Question::new(n(qname), qtype));
        srv.answer(&q).expect("query answered")
    }

    #[test]
    fn plain_answer_sets_aa() {
        let srv = server_with_zones();
        let r = ask(&srv, "examp.le", RrType::A);
        assert!(r.header.aa);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn cname_chain_expanded_within_server() {
        let srv = server_with_zones();
        let r = ask(&srv, "www.examp.le", RrType::A);
        assert_eq!(r.answers.len(), 2);
        assert_eq!(r.answers[0].rtype(), RrType::Cname);
        assert_eq!(r.answers[1].rtype(), RrType::A);
        assert_eq!(r.answers[1].name, n("edge.foob.ar"));
    }

    #[test]
    fn cname_to_foreign_zone_returns_partial_chain() {
        let srv = AuthServer::new();
        let mut z = Zone::new(n("examp.le"));
        z.add(n("www.examp.le"), RData::Cname(n("elsewhere.net")));
        srv.serve_zone(handle(z));
        let r = ask(&srv, "www.examp.le", RrType::A);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].rtype(), RrType::Cname);
    }

    #[test]
    fn nxdomain_carries_soa() {
        let srv = server_with_zones();
        let r = ask(&srv, "missing.examp.le", RrType::A);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert!(r.header.aa);
        assert!(matches!(r.authorities[0].rdata, RData::Soa(Soa { .. })));
    }

    #[test]
    fn unserved_name_refused() {
        let srv = server_with_zones();
        let r = ask(&srv, "www.unknown.tld", RrType::A);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn responses_and_multi_question_ignored() {
        let srv = server_with_zones();
        let mut resp_msg = Message::query(1, Question::new(n("examp.le"), RrType::A));
        resp_msg.header.qr = true;
        assert!(srv.answer(&resp_msg).is_none());

        let mut two = Message::query(1, Question::new(n("examp.le"), RrType::A));
        two.questions
            .push(Question::new(n("examp.le"), RrType::Aaaa));
        assert!(srv.answer(&two).is_none());
    }

    #[test]
    fn cname_loop_bounded() {
        let srv = AuthServer::new();
        let mut z = Zone::new(n("examp.le"));
        z.add(n("a.examp.le"), RData::Cname(n("b.examp.le")));
        z.add(n("b.examp.le"), RData::Cname(n("a.examp.le")));
        srv.serve_zone(handle(z));
        let r = ask(&srv, "a.examp.le", RrType::A);
        assert!(r.answers.len() <= MAX_CHAIN);
    }

    #[test]
    fn wire_handler_roundtrips() {
        let srv = server_with_zones();
        let handler = srv.handler();
        let q = Message::query(7, Question::new(n("examp.le"), RrType::A));
        let resp = handler("198.51.100.1".parse().unwrap(), &q.to_bytes().unwrap()).unwrap();
        let parsed = Message::parse(&resp).unwrap();
        assert_eq!(parsed.header.id, 7);
        assert_eq!(parsed.answers.len(), 1);
        // Garbage in, nothing out.
        assert!(handler("198.51.100.1".parse().unwrap(), &[0xFF, 0x00]).is_none());
    }

    #[test]
    fn delegation_referral_over_server() {
        let srv = AuthServer::new();
        let mut tld = Zone::new(n("le"));
        tld.add(n("examp.le"), RData::Ns(n("ns1.examp.le")));
        tld.add(n("ns1.examp.le"), a("10.0.0.53"));
        srv.serve_zone(handle(tld));
        let r = ask(&srv, "www.examp.le", RrType::A);
        assert!(!r.header.aa);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.additionals.len(), 1);
    }
}
