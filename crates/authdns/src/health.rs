//! Per-nameserver health tracking: a consecutive-failure circuit breaker
//! with half-open probing.
//!
//! Long-running sweeps keep hammering dead authoritatives unless server
//! selection learns from failures. The tracker keeps one tiny state machine
//! per server address:
//!
//! * **Closed** — healthy; failures increment a consecutive counter.
//! * **Open** — the counter hit the threshold; the breaker *trips* and the
//!   server is deprioritised until `open_duration_us` of virtual time has
//!   passed.
//! * **Half-open** — the cool-down elapsed; exactly one in-flight probe is
//!   allowed through. Success closes the breaker, failure re-trips it.
//!
//! The tracker never *removes* a server from candidate lists — it only
//! reorders them ([`HealthTracker::order`]), so a sweep where every server
//! of a zone is down still makes (and accounts for) its attempts. All
//! methods take the caller's virtual clock; the tracker holds no clock of
//! its own, which keeps multi-worker sweeps deterministic.

use dps_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tunables for [`HealthTracker`].
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Consecutive failures that trip the breaker. `0` disables tracking
    /// (every server always reports healthy).
    pub failure_threshold: u32,
    /// Virtual time an open breaker deprioritises its server before
    /// allowing a half-open probe.
    pub open_duration_us: u64,
}

impl Default for HealthConfig {
    /// Trip after 5 consecutive failures, cool down for 30 virtual seconds.
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            open_duration_us: 30_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { until_us: u64 },
    HalfOpen { probing: bool },
}

#[derive(Debug)]
struct Entry {
    consecutive: u32,
    state: State,
}

impl Entry {
    fn new() -> Self {
        Self {
            consecutive: 0,
            state: State::Closed,
        }
    }
}

/// How a server looks to selection right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHealth {
    /// Breaker closed; use freely.
    Available,
    /// Breaker half-open and this caller holds the single probe slot.
    Probe,
    /// Breaker open (or another caller is already probing); avoid if any
    /// alternative exists.
    Open,
}

/// Telemetry handles for breaker events (`health.breaker.*`). `Default`
/// handles are detached — they count, but belong to no registry.
#[derive(Clone, Default)]
pub struct HealthMetrics {
    trips: Counter,
    skips: Counter,
    probes: Counter,
}

impl std::fmt::Debug for HealthMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMetrics")
            .field("trips", &self.trips.value())
            .field("skips", &self.skips.value())
            .field("probes", &self.probes.value())
            .finish()
    }
}

impl HealthMetrics {
    /// Instruments registered under the `health.breaker.*` names.
    pub fn new(registry: &Registry) -> Self {
        Self {
            trips: registry.counter("health.breaker.trips"),
            skips: registry.counter("health.breaker.skips"),
            probes: registry.counter("health.breaker.probes"),
        }
    }
}

/// Shared, thread-safe circuit-breaker state for a set of nameservers.
#[derive(Debug, Default)]
pub struct HealthTracker {
    config: HealthConfig,
    entries: Mutex<HashMap<IpAddr, Entry>>,
    trips: AtomicU64,
    skips: AtomicU64,
    metrics: HealthMetrics,
}

impl HealthTracker {
    /// Creates a tracker with the given breaker tunables (telemetry
    /// detached; see [`HealthTracker::with_telemetry`]).
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            entries: Mutex::new(HashMap::new()),
            trips: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            metrics: HealthMetrics::default(),
        }
    }

    /// Routes this tracker's breaker events into `registry`.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.metrics = HealthMetrics::new(registry);
        self
    }

    /// Records a successful exchange with `server`: resets the failure
    /// counter and closes the breaker.
    pub fn record_success(&self, server: IpAddr) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        let e = entries.entry(server).or_insert_with(Entry::new);
        e.consecutive = 0;
        e.state = State::Closed;
    }

    /// Records a failed exchange with `server` at virtual time `now_us`.
    /// Trips the breaker when the consecutive-failure threshold is hit, or
    /// re-trips it when a half-open probe fails.
    pub fn record_failure(&self, server: IpAddr, now_us: u64) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        let e = entries.entry(server).or_insert_with(Entry::new);
        e.consecutive = e.consecutive.saturating_add(1);
        let reopen = match e.state {
            State::Closed => e.consecutive >= self.config.failure_threshold,
            State::HalfOpen { .. } => true,
            State::Open { .. } => false,
        };
        if reopen {
            e.state = State::Open {
                until_us: now_us + self.config.open_duration_us,
            };
            self.trips.fetch_add(1, Ordering::Relaxed);
            self.metrics.trips.inc();
        }
    }

    /// Classifies `server` for selection at virtual time `now_us`. An open
    /// breaker whose cool-down has elapsed transitions to half-open, and
    /// the *first* caller to observe it claims the probe slot.
    pub fn check(&self, server: IpAddr, now_us: u64) -> ServerHealth {
        if self.config.failure_threshold == 0 {
            return ServerHealth::Available;
        }
        let mut entries = self.entries.lock();
        let e = entries.entry(server).or_insert_with(Entry::new);
        match e.state {
            State::Closed => ServerHealth::Available,
            State::Open { until_us } if now_us >= until_us => {
                e.state = State::HalfOpen { probing: true };
                self.metrics.probes.inc();
                ServerHealth::Probe
            }
            State::Open { .. } => ServerHealth::Open,
            State::HalfOpen { probing: false } => {
                e.state = State::HalfOpen { probing: true };
                self.metrics.probes.inc();
                ServerHealth::Probe
            }
            State::HalfOpen { probing: true } => ServerHealth::Open,
        }
    }

    /// Orders `servers` for a query at virtual time `now_us`: available
    /// servers first, then half-open probes, then open breakers — each
    /// group keeping its original order. Nothing is dropped: if every
    /// breaker is open the caller still gets the full list.
    pub fn order(&self, servers: &[IpAddr], now_us: u64) -> Vec<IpAddr> {
        if self.config.failure_threshold == 0 || servers.len() <= 1 {
            return servers.to_vec();
        }
        let mut available = Vec::new();
        let mut probes = Vec::new();
        let mut open = Vec::new();
        for &s in servers {
            match self.check(s, now_us) {
                ServerHealth::Available => available.push(s),
                ServerHealth::Probe => probes.push(s),
                ServerHealth::Open => open.push(s),
            }
        }
        // Count a skip only when an open server was actually deprioritised
        // behind *some* healthier alternative.
        if !open.is_empty() && (!available.is_empty() || !probes.is_empty()) {
            self.skips.fetch_add(open.len() as u64, Ordering::Relaxed);
            self.metrics.skips.add(open.len() as u64);
        }
        available.extend(probes);
        available.extend(open);
        available
    }

    /// Times the breaker tripped (including half-open probe failures).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Open servers deprioritised behind a healthy alternative.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthConfig {
            failure_threshold: 3,
            open_duration_us: 1_000_000,
        })
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let t = tracker();
        let s = ip("10.0.0.1");
        for _ in 0..2 {
            t.record_failure(s, 0);
            assert_eq!(t.check(s, 0), ServerHealth::Available);
        }
        t.record_failure(s, 0);
        assert_eq!(t.check(s, 0), ServerHealth::Open);
        assert_eq!(t.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t = tracker();
        let s = ip("10.0.0.1");
        t.record_failure(s, 0);
        t.record_failure(s, 0);
        t.record_success(s);
        t.record_failure(s, 0);
        t.record_failure(s, 0);
        assert_eq!(t.check(s, 0), ServerHealth::Available);
        assert_eq!(t.trips(), 0);
    }

    #[test]
    fn cooldown_allows_exactly_one_probe() {
        let t = tracker();
        let s = ip("10.0.0.1");
        for _ in 0..3 {
            t.record_failure(s, 0);
        }
        assert_eq!(t.check(s, 999_999), ServerHealth::Open);
        // Cool-down elapsed: first caller probes, second waits.
        assert_eq!(t.check(s, 1_000_000), ServerHealth::Probe);
        assert_eq!(t.check(s, 1_000_000), ServerHealth::Open);
        // A successful probe closes the breaker for everyone.
        t.record_success(s);
        assert_eq!(t.check(s, 1_000_001), ServerHealth::Available);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let t = tracker();
        let s = ip("10.0.0.1");
        for _ in 0..3 {
            t.record_failure(s, 0);
        }
        assert_eq!(t.check(s, 1_000_000), ServerHealth::Probe);
        t.record_failure(s, 1_000_000);
        assert_eq!(t.trips(), 2);
        assert_eq!(t.check(s, 1_500_000), ServerHealth::Open);
        assert_eq!(t.check(s, 2_000_000), ServerHealth::Probe);
    }

    #[test]
    fn order_puts_healthy_servers_first_and_drops_nothing() {
        let t = tracker();
        let (a, b, c) = (ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.3"));
        for _ in 0..3 {
            t.record_failure(a, 0);
        }
        let ordered = t.order(&[a, b, c], 0);
        assert_eq!(ordered, vec![b, c, a]);
        assert_eq!(t.skips(), 1);
        // All open: original order survives.
        for _ in 0..3 {
            t.record_failure(b, 0);
            t.record_failure(c, 0);
        }
        assert_eq!(t.order(&[a, b, c], 0), vec![a, b, c]);
    }

    #[test]
    fn telemetry_counts_trips_skips_and_probes() {
        let registry = Registry::new();
        let t = HealthTracker::new(HealthConfig {
            failure_threshold: 3,
            open_duration_us: 1_000_000,
        })
        .with_telemetry(&registry);
        let (a, b) = (ip("10.0.0.1"), ip("10.0.0.2"));
        for _ in 0..3 {
            t.record_failure(a, 0);
        }
        t.order(&[a, b], 0);
        t.check(a, 1_000_000); // cool-down over: claims the probe slot
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("health.breaker.trips"), Some(&1));
        assert_eq!(snap.counters.get("health.breaker.skips"), Some(&1));
        assert_eq!(snap.counters.get("health.breaker.probes"), Some(&1));
        assert_eq!(t.trips(), 1);
        assert_eq!(t.skips(), 1);
    }

    #[test]
    fn zero_threshold_disables_tracking() {
        let t = HealthTracker::new(HealthConfig {
            failure_threshold: 0,
            open_duration_us: 1,
        });
        let s = ip("10.0.0.1");
        for _ in 0..100 {
            t.record_failure(s, 0);
        }
        assert_eq!(t.check(s, 0), ServerHealth::Available);
        assert_eq!(t.trips(), 0);
    }
}
