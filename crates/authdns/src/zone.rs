//! In-memory authoritative zones.

use dps_dns::{Class, Name, RData, Record, RrType, Soa};
use std::collections::{HashMap, HashSet};

/// Key of an RRset inside a zone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RrKey {
    owner: Name,
    rtype: RrType,
}

/// The outcome of looking a name/type up in a single zone, before any
/// cross-zone processing (CNAME chasing happens in the server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The RRset exists; records are returned in insertion order.
    Answer(Vec<Record>),
    /// The owner exists and has a CNAME; the caller restarts at the target.
    Cname(Record),
    /// The name lies below a zone cut: NS records of the cut plus any glue
    /// addresses the zone holds for those servers.
    Referral {
        /// NS records at the delegation point.
        ns: Vec<Record>,
        /// A/AAAA glue for in-zone name-server names.
        glue: Vec<Record>,
    },
    /// The owner exists but has no RRset of this type.
    NoData,
    /// The owner does not exist in the zone.
    NxDomain,
}

/// A single authoritative zone.
///
/// Records are stored per `(owner, type)` RRset. Delegations are ordinary
/// NS RRsets owned by a name *below* the zone origin; lookup treats any
/// query at or below such a cut as a referral (RFC 1034 §4.3.2 step 3b).
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Soa,
    default_ttl: u32,
    rrsets: HashMap<RrKey, Vec<RData>>,
    /// Every existing owner name plus implied empty non-terminals,
    /// so NXDOMAIN vs NODATA is decided correctly.
    owners: HashSet<Name>,
    /// Owners of NS RRsets strictly below the origin (zone cuts).
    cuts: HashSet<Name>,
}

impl Zone {
    /// Creates an empty zone with a conventional SOA.
    pub fn new(origin: Name) -> Self {
        let soa = Soa {
            mname: origin.prepend("ns1").unwrap_or_else(|_| origin.clone()),
            rname: origin
                .prepend("hostmaster")
                .unwrap_or_else(|_| origin.clone()),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        };
        let mut owners = HashSet::new();
        owners.insert(origin.clone());
        Self {
            origin,
            soa,
            default_ttl: 300,
            rrsets: HashMap::new(),
            owners,
            cuts: HashSet::new(),
        }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The zone SOA.
    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// Bumps the SOA serial (zone publish).
    pub fn bump_serial(&mut self) {
        self.soa.serial += 1;
    }

    /// Number of RRsets.
    pub fn rrset_count(&self) -> usize {
        self.rrsets.len()
    }

    fn register_owner(&mut self, owner: &Name) {
        // Insert the owner and all ancestors down to the origin so empty
        // non-terminals answer NODATA, not NXDOMAIN.
        let mut cur = owner.clone();
        while self.owners.insert(cur.clone()) {
            match cur.parent() {
                Some(p) if p.is_subdomain_of(&self.origin) && p != self.origin => cur = p,
                _ => break,
            }
        }
    }

    /// Adds one record to the RRset for `(owner, rdata.rtype())`.
    ///
    /// # Panics
    /// Panics if `owner` is not at or below the zone origin — callers
    /// construct zones programmatically and that is a programming error.
    pub fn add(&mut self, owner: Name, rdata: RData) {
        assert!(
            owner.is_subdomain_of(&self.origin),
            "owner {owner} outside zone {}",
            self.origin
        );
        let rtype = rdata.rtype();
        if rtype == RrType::Ns && owner != self.origin {
            self.cuts.insert(owner.clone());
        }
        self.register_owner(&owner);
        self.rrsets
            .entry(RrKey { owner, rtype })
            .or_default()
            .push(rdata);
    }

    /// Replaces the RRset for `(owner, rtype)` with the given data
    /// (removes it when `data` is empty).
    pub fn set(&mut self, owner: Name, rtype: RrType, data: Vec<RData>) {
        assert!(owner.is_subdomain_of(&self.origin));
        let key = RrKey {
            owner: owner.clone(),
            rtype,
        };
        if data.is_empty() {
            self.rrsets.remove(&key);
            if rtype == RrType::Ns {
                self.cuts.remove(&owner);
            }
            // Owner bookkeeping is kept conservative: owners are only added.
            // A name whose last RRset is removed answers NODATA, which is
            // indistinguishable from an empty non-terminal for the study.
        } else {
            debug_assert!(data.iter().all(|d| d.rtype() == rtype));
            if rtype == RrType::Ns && owner != self.origin {
                self.cuts.insert(owner.clone());
            }
            self.register_owner(&owner);
            self.rrsets.insert(key, data);
        }
        self.bump_serial();
    }

    /// Removes every RRset owned by `owner` (domain deletion).
    pub fn remove_owner(&mut self, owner: &Name) {
        self.rrsets.retain(|k, _| k.owner != *owner);
        self.cuts.remove(owner);
        self.bump_serial();
    }

    /// Raw RRset access.
    pub fn get(&self, owner: &Name, rtype: RrType) -> Option<&[RData]> {
        self.rrsets
            .get(&RrKey {
                owner: owner.clone(),
                rtype,
            })
            .map(Vec::as_slice)
    }

    fn records(&self, owner: &Name, rtype: RrType) -> Vec<Record> {
        self.get(owner, rtype)
            .map(|set| {
                set.iter()
                    .map(|rd| Record::new(owner.clone(), Class::In, self.default_ttl, rd.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The deepest zone cut that is an ancestor-or-self of `name`
    /// (strictly below the origin), if any.
    fn covering_cut(&self, name: &Name) -> Option<Name> {
        // Walk from `name` upwards toward the origin; the first NS-owning
        // ancestor we meet is the deepest cut.
        let mut cur = Some(name.clone());
        while let Some(c) = cur {
            if c == self.origin {
                return None;
            }
            if self.cuts.contains(&c) {
                return Some(c);
            }
            cur = c.parent();
        }
        None
    }

    /// Glue records (A/AAAA) this zone holds for the given NS target names.
    fn glue_for(&self, ns: &[Record]) -> Vec<Record> {
        let mut glue = Vec::new();
        for rec in ns {
            if let RData::Ns(target) = &rec.rdata {
                if target.is_subdomain_of(&self.origin) {
                    glue.extend(self.records(target, RrType::A));
                    glue.extend(self.records(target, RrType::Aaaa));
                }
            }
        }
        glue
    }

    /// Looks up `(qname, qtype)` within this zone.
    ///
    /// The caller must ensure `qname` is at or below the zone origin.
    pub fn lookup(&self, qname: &Name, qtype: RrType) -> LookupOutcome {
        debug_assert!(qname.is_subdomain_of(&self.origin));

        // 1. Delegation? (Not for queries *at* the cut asking for NS —
        //    those are still referrals per RFC 1034, the parent is not
        //    authoritative for the child.)
        if let Some(cut) = self.covering_cut(qname) {
            let ns = self.records(&cut, RrType::Ns);
            let glue = self.glue_for(&ns);
            return LookupOutcome::Referral { ns, glue };
        }

        // 2. CNAME at the owner (unless CNAME itself was asked).
        if qtype != RrType::Cname && qtype != RrType::Any {
            if let Some(set) = self.get(qname, RrType::Cname) {
                if let Some(rd) = set.first() {
                    return LookupOutcome::Cname(Record::new(
                        qname.clone(),
                        Class::In,
                        self.default_ttl,
                        rd.clone(),
                    ));
                }
            }
        }

        // 3. Exact RRset.
        let answer = self.records(qname, qtype);
        if !answer.is_empty() {
            return LookupOutcome::Answer(answer);
        }

        // 4. NODATA vs NXDOMAIN.
        if self.owners.contains(qname) {
            LookupOutcome::NoData
        } else {
            LookupOutcome::NxDomain
        }
    }

    /// The zone's own NS RRset (at the apex).
    pub fn apex_ns(&self) -> Vec<Record> {
        self.records(&self.origin, RrType::Ns)
    }

    /// Iterates over all `(owner, rdata)` pairs (for zone-file export).
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &RData)> {
        self.rrsets
            .iter()
            .flat_map(|(k, set)| set.iter().map(move |rd| (&k.owner, rd)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse::<Ipv4Addr>().unwrap())
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(n("examp.le"));
        z.add(n("examp.le"), RData::Ns(n("ns1.examp.le")));
        z.add(n("ns1.examp.le"), a("10.0.0.53"));
        z.add(n("examp.le"), a("10.0.0.1"));
        z.add(n("www.examp.le"), RData::Cname(n("examp.le")));
        z.add(n("deep.label.examp.le"), a("10.0.0.9"));
        // Delegated child zone.
        z.add(n("child.examp.le"), RData::Ns(n("ns.child.examp.le")));
        z.add(n("ns.child.examp.le"), a("10.0.1.53"));
        z
    }

    #[test]
    fn exact_answer() {
        let z = sample_zone();
        match z.lookup(&n("examp.le"), RrType::A) {
            LookupOutcome::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rdata, a("10.0.0.1"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cname_returned_for_other_types() {
        let z = sample_zone();
        match z.lookup(&n("www.examp.le"), RrType::A) {
            LookupOutcome::Cname(rec) => assert_eq!(rec.rdata, RData::Cname(n("examp.le"))),
            other => panic!("{other:?}"),
        }
        // Asking for the CNAME itself gives the record as an answer.
        match z.lookup(&n("www.examp.le"), RrType::Cname) {
            LookupOutcome::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delegation_yields_referral_with_glue() {
        let z = sample_zone();
        for q in ["child.examp.le", "www.child.examp.le", "a.b.child.examp.le"] {
            match z.lookup(&n(q), RrType::A) {
                LookupOutcome::Referral { ns, glue } => {
                    assert_eq!(ns.len(), 1);
                    assert_eq!(ns[0].name, n("child.examp.le"));
                    assert_eq!(glue.len(), 1, "glue for {q}");
                    assert_eq!(glue[0].name, n("ns.child.examp.le"));
                }
                other => panic!("{q}: {other:?}"),
            }
        }
    }

    #[test]
    fn ns_query_at_cut_is_still_referral() {
        let z = sample_zone();
        assert!(matches!(
            z.lookup(&n("child.examp.le"), RrType::Ns),
            LookupOutcome::Referral { .. }
        ));
    }

    #[test]
    fn apex_ns_is_answer_not_referral() {
        let z = sample_zone();
        match z.lookup(&n("examp.le"), RrType::Ns) {
            LookupOutcome::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = sample_zone();
        // Existing owner, missing type.
        assert_eq!(z.lookup(&n("examp.le"), RrType::Mx), LookupOutcome::NoData);
        // Empty non-terminal: label.examp.le exists only as an ancestor.
        assert_eq!(
            z.lookup(&n("label.examp.le"), RrType::A),
            LookupOutcome::NoData
        );
        // Truly absent.
        assert_eq!(
            z.lookup(&n("nope.examp.le"), RrType::A),
            LookupOutcome::NxDomain
        );
    }

    #[test]
    fn set_replaces_and_removes() {
        let mut z = sample_zone();
        z.set(n("examp.le"), RrType::A, vec![a("10.9.9.9")]);
        match z.lookup(&n("examp.le"), RrType::A) {
            LookupOutcome::Answer(recs) => assert_eq!(recs[0].rdata, a("10.9.9.9")),
            other => panic!("{other:?}"),
        }
        z.set(n("examp.le"), RrType::A, vec![]);
        assert_eq!(z.lookup(&n("examp.le"), RrType::A), LookupOutcome::NoData);
    }

    #[test]
    fn remove_owner_deletes_all_sets() {
        let mut z = sample_zone();
        z.remove_owner(&n("child.examp.le"));
        // No longer a cut; the name answers NODATA (owner set is
        // conservative), definitely not a referral.
        assert!(!matches!(
            z.lookup(&n("www.child.examp.le"), RrType::A),
            LookupOutcome::Referral { .. }
        ));
    }

    #[test]
    fn serial_bumps_on_set() {
        let mut z = sample_zone();
        let before = z.soa().serial;
        z.set(n("examp.le"), RrType::A, vec![a("10.0.0.2")]);
        assert!(z.soa().serial > before);
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn out_of_zone_add_panics() {
        let mut z = Zone::new(n("examp.le"));
        z.add(n("other.tld"), a("10.0.0.1"));
    }
}
