//! RFC 1035 §5 master-file text format (the subset registries publish).
//!
//! The measurement platform's stage I "downloads updated zone files daily
//! from registry operators" (paper §3.1). This module renders a [`Zone`]
//! in master-file text and parses it back: `$ORIGIN`/`$TTL` directives,
//! absolute and origin-relative owner names, `@` for the origin, and the
//! record types the study touches (`A`, `AAAA`, `NS`, `CNAME`, `SOA`,
//! `MX`, `TXT`). Comments (`;`) and blank lines are tolerated.

// Untrusted-input module: registry zone text is parsed with typed errors,
// never panics (enforced by dps-analyzer's panic-safety family and these
// lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::zone::Zone;
use dps_dns::{Name, RData, RrType, Soa};
use std::fmt::Write as _;

/// A zone-file parse failure with its line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (byte offset + 1).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Renders a zone in master-file format (deterministic order: SOA first,
/// then records sorted by owner and type).
pub fn format_zone(zone: &Zone) -> String {
    let mut out = String::new();
    let origin = zone.origin();
    let _ = writeln!(out, "$ORIGIN {origin}");
    let _ = writeln!(out, "$TTL 300");
    let soa = zone.soa();
    let _ = writeln!(
        out,
        "@ IN SOA {} {} {} {} {} {} {}",
        soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
    );
    let mut records: Vec<(String, String)> = zone
        .iter()
        .map(|(owner, rdata)| (owner.to_string(), render_rdata(rdata)))
        .collect();
    records.sort();
    for (owner, rendered) in records {
        let _ = writeln!(out, "{owner} IN {rendered}");
    }
    out
}

fn render_rdata(rdata: &RData) -> String {
    match rdata {
        RData::A(a) => format!("A {a}"),
        RData::Aaaa(a) => format!("AAAA {a}"),
        RData::Ns(n) => format!("NS {n}"),
        RData::Cname(n) => format!("CNAME {n}"),
        RData::Mx {
            preference,
            exchange,
        } => format!("MX {preference} {exchange}"),
        RData::Txt(strings) => {
            let mut s = String::from("TXT");
            for part in strings {
                let _ = write!(s, " \"{}\"", escape_char_string(part));
            }
            s
        }
        RData::Soa(soa) => format!(
            "SOA {} {} {} {} {} {} {}",
            soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
        ),
        RData::Raw { rtype, data } => format!("TYPE{rtype} \\# {}", data.len()),
    }
}

/// Renders one TXT character-string with master-file escapes: `"` and
/// `\` get a backslash, printable ASCII passes through, everything else
/// becomes `\DDD` (RFC 1035 §5.1). The inverse of the tokenizer's escape
/// handling, so format∘parse is the identity on arbitrary bytes.
fn escape_char_string(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len());
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            0x20..=0x7E => out.push(char::from(b)),
            other => {
                let _ = write!(out, "\\{other:03}");
            }
        }
    }
    out
}

/// The longest character-string the wire format can carry (one length
/// octet); longer TXT strings must fail at parse, not at encode.
const MAX_CHAR_STRING: usize = 255;

/// One token of a zone-file line, with enough position info to report
/// useful errors.
struct Token {
    /// Unescaped content (may be arbitrary bytes via `\DDD`).
    bytes: Vec<u8>,
    /// Whether the token was quoted (TXT cares: `""` is a legal empty
    /// character-string, and quoted strings may contain `;` and spaces).
    quoted: bool,
    /// 1-based column of the token's first character.
    col: usize,
}

impl Token {
    /// The token as text, for names and numbers.
    fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes).map_err(|_| "token is not valid UTF-8".to_string())
    }
}

/// Resolves a `\`-escape starting at byte `i`; returns the decoded byte
/// and how many input bytes were consumed.
fn unescape(bytes: &[u8], i: usize) -> Result<(u8, usize), String> {
    match bytes.get(i + 1) {
        None => Err("dangling backslash".to_string()),
        Some(d) if d.is_ascii_digit() => {
            // \DDD: exactly three decimal digits, value ≤ 255.
            let digits = bytes
                .get(i + 1..i + 4)
                .filter(|ds| ds.iter().all(u8::is_ascii_digit))
                .ok_or_else(|| "\\DDD escape needs three digits".to_string())?;
            let mut v: u32 = 0;
            for &d in digits {
                v = v * 10 + u32::from(d - b'0');
            }
            let b = u8::try_from(v).map_err(|_| format!("\\{v} exceeds 255"))?;
            Ok((b, 4))
        }
        Some(&c) => Ok((c, 2)),
    }
}

/// Splits one line into tokens: whitespace-separated words and quoted
/// strings, with `\` escapes in both, stopping at an unquoted `;`
/// (comment). Columns are 1-based byte offsets.
fn tokenize_line(line: &str, lineno: usize) -> Result<Vec<Token>, ParseError> {
    let err = |col: usize, message: String| ParseError {
        line: lineno,
        col,
        message,
    };
    let bytes = line.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b';' {
            break; // comment runs to end of line
        }
        let col = i + 1;
        if b == b'"' {
            i += 1;
            let mut out = Vec::new();
            let mut closed = false;
            while let Some(&c) = bytes.get(i) {
                match c {
                    b'"' => {
                        closed = true;
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        let (decoded, adv) = unescape(bytes, i).map_err(|m| err(i + 1, m))?;
                        out.push(decoded);
                        i += adv;
                    }
                    other => {
                        out.push(other);
                        i += 1;
                    }
                }
            }
            if !closed {
                return Err(err(col, "unterminated quoted string".to_string()));
            }
            toks.push(Token {
                bytes: out,
                quoted: true,
                col,
            });
        } else {
            let mut out = Vec::new();
            while let Some(&c) = bytes.get(i) {
                if c.is_ascii_whitespace() || c == b';' || c == b'"' {
                    break;
                }
                if c == b'\\' {
                    let (decoded, adv) = unescape(bytes, i).map_err(|m| err(i + 1, m))?;
                    out.push(decoded);
                    i += adv;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            toks.push(Token {
                bytes: out,
                quoted: false,
                col,
            });
        }
    }
    Ok(toks)
}

/// Parses master-file text into a [`Zone`]. `default_origin` applies until
/// a `$ORIGIN` directive overrides it.
pub fn parse_zone(default_origin: &Name, text: &str) -> Result<Zone, ParseError> {
    let mut origin = default_origin.clone();
    let mut zone = Zone::new(default_origin.clone());

    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |col: usize, message: String| ParseError {
            line: lineno,
            col,
            message,
        };
        let tokens = tokenize_line(raw_line, lineno)?;
        let Some((first, mut rest)) = tokens.split_first() else {
            continue;
        };
        match first.text().unwrap_or("") {
            "$ORIGIN" if !first.quoted => {
                let o = rest
                    .first()
                    .ok_or_else(|| err(first.col, "missing origin".to_string()))?;
                origin = o
                    .text()
                    .map_err(|m| err(o.col, m))?
                    .parse()
                    .map_err(|e| err(o.col, format!("bad origin: {e}")))?;
                if origin != *zone.origin() && zone.rrset_count() == 0 {
                    zone = Zone::new(origin.clone());
                }
            }
            "$TTL" if !first.quoted => {
                rest.first()
                    .ok_or_else(|| err(first.col, "missing ttl".to_string()))?;
            }
            _ => {
                // owner [IN] TYPE RDATA…
                let owner_text = first.text().map_err(|m| err(first.col, m))?;
                let owner = resolve_name(owner_text, &origin)
                    .map_err(|e| err(first.col, format!("bad owner: {e}")))?;
                if let Some((class, after)) = rest.split_first() {
                    if !class.quoted && class.text().unwrap_or("") == "IN" {
                        rest = after;
                    }
                }
                let Some((rtype, args)) = rest.split_first() else {
                    return Err(err(first.col, "missing type".to_string()));
                };
                // Out-of-zone owners are a parse error here: `Zone::add`
                // treats them as a programmer-error panic, and hostile
                // zone text must never reach that (fuzzer-found via `.`
                // owners and mid-file `$ORIGIN` switches).
                if !owner.is_subdomain_of(zone.origin()) {
                    return Err(err(
                        first.col,
                        format!("owner {owner} outside zone {}", zone.origin()),
                    ));
                }
                let rdata = parse_rdata(rtype, args, &origin, lineno)?;
                if rdata.rtype() == RrType::Soa {
                    // SOA replaces the synthetic one; stored via dedicated API.
                    if let RData::Soa(_) = &rdata {
                        // Zone keeps its SOA internally; re-adding as a
                        // record would duplicate it at the apex, so skip
                        // (serials are not semantically used by the study).
                        continue;
                    }
                }
                zone.add(owner, rdata);
            }
        }
    }
    Ok(zone)
}

fn resolve_name(token: &str, origin: &Name) -> Result<Name, dps_dns::NameError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return format!("{absolute}.").parse();
    }
    // Relative: append the origin. Going through the presentation-format
    // parser (rather than raw `from_labels`) enforces the name charset,
    // so every name a parsed zone holds re-renders parseably —
    // fuzzer-found: raw bytes here broke the format∘parse round-trip.
    if origin.is_root() {
        format!("{token}.").parse()
    } else {
        format!("{token}.{origin}").parse()
    }
}

fn parse_rdata(
    rtype_tok: &Token,
    args: &[Token],
    origin: &Name,
    lineno: usize,
) -> Result<RData, ParseError> {
    let err = |col: usize, message: String| ParseError {
        line: lineno,
        col,
        message,
    };
    let rtype = rtype_tok.text().map_err(|m| err(rtype_tok.col, m))?;
    // Checked field accessor: registry exports are untrusted text, so a
    // short line must surface as a parse error, never an index panic.
    let arg = |i: usize| -> Result<&Token, ParseError> {
        args.get(i).ok_or_else(|| {
            err(
                rtype_tok.col,
                format!("{rtype} needs {} fields, got {}", i + 1, args.len()),
            )
        })
    };
    let text = |i: usize| -> Result<(&str, usize), ParseError> {
        let tok = arg(i)?;
        Ok((tok.text().map_err(|m| err(tok.col, m))?, tok.col))
    };
    let name_arg = |i: usize| -> Result<Name, ParseError> {
        let (s, col) = text(i)?;
        resolve_name(s, origin).map_err(|e| err(col, e.to_string()))
    };
    match rtype {
        "A" => {
            let (s, col) = text(0)?;
            Ok(RData::A(
                s.parse().map_err(|_| err(col, "bad IPv4".to_string()))?,
            ))
        }
        "AAAA" => {
            let (s, col) = text(0)?;
            Ok(RData::Aaaa(
                s.parse().map_err(|_| err(col, "bad IPv6".to_string()))?,
            ))
        }
        "NS" => Ok(RData::Ns(name_arg(0)?)),
        "CNAME" => Ok(RData::Cname(name_arg(0)?)),
        "MX" => {
            let (pref, col) = text(0)?;
            Ok(RData::Mx {
                preference: pref
                    .parse()
                    .map_err(|_| err(col, "bad preference".to_string()))?,
                exchange: name_arg(1)?,
            })
        }
        "TXT" => {
            arg(0)?;
            let mut strings = Vec::with_capacity(args.len());
            for tok in args {
                if tok.bytes.len() > MAX_CHAR_STRING {
                    return Err(err(
                        tok.col,
                        format!(
                            "TXT string is {} octets; the wire format caps \
                             character-strings at {MAX_CHAR_STRING}",
                            tok.bytes.len()
                        ),
                    ));
                }
                strings.push(tok.bytes.clone());
            }
            Ok(RData::Txt(strings))
        }
        "SOA" => {
            let num = |i: usize| -> Result<u32, ParseError> {
                let (s, col) = text(i)?;
                s.parse()
                    .map_err(|_| err(col, format!("bad SOA field {}", i + 1)))
            };
            Ok(RData::Soa(Soa {
                mname: name_arg(0)?,
                rname: name_arg(1)?,
                serial: num(2)?,
                refresh: num(3)?,
                retry: num(4)?,
                expire: num(5)?,
                minimum: num(6)?,
            }))
        }
        other => Err(err(rtype_tok.col, format!("unsupported type {other}"))),
    }
}

/// Extracts the distinct delegated names (owners of NS records below the
/// origin) from registry zone-file text — exactly what the measurement
/// platform turns a downloaded TLD zone file into.
pub fn delegated_names(origin: &Name, text: &str) -> Result<Vec<Name>, ParseError> {
    let zone = parse_zone(origin, text)?;
    let mut names: Vec<Name> = zone
        .iter()
        .filter_map(|(owner, rdata)| match rdata {
            RData::Ns(_) if owner != origin => Some(owner.clone()),
            _ => None,
        })
        .collect();
    // Sort by presentation form (wire-order sorts by label length first,
    // which surprises humans and tests alike).
    names.sort_by_key(|n| n.to_string());
    names.dedup();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::Class;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(n("examp.le"));
        z.add(n("examp.le"), RData::Ns(n("ns1.examp.le")));
        z.add(n("ns1.examp.le"), RData::A(Ipv4Addr::new(10, 0, 0, 53)));
        z.add(n("examp.le"), RData::A(Ipv4Addr::new(10, 0, 0, 1)));
        z.add(n("www.examp.le"), RData::Cname(n("edge.foob.ar")));
        z.add(
            n("examp.le"),
            RData::Mx {
                preference: 10,
                exchange: n("mx.examp.le"),
            },
        );
        z.add(n("examp.le"), RData::Txt(vec![b"v=spf1 -all".to_vec()]));
        z
    }

    #[test]
    fn roundtrip_preserves_records() {
        let zone = sample_zone();
        let text = format_zone(&zone);
        let back = parse_zone(&n("examp.le"), &text).unwrap();
        // Compare record multisets.
        let collect = |z: &Zone| {
            let mut v: Vec<String> = z.iter().map(|(o, r)| format!("{o} {r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(collect(&back), collect(&zone));
        assert_eq!(back.origin(), zone.origin());
    }

    #[test]
    fn relative_names_and_at_are_resolved() {
        let text = "\
$ORIGIN examp.le.
@ IN A 10.0.0.1
www IN CNAME @
deep.label IN A 10.0.0.9
";
        let zone = parse_zone(&n("examp.le"), text).unwrap();
        assert!(zone.get(&n("examp.le"), RrType::A).is_some());
        assert_eq!(
            zone.get(&n("www.examp.le"), RrType::Cname).unwrap()[0],
            RData::Cname(n("examp.le"))
        );
        assert!(zone.get(&n("deep.label.examp.le"), RrType::A).is_some());
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let text = "\
; registry export
$ORIGIN le.

examp IN NS ns1.examp.le. ; delegation
";
        let zone = parse_zone(&n("le"), text).unwrap();
        assert!(zone.get(&n("examp.le"), RrType::Ns).is_some());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let text = "$ORIGIN le.\nexamp IN A not-an-ip\n";
        let e = parse_zone(&n("le"), text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 12, "column of the bad address token");
        assert_eq!(e.to_string(), "line 2, col 12: bad IPv4");

        let e = parse_zone(&n("le"), "examp IN WEIRD x\n").unwrap_err();
        assert!(e.message.contains("unsupported type"));
        assert_eq!((e.line, e.col), (1, 10));

        let e = parse_zone(&n("le"), "examp IN MX 10\n").unwrap_err();
        assert!(e.message.contains("needs 2 fields"));

        let e = parse_zone(&n("le"), "examp IN TXT \"unterminated\n").unwrap_err();
        assert_eq!(e.to_string(), "line 1, col 14: unterminated quoted string");

        let e = parse_zone(&n("le"), "examp IN TXT \"bad \\9 escape\"\n").unwrap_err();
        assert!(e.message.contains("three digits"), "{e}");
    }

    #[test]
    fn quoted_txt_may_contain_semicolons_and_spaces() {
        let text = "$ORIGIN le.\nexamp IN TXT \"v=spf1 a; note\" \"\" plain\n";
        let zone = parse_zone(&n("le"), text).unwrap();
        let rrs = zone.get(&n("examp.le"), RrType::Txt).unwrap();
        assert_eq!(
            rrs[0],
            RData::Txt(vec![b"v=spf1 a; note".to_vec(), vec![], b"plain".to_vec()])
        );
    }

    #[test]
    fn txt_escapes_roundtrip_arbitrary_bytes() {
        let mut zone = Zone::new(n("examp.le"));
        zone.add(
            n("examp.le"),
            RData::Txt(vec![
                b"quote \" backslash \\ semi ;".to_vec(),
                vec![0x00, 0x1F, 0x7F, 0xFF],
            ]),
        );
        let text = format_zone(&zone);
        let back = parse_zone(&n("examp.le"), &text).unwrap();
        assert_eq!(
            back.get(&n("examp.le"), RrType::Txt),
            zone.get(&n("examp.le"), RrType::Txt)
        );
    }

    #[test]
    fn non_presentation_names_are_rejected_not_roundtripped() {
        // Fuzzer-found: names with bytes outside the presentation charset
        // used to enter the zone and then render unparseably.
        let e = parse_zone(&n("le"), "\u{0} IN NS x\n").unwrap_err();
        assert!(e.message.contains("bad owner"), "{e}");
        let e = parse_zone(&n("le"), "examp IN NS bad:name\n").unwrap_err();
        assert!(e.message.contains("not allowed"), "{e}");
    }

    #[test]
    fn out_of_zone_owners_are_a_parse_error_not_a_panic() {
        // Fuzzer-found: `Zone::add` panics on out-of-zone owners by
        // contract, so the parser must reject them first.
        let e = parse_zone(&n("examp.le"), ". MX 0 x\n").unwrap_err();
        assert!(e.message.contains("outside zone"), "{e}");
        // A mid-file $ORIGIN switch (after records exist) re-bases name
        // resolution but not the zone; owners under the new origin fail.
        let text = "$ORIGIN examp.le.\nwww IN A 10.0.0.1\n$ORIGIN foob.ar.\nx IN A 10.0.0.2\n";
        let e = parse_zone(&n("examp.le"), text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("outside zone"), "{e}");
    }

    #[test]
    fn overlong_txt_string_is_rejected() {
        let long = "a".repeat(256);
        let text = format!("examp IN TXT \"{long}\"\n");
        let e = parse_zone(&n("le"), &text).unwrap_err();
        assert!(e.message.contains("255"), "{e}");
        assert_eq!((e.line, e.col), (1, 14));
        // Exactly 255 octets is fine.
        let ok = format!("examp IN TXT \"{}\"\n", "a".repeat(255));
        assert!(parse_zone(&n("le"), &ok).is_ok());
    }

    #[test]
    fn delegated_names_extracts_sld_list() {
        let text = "\
$ORIGIN com.
@ IN NS ns.nic.com.
d1 IN NS ns1.hostco0.net.
d1 IN NS ns2.hostco0.net.
d2 IN NS kate.ns.cloudflare.com.
cloudflare IN NS kate.ns.cloudflare.com.
";
        let names = delegated_names(&n("com"), text).unwrap();
        assert_eq!(names, vec![n("cloudflare.com"), n("d1.com"), n("d2.com")]);
    }

    #[test]
    fn formatted_zone_parses_with_served_lookup_semantics() {
        // A zone that went through text round-trip answers like the
        // original through the server machinery.
        use crate::server::AuthServer;
        use dps_dns::{Message, Question};
        let zone = sample_zone();
        let text = format_zone(&zone);
        let back = parse_zone(&n("examp.le"), &text).unwrap();

        let srv = AuthServer::new();
        srv.serve_zone(std::sync::Arc::new(parking_lot::RwLock::new(back)));
        let q = Message::query(1, Question::new(n("www.examp.le"), RrType::A));
        let resp = srv.answer(&q).unwrap();
        assert_eq!(resp.answers[0].rdata, RData::Cname(n("edge.foob.ar")));
        assert_eq!(resp.answers[0].class, Class::In);
    }
}
