//! RFC 1035 §5 master-file text format (the subset registries publish).
//!
//! The measurement platform's stage I "downloads updated zone files daily
//! from registry operators" (paper §3.1). This module renders a [`Zone`]
//! in master-file text and parses it back: `$ORIGIN`/`$TTL` directives,
//! absolute and origin-relative owner names, `@` for the origin, and the
//! record types the study touches (`A`, `AAAA`, `NS`, `CNAME`, `SOA`,
//! `MX`, `TXT`). Comments (`;`) and blank lines are tolerated.

// Untrusted-input module: registry zone text is parsed with typed errors,
// never panics (enforced by dps-analyzer's panic-safety family and these
// lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::zone::Zone;
use dps_dns::{Name, RData, RrType, Soa};
use std::fmt::Write as _;

/// A zone-file parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Renders a zone in master-file format (deterministic order: SOA first,
/// then records sorted by owner and type).
pub fn format_zone(zone: &Zone) -> String {
    let mut out = String::new();
    let origin = zone.origin();
    let _ = writeln!(out, "$ORIGIN {origin}");
    let _ = writeln!(out, "$TTL 300");
    let soa = zone.soa();
    let _ = writeln!(
        out,
        "@ IN SOA {} {} {} {} {} {} {}",
        soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
    );
    let mut records: Vec<(String, String)> = zone
        .iter()
        .map(|(owner, rdata)| (owner.to_string(), render_rdata(rdata)))
        .collect();
    records.sort();
    for (owner, rendered) in records {
        let _ = writeln!(out, "{owner} IN {rendered}");
    }
    out
}

fn render_rdata(rdata: &RData) -> String {
    match rdata {
        RData::A(a) => format!("A {a}"),
        RData::Aaaa(a) => format!("AAAA {a}"),
        RData::Ns(n) => format!("NS {n}"),
        RData::Cname(n) => format!("CNAME {n}"),
        RData::Mx {
            preference,
            exchange,
        } => format!("MX {preference} {exchange}"),
        RData::Txt(strings) => {
            let mut s = String::from("TXT");
            for part in strings {
                let _ = write!(s, " \"{}\"", String::from_utf8_lossy(part));
            }
            s
        }
        RData::Soa(soa) => format!(
            "SOA {} {} {} {} {} {} {}",
            soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
        ),
        RData::Raw { rtype, data } => format!("TYPE{rtype} \\# {}", data.len()),
    }
}

/// Parses master-file text into a [`Zone`]. `default_origin` applies until
/// a `$ORIGIN` directive overrides it.
pub fn parse_zone(default_origin: &Name, text: &str) -> Result<Zone, ParseError> {
    let mut origin = default_origin.clone();
    let mut zone = Zone::new(default_origin.clone());
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };

    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&first, mut rest)) = tokens.split_first() else {
            continue;
        };
        match first {
            "$ORIGIN" => {
                let o = rest.first().ok_or_else(|| err(lineno, "missing origin"))?;
                origin = o
                    .parse()
                    .map_err(|e| err(lineno, &format!("bad origin: {e}")))?;
                if origin != *zone.origin() && zone.rrset_count() == 0 {
                    zone = Zone::new(origin.clone());
                }
            }
            "$TTL" => {
                rest.first().ok_or_else(|| err(lineno, "missing ttl"))?;
            }
            _ => {
                // owner [IN] TYPE RDATA…
                let owner = resolve_name(first, &origin)
                    .map_err(|e| err(lineno, &format!("bad owner: {e}")))?;
                if let Some((&"IN", after)) = rest.split_first() {
                    rest = after;
                }
                let Some((rtype, args)) = rest.split_first() else {
                    return Err(err(lineno, "missing type"));
                };
                let rdata = parse_rdata(rtype, args, &origin).map_err(|m| err(lineno, &m))?;
                if rdata.rtype() == RrType::Soa {
                    // SOA replaces the synthetic one; stored via dedicated API.
                    if let RData::Soa(_) = &rdata {
                        // Zone keeps its SOA internally; re-adding as a
                        // record would duplicate it at the apex, so skip
                        // (serials are not semantically used by the study).
                        continue;
                    }
                }
                zone.add(owner, rdata);
            }
        }
    }
    Ok(zone)
}

fn resolve_name(token: &str, origin: &Name) -> Result<Name, dps_dns::NameError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return format!("{absolute}.").parse();
    }
    // Relative: append the origin.
    let mut labels: Vec<&[u8]> = token.as_bytes().split(|&b| b == b'.').collect();
    let origin_labels: Vec<&[u8]> = origin.labels().collect();
    labels.extend(origin_labels);
    Name::from_labels(labels)
}

fn parse_rdata(rtype: &str, args: &[&str], origin: &Name) -> Result<RData, String> {
    // Checked field accessor: registry exports are untrusted text, so a
    // short line must surface as a parse error, never an index panic.
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .copied()
            .ok_or_else(|| format!("{rtype} needs {} fields, got {}", i + 1, args.len()))
    };
    match rtype {
        "A" => Ok(RData::A(
            arg(0)?.parse().map_err(|_| "bad IPv4".to_string())?,
        )),
        "AAAA" => Ok(RData::Aaaa(
            arg(0)?.parse().map_err(|_| "bad IPv6".to_string())?,
        )),
        "NS" => Ok(RData::Ns(
            resolve_name(arg(0)?, origin).map_err(|e| e.to_string())?,
        )),
        "CNAME" => Ok(RData::Cname(
            resolve_name(arg(0)?, origin).map_err(|e| e.to_string())?,
        )),
        "MX" => Ok(RData::Mx {
            preference: arg(0)?.parse().map_err(|_| "bad preference".to_string())?,
            exchange: resolve_name(arg(1)?, origin).map_err(|e| e.to_string())?,
        }),
        "TXT" => {
            arg(0)?;
            // Character-strings may contain spaces; re-join the tokens and
            // take the quoted segments (unquoted single tokens also pass).
            let joined = args.join(" ");
            let strings: Vec<Vec<u8>> = if joined.contains('"') {
                joined
                    .split('"')
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 1)
                    .map(|(_, part)| part.as_bytes().to_vec())
                    .collect()
            } else {
                args.iter().map(|a| a.as_bytes().to_vec()).collect()
            };
            if strings.is_empty() {
                return Err("empty TXT".to_string());
            }
            Ok(RData::Txt(strings))
        }
        "SOA" => Ok(RData::Soa(Soa {
            mname: resolve_name(arg(0)?, origin).map_err(|e| e.to_string())?,
            rname: resolve_name(arg(1)?, origin).map_err(|e| e.to_string())?,
            serial: arg(2)?.parse().map_err(|_| "bad serial".to_string())?,
            refresh: arg(3)?.parse().map_err(|_| "bad refresh".to_string())?,
            retry: arg(4)?.parse().map_err(|_| "bad retry".to_string())?,
            expire: arg(5)?.parse().map_err(|_| "bad expire".to_string())?,
            minimum: arg(6)?.parse().map_err(|_| "bad minimum".to_string())?,
        })),
        other => Err(format!("unsupported type {other}")),
    }
}

/// Extracts the distinct delegated names (owners of NS records below the
/// origin) from registry zone-file text — exactly what the measurement
/// platform turns a downloaded TLD zone file into.
pub fn delegated_names(origin: &Name, text: &str) -> Result<Vec<Name>, ParseError> {
    let zone = parse_zone(origin, text)?;
    let mut names: Vec<Name> = zone
        .iter()
        .filter_map(|(owner, rdata)| match rdata {
            RData::Ns(_) if owner != origin => Some(owner.clone()),
            _ => None,
        })
        .collect();
    // Sort by presentation form (wire-order sorts by label length first,
    // which surprises humans and tests alike).
    names.sort_by_key(|n| n.to_string());
    names.dedup();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::Class;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(n("examp.le"));
        z.add(n("examp.le"), RData::Ns(n("ns1.examp.le")));
        z.add(n("ns1.examp.le"), RData::A(Ipv4Addr::new(10, 0, 0, 53)));
        z.add(n("examp.le"), RData::A(Ipv4Addr::new(10, 0, 0, 1)));
        z.add(n("www.examp.le"), RData::Cname(n("edge.foob.ar")));
        z.add(
            n("examp.le"),
            RData::Mx {
                preference: 10,
                exchange: n("mx.examp.le"),
            },
        );
        z.add(n("examp.le"), RData::Txt(vec![b"v=spf1 -all".to_vec()]));
        z
    }

    #[test]
    fn roundtrip_preserves_records() {
        let zone = sample_zone();
        let text = format_zone(&zone);
        let back = parse_zone(&n("examp.le"), &text).unwrap();
        // Compare record multisets.
        let collect = |z: &Zone| {
            let mut v: Vec<String> = z.iter().map(|(o, r)| format!("{o} {r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(collect(&back), collect(&zone));
        assert_eq!(back.origin(), zone.origin());
    }

    #[test]
    fn relative_names_and_at_are_resolved() {
        let text = "\
$ORIGIN examp.le.
@ IN A 10.0.0.1
www IN CNAME @
deep.label IN A 10.0.0.9
";
        let zone = parse_zone(&n("examp.le"), text).unwrap();
        assert!(zone.get(&n("examp.le"), RrType::A).is_some());
        assert_eq!(
            zone.get(&n("www.examp.le"), RrType::Cname).unwrap()[0],
            RData::Cname(n("examp.le"))
        );
        assert!(zone.get(&n("deep.label.examp.le"), RrType::A).is_some());
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let text = "\
; registry export
$ORIGIN le.

examp IN NS ns1.examp.le. ; delegation
";
        let zone = parse_zone(&n("le"), text).unwrap();
        assert!(zone.get(&n("examp.le"), RrType::Ns).is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "$ORIGIN le.\nexamp IN A not-an-ip\n";
        let e = parse_zone(&n("le"), text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bad IPv4"), "{e}");

        let e = parse_zone(&n("le"), "examp IN WEIRD x\n").unwrap_err();
        assert!(e.message.contains("unsupported type"));

        let e = parse_zone(&n("le"), "examp IN MX 10\n").unwrap_err();
        assert!(e.message.contains("needs 2 fields"));
    }

    #[test]
    fn delegated_names_extracts_sld_list() {
        let text = "\
$ORIGIN com.
@ IN NS ns.nic.com.
d1 IN NS ns1.hostco0.net.
d1 IN NS ns2.hostco0.net.
d2 IN NS kate.ns.cloudflare.com.
cloudflare IN NS kate.ns.cloudflare.com.
";
        let names = delegated_names(&n("com"), text).unwrap();
        assert_eq!(names, vec![n("cloudflare.com"), n("d1.com"), n("d2.com")]);
    }

    #[test]
    fn formatted_zone_parses_with_served_lookup_semantics() {
        // A zone that went through text round-trip answers like the
        // original through the server machinery.
        use crate::server::AuthServer;
        use dps_dns::{Message, Question};
        let zone = sample_zone();
        let text = format_zone(&zone);
        let back = parse_zone(&n("examp.le"), &text).unwrap();

        let srv = AuthServer::new();
        srv.serve_zone(std::sync::Arc::new(parking_lot::RwLock::new(back)));
        let q = Message::query(1, Question::new(n("www.examp.le"), RrType::A));
        let resp = srv.answer(&q).unwrap();
        assert_eq!(resp.answers[0].rdata, RData::Cname(n("edge.foob.ar")));
        assert_eq!(resp.answers[0].class, Class::In);
    }
}
