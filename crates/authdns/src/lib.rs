//! # dps-authdns — authoritative serving and iterative resolution
//!
//! The DNS half of the simulated Internet:
//!
//! * [`zone`] — in-memory zones with RRsets, delegation points (zone cuts)
//!   and RFC 1034 §4.3.2-style lookup semantics (answers, CNAMEs,
//!   referrals, NXDOMAIN vs NODATA, empty non-terminals),
//! * [`catalog`] — the global collection of zones with the addresses of the
//!   name servers that serve each of them,
//! * [`server`] — turns a set of zones into a request handler bound on the
//!   [`dps_netsim::Network`],
//! * [`zonefile`] — RFC 1035 §5 master-file text (what registries publish
//!   and the measurement platform parses),
//! * [`health`] — a per-nameserver circuit breaker (consecutive-failure
//!   trip, half-open probing) consulted by server selection,
//! * [`resolver`] — an iterative resolver that starts from root hints,
//!   chases referrals and CNAME chains, retries over lossy links (with
//!   exponential backoff, hedged second attempts, and a per-cause failure
//!   taxonomy), and a
//!   [`resolver::DirectResolver`] that evaluates the same semantics
//!   directly against the catalog (the bulk path for 10^8-query sweeps).
//!
//! The equivalence of the wire path and the bulk path is asserted by tests
//! in `tests/equivalence.rs`.

pub mod catalog;
pub mod health;
pub mod resolver;
pub mod server;
pub mod zone;
pub mod zonefile;

pub use catalog::Catalog;
pub use health::{HealthConfig, HealthMetrics, HealthTracker, ServerHealth};
pub use resolver::{
    DirectResolver, ExchangeOutcome, FailureCause, Resolution, ResolveError, Resolver,
    ResolverConfig,
};
pub use server::AuthServer;
pub use zone::{LookupOutcome, Zone};
