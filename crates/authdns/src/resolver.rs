//! Iterative resolution: the wire path and the bulk (direct) path.
//!
//! [`Resolver`] talks real (simulated) UDP: it starts from root hints,
//! chases referrals using glue, restarts on out-of-zone CNAMEs, validates
//! transaction ids, retries over loss, and rotates servers — the behaviour
//! an active measurement platform needs on the open Internet.
//!
//! [`DirectResolver`] evaluates the *same* delegation-following semantics
//! against the [`Catalog`] without encoding a single byte. The measurement
//! pipeline uses it for full-zone daily sweeps (10⁸ lookups), after tests
//! establish it agrees with the wire path.

use crate::catalog::Catalog;
use crate::health::HealthTracker;
use crate::zone::LookupOutcome;
use dps_dns::{Message, Name, Question, RData, Rcode, Record, RrType, WireError};
use dps_netsim::{Network, RecvError, Socket};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::net::IpAddr;
use std::sync::Arc;

/// Tunables for the wire resolver.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Per-attempt receive timeout (virtual µs).
    pub attempt_timeout_us: u64,
    /// Send attempts per server before failing over.
    pub retries: u32,
    /// Maximum CNAME restarts per resolution.
    pub max_indirections: u32,
    /// Maximum referral hops per restart.
    pub max_referrals: u32,
    /// Base of the exponential backoff between retry rounds (virtual µs);
    /// round `n` sleeps `base << (n-1)`, jittered. `0` disables backoff.
    pub backoff_base_us: u64,
    /// Cap on a single backoff sleep.
    pub backoff_max_us: u64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]` (own RNG stream, so fault
    /// sequences stay comparable across configs).
    pub backoff_jitter: f64,
    /// Hedging threshold: if a reply is this late (virtual µs), the same
    /// query is sent to a second server and the first valid answer wins.
    /// `0` disables hedging.
    pub hedge_after_us: u64,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        Self {
            attempt_timeout_us: 500_000,
            retries: 3,
            max_indirections: 8,
            max_referrals: 12,
            backoff_base_us: 0,
            backoff_max_us: 2_000_000,
            backoff_jitter: 0.0,
            hedge_after_us: 0,
        }
    }
}

impl ResolverConfig {
    /// A fault-tolerant preset for supervised sweeps: exponential backoff
    /// (50 ms base, 25% jitter) and hedged second attempts for stragglers.
    pub fn resilient() -> Self {
        Self {
            backoff_base_us: 50_000,
            backoff_max_us: 2_000_000,
            backoff_jitter: 0.25,
            hedge_after_us: 150_000,
            ..Self::default()
        }
    }
}

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Every server/retry combination timed out.
    Timeout,
    /// Every queried server bounced an ICMP-style unreachable notice.
    Unreachable,
    /// Replies arrived before the deadline but none survived validation
    /// (bit flips, transaction-id mismatches, unparsable wire data).
    CorruptReply,
    /// A server answered with a non-recoverable RCODE (SERVFAIL, REFUSED…).
    ServerFailure(Rcode),
    /// More CNAME restarts than allowed.
    TooManyIndirections,
    /// More referral hops than allowed (delegation loop).
    TooManyReferrals,
    /// A referral gave no usable name servers.
    NoNameservers,
    /// The response was malformed beyond use.
    Malformed(WireError),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "all servers timed out"),
            Self::Unreachable => write!(f, "all servers unreachable"),
            Self::CorruptReply => write!(f, "replies arrived but none survived validation"),
            Self::ServerFailure(rc) => write!(f, "server failure: {rc}"),
            Self::TooManyIndirections => write!(f, "CNAME chain too long"),
            Self::TooManyReferrals => write!(f, "referral chain too long"),
            Self::NoNameservers => write!(f, "referral without usable name servers"),
            Self::Malformed(e) => write!(f, "malformed response: {e}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// The coarse failure taxonomy used by quality accounting (one counter per
/// variant, stable across [`ResolveError`] refinements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// Silence until the deadline.
    Timeout,
    /// ICMP-style unreachable.
    Unreachable,
    /// Corrupt, truncated, or otherwise invalid replies.
    Corrupt,
    /// An explicit error RCODE (SERVFAIL, REFUSED…).
    ServerFailure,
    /// Everything else (delegation loops, missing nameservers…).
    Other,
}

impl FailureCause {
    /// Stable label, used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Timeout => "timeout",
            Self::Unreachable => "unreachable",
            Self::Corrupt => "corrupt",
            Self::ServerFailure => "servfail",
            Self::Other => "other",
        }
    }
}

impl ResolveError {
    /// Maps the error onto the coarse failure taxonomy.
    pub fn cause(&self) -> FailureCause {
        match self {
            Self::Timeout => FailureCause::Timeout,
            Self::Unreachable => FailureCause::Unreachable,
            Self::CorruptReply | Self::Malformed(_) => FailureCause::Corrupt,
            Self::ServerFailure(_) => FailureCause::ServerFailure,
            Self::TooManyIndirections | Self::TooManyReferrals | Self::NoNameservers => {
                FailureCause::Other
            }
        }
    }

    /// True if a later retry could plausibly succeed: network-induced
    /// failures are transient, structural ones (delegation loops, CNAME
    /// chains too long) are not. `NoNameservers` counts as transient
    /// because a blacked-out parent zone produces it for glueless
    /// delegations.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Timeout
            | Self::Unreachable
            | Self::CorruptReply
            | Self::ServerFailure(_)
            | Self::Malformed(_)
            | Self::NoNameservers => true,
            Self::TooManyIndirections | Self::TooManyReferrals => false,
        }
    }
}

/// The result of a successful resolution.
///
/// `answers` holds the full chain in resolution order: every CNAME record
/// traversed (the paper stores "CNAMEs and their full expansions") followed
/// by the records of the requested type, if any. An authoritative *negative*
/// answer (NXDOMAIN / NODATA) is a success at this level; check `rcode` and
/// `answers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// Final response code (NoError or NxDomain).
    pub rcode: Rcode,
    /// CNAME chain + final RRset, in chase order.
    pub answers: Vec<Record>,
    /// Virtual time the resolution took (wire path only; 0 for direct).
    pub elapsed_us: u64,
}

impl Resolution {
    /// Records of the requested type in the answer chain.
    pub fn records_of(&self, rtype: RrType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rtype() == rtype)
    }

    /// The CNAME expansion: each target name in chase order.
    pub fn cname_chain(&self) -> Vec<&Name> {
        self.answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t),
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Wire path
// ---------------------------------------------------------------------------

/// An iterative resolver over the simulated network.
pub struct Resolver {
    socket: Socket,
    root_hints: Vec<IpAddr>,
    config: ResolverConfig,
    health: Option<Arc<HealthTracker>>,
    /// Jitter RNG, deliberately separate from the socket's fault RNG so
    /// enabling backoff does not perturb the simulated fault sequence.
    rng: SmallRng,
    next_id: u16,
    sent: u64,
    hedges: u64,
}

impl Resolver {
    /// Creates a resolver sending from `src`; `stream` keeps parallel
    /// resolvers deterministic (see [`Network::socket`]).
    pub fn new(net: &Arc<Network>, src: IpAddr, stream: u64, root_hints: Vec<IpAddr>) -> Self {
        let jitter_seed = net
            .seed()
            .wrapping_add(stream.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ 0x0005_EED0_FBAC_C0FF;
        Self {
            socket: net.socket(src, stream),
            root_hints,
            config: ResolverConfig::default(),
            health: None,
            rng: SmallRng::seed_from_u64(jitter_seed),
            next_id: 1,
            sent: 0,
            hedges: 0,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ResolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a (shared) per-nameserver health tracker; server selection
    /// will deprioritise servers whose circuit breaker is open.
    pub fn with_health(mut self, health: Arc<HealthTracker>) -> Self {
        self.health = Some(health);
        self
    }

    /// The attached health tracker, if any.
    pub fn health(&self) -> Option<&Arc<HealthTracker>> {
        self.health.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Virtual time consumed by this resolver so far.
    pub fn now_us(&self) -> u64 {
        self.socket.now_us()
    }

    /// UDP queries sent by this resolver so far (including retries).
    pub fn queries_sent(&self) -> u64 {
        self.sent
    }

    /// Hedge datagrams sent so far.
    pub fn hedges_sent(&self) -> u64 {
        self.hedges
    }

    /// Advances this resolver's virtual clock without sending (a pause
    /// between supervised retry passes).
    pub fn sleep_us(&mut self, dt_us: u64) {
        self.socket.sleep(dt_us);
    }

    /// Sleeps the exponential-backoff delay for retry round `round`
    /// (1-based; round 0 is the initial attempt and never sleeps).
    pub fn backoff_sleep(&mut self, round: u32) {
        let base = self.config.backoff_base_us;
        if base == 0 || round == 0 {
            return;
        }
        let exp = base
            .checked_shl(round.saturating_sub(1).min(20))
            .unwrap_or(u64::MAX);
        let mut delay = exp.min(self.config.backoff_max_us);
        let jitter = self.config.backoff_jitter.clamp(0.0, 1.0);
        if jitter > 0.0 {
            let factor = 1.0 + jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
            delay = ((delay as f64) * factor) as u64;
        }
        self.socket.sleep(delay);
    }

    /// Resolves `(qname, qtype)` iteratively from the root.
    pub fn resolve(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let started = self.socket.now_us();
        let mut chain: Vec<Record> = Vec::new();
        let mut current = qname.clone();

        for _ in 0..=self.config.max_indirections {
            let resp = self.resolve_once(&current, qtype, 0)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => {
                    chain.extend(resp.answers);
                    return Ok(Resolution {
                        rcode: Rcode::NxDomain,
                        answers: chain,
                        elapsed_us: self.socket.now_us() - started,
                    });
                }
                rc => return Err(ResolveError::ServerFailure(rc)),
            }

            chain.extend(resp.answers.iter().cloned());

            // Follow the CNAME chain inside this response to find where we
            // stand now.
            let mut tip = current.clone();
            loop {
                let next = resp.answers.iter().find_map(|r| match &r.rdata {
                    RData::Cname(t) if r.name == tip => Some(t.clone()),
                    _ => None,
                });
                match next {
                    Some(t) => tip = t,
                    None => break,
                }
            }

            let have_final = qtype == RrType::Cname
                || resp
                    .answers
                    .iter()
                    .any(|r| r.name == tip && r.rtype() == qtype);
            if have_final || tip == current {
                // Done: either we have the records, or an authoritative
                // empty answer (NODATA).
                return Ok(Resolution {
                    rcode: Rcode::NoError,
                    answers: chain,
                    elapsed_us: self.socket.now_us() - started,
                });
            }
            // Restart at the alias target.
            current = tip;
        }
        Err(ResolveError::TooManyIndirections)
    }

    /// One referral descent from the root for a single owner name. `depth`
    /// guards nested glue resolutions.
    fn resolve_once(
        &mut self,
        qname: &Name,
        qtype: RrType,
        depth: u32,
    ) -> Result<Message, ResolveError> {
        if depth > 2 {
            return Err(ResolveError::NoNameservers);
        }
        let mut servers = self.root_hints.clone();
        for _ in 0..=self.config.max_referrals {
            let resp = self.query_any(&servers, qname, qtype)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                _ => return Ok(resp),
            }
            if !resp.answers.is_empty() || resp.header.aa {
                return Ok(resp);
            }
            // Referral: gather NS targets + glue.
            let ns_targets: Vec<Name> = resp
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();
            if ns_targets.is_empty() {
                return Err(ResolveError::NoNameservers);
            }
            let mut next: Vec<IpAddr> = resp
                .additionals
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::A(a) if ns_targets.contains(&r.name) => Some(IpAddr::V4(*a)),
                    _ => None,
                })
                .collect();
            if next.is_empty() {
                // Glueless delegation: resolve the first NS names ourselves.
                for target in ns_targets.iter().take(2) {
                    if let Ok(m) = self.resolve_once(target, RrType::A, depth + 1) {
                        next.extend(m.answers.iter().filter_map(|r| match &r.rdata {
                            RData::A(a) if r.name == *target => Some(IpAddr::V4(*a)),
                            _ => None,
                        }));
                    }
                }
            }
            if next.is_empty() {
                return Err(ResolveError::NoNameservers);
            }
            servers = next;
        }
        Err(ResolveError::TooManyReferrals)
    }

    /// Sends to each server in turn with retries (exponential backoff
    /// between rounds, health-aware ordering, optional hedging), returning
    /// the first validated response.
    fn query_any(
        &mut self,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        let mut last_err = ResolveError::Timeout;
        for round in 0..self.config.retries.max(1) {
            self.backoff_sleep(round);
            let ordered = match &self.health {
                Some(h) => h.order(servers, self.socket.now_us()),
                None => servers.to_vec(),
            };
            for (i, &server) in ordered.iter().enumerate() {
                let hedge = if self.config.hedge_after_us > 0 {
                    ordered.get(i + 1).copied()
                } else {
                    None
                };
                match self.exchange_hedged(server, hedge, qname, qtype) {
                    Ok(out) => {
                        if let Some(h) = &self.health {
                            h.record_success(out.responder);
                        }
                        return Ok(out.message);
                    }
                    Err(e) => {
                        if let Some(h) = self.health.clone() {
                            h.record_failure(server, self.socket.now_us());
                        }
                        last_err = e;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// One validated request/response exchange: a single attempt against a
    /// single server within `attempt_timeout_us`. Retry and failover policy
    /// stay with the caller, which lets services with their own scheduling
    /// (e.g. a caching recursor) reuse the wire handling — id allocation,
    /// response validation, truncation detection — without adopting this
    /// resolver's descent loop.
    pub fn exchange(
        &mut self,
        server: IpAddr,
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        self.exchange_hedged(server, None, qname, qtype)
            .map(|out| out.message)
    }

    /// Like [`exchange`](Self::exchange), but if `hedge` is given and no
    /// reply arrived within `config.hedge_after_us`, the *same* query is
    /// sent to the hedge server and the first valid answer (from either)
    /// wins — the classic tail-latency mitigation. Failure taxonomy:
    /// unreachable notices from every queried server yield
    /// [`ResolveError::Unreachable`]; invalid datagrams that arrive without
    /// a valid one yield [`ResolveError::CorruptReply`]; silence yields
    /// [`ResolveError::Timeout`].
    pub fn exchange_hedged(
        &mut self,
        server: IpAddr,
        hedge: Option<IpAddr>,
        qname: &Name,
        qtype: RrType,
    ) -> Result<ExchangeOutcome, ResolveError> {
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let id = self.next_id;
        let query = Message::query(id, Question::new(qname.clone(), qtype));
        let bytes = match query.to_bytes() {
            Ok(b) => b,
            Err(e) => return Err(ResolveError::Malformed(e)),
        };
        self.socket.drain();
        self.socket.send_to(server, &bytes);
        self.sent += 1;

        let deadline_budget = self.config.attempt_timeout_us;
        let hedge_at = match hedge {
            Some(_)
                if self.config.hedge_after_us > 0
                    && self.config.hedge_after_us < deadline_budget =>
            {
                Some(self.config.hedge_after_us)
            }
            _ => None,
        };
        let start = self.socket.now_us();
        let mut hedge_sent = false;
        let mut saw_garbage = false;
        let mut primary_dead = false;
        let mut hedge_dead = false;
        loop {
            let spent = self.socket.now_us() - start;
            if spent >= deadline_budget {
                return Err(if saw_garbage {
                    ResolveError::CorruptReply
                } else {
                    ResolveError::Timeout
                });
            }
            // Wake up at the hedge threshold if it has not fired yet.
            let mut wait = deadline_budget - spent;
            if let Some(at) = hedge_at.filter(|_| !hedge_sent) {
                if spent >= at {
                    let h = hedge.expect("hedge_at implies hedge");
                    self.socket.send_to(h, &bytes);
                    self.sent += 1;
                    self.hedges += 1;
                    hedge_sent = true;
                } else {
                    wait = wait.min(at - spent);
                }
            }
            match self.socket.recv(wait) {
                Ok((from, data)) => {
                    let expected = from == server || (hedge_sent && Some(from) == hedge);
                    if !expected {
                        continue;
                    }
                    match Message::parse(&data) {
                        Ok(m)
                            if m.header.qr
                                && m.header.id == id
                                && m.questions.first().map(|q| (&q.qname, q.qtype))
                                    == Some((qname, qtype)) =>
                        {
                            if m.header.tc {
                                return Err(ResolveError::Malformed(WireError::TruncatedResponse));
                            }
                            return Ok(ExchangeOutcome {
                                message: m,
                                responder: from,
                                hedged: hedge_sent,
                            });
                        }
                        // Wrong id / corrupted / unparsable: remember the
                        // garbage, keep listening until the deadline.
                        _ => {
                            saw_garbage = true;
                            continue;
                        }
                    }
                }
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Unreachable(from)) => {
                    if from == server {
                        primary_dead = true;
                    }
                    if hedge_sent && Some(from) == hedge {
                        hedge_dead = true;
                    }
                    // Fast-fail once every path we actually queried bounced.
                    if primary_dead && (!hedge_sent || hedge_dead) {
                        return Err(ResolveError::Unreachable);
                    }
                }
            }
        }
    }
}

/// A successful [`Resolver::exchange_hedged`]: the validated message, who
/// sent it, and whether a hedge datagram went out during the exchange.
#[derive(Debug, Clone)]
pub struct ExchangeOutcome {
    /// The validated response.
    pub message: Message,
    /// The server whose answer won.
    pub responder: IpAddr,
    /// True if the hedge fired before the answer arrived.
    pub hedged: bool,
}

// ---------------------------------------------------------------------------
// Bulk path
// ---------------------------------------------------------------------------

/// Delegation-following resolution evaluated directly on the [`Catalog`].
pub struct DirectResolver {
    catalog: Arc<Catalog>,
    max_indirections: u32,
    max_referrals: u32,
}

impl DirectResolver {
    /// Creates a direct resolver over `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self {
            catalog,
            max_indirections: 8,
            max_referrals: 12,
        }
    }

    /// Resolves `(qname, qtype)`, producing the same `Resolution` the wire
    /// path would (with zero elapsed time).
    pub fn resolve(&self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let mut chain: Vec<Record> = Vec::new();
        let mut current = qname.clone();

        'restart: for _ in 0..=self.max_indirections {
            // Descend from the root by following delegations.
            let Some((mut origin, mut zone)) = self.catalog.find_zone(&Name::root()) else {
                return Err(ResolveError::NoNameservers);
            };
            // Fast path: jump straight to the deepest registered zone; the
            // catalog only contains properly delegated zones (asserted by the
            // wire/direct equivalence tests).
            if let Some((o, z)) = self.catalog.find_zone(&current) {
                origin = o;
                zone = z;
            }
            let _ = origin;

            for _ in 0..=self.max_referrals {
                let outcome = zone.read().lookup(&current, qtype);
                match outcome {
                    LookupOutcome::Answer(recs) => {
                        chain.extend(recs);
                        return Ok(Resolution {
                            rcode: Rcode::NoError,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                    LookupOutcome::Cname(rec) => {
                        let target = match &rec.rdata {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!(),
                        };
                        chain.push(rec);
                        current = target;
                        continue 'restart;
                    }
                    LookupOutcome::Referral { ns, .. } => {
                        // Move into the child zone if it is registered.
                        let cut = ns
                            .first()
                            .map(|r| r.name.clone())
                            .ok_or(ResolveError::NoNameservers)?;
                        match self.catalog.zone(&cut) {
                            Some(z) => zone = z,
                            None => return Err(ResolveError::NoNameservers),
                        }
                    }
                    LookupOutcome::NoData => {
                        return Ok(Resolution {
                            rcode: Rcode::NoError,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                    LookupOutcome::NxDomain => {
                        return Ok(Resolution {
                            rcode: Rcode::NxDomain,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                }
            }
            return Err(ResolveError::TooManyReferrals);
        }
        Err(ResolveError::TooManyIndirections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::AuthServer;
    use crate::zone::Zone;
    use dps_dns::Class;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse::<Ipv4Addr>().unwrap())
    }

    /// Builds a tiny world: root, `le` TLD, `examp.le` customer zone hosted
    /// on a DPS server that also serves `foob.ar` with the CNAME target.
    fn build_world(net: &Arc<Network>) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());

        let root_addr = ip("10.255.0.1");
        let tld_addr = ip("10.255.1.1");
        let dps_addr = ip("10.255.2.1");

        let mut root = Zone::new(Name::root());
        root.add(n("le"), RData::Ns(n("ns.le")));
        root.add(n("ns.le"), a("10.255.1.1"));
        root.add(n("ar"), RData::Ns(n("ns.ar")));
        root.add(n("ns.ar"), a("10.255.1.1"));
        let root_handle = catalog.add_zone(root, vec![root_addr]);

        let mut le = Zone::new(n("le"));
        le.add(n("examp.le"), RData::Ns(n("ns.foob.ar")));
        // Glueless: ns.foob.ar must be resolved via .ar.
        let le_handle = catalog.add_zone(le, vec![tld_addr]);

        let mut ar = Zone::new(n("ar"));
        ar.add(n("foob.ar"), RData::Ns(n("ns.foob.ar")));
        ar.add(n("ns.foob.ar"), a("10.255.2.1"));
        let ar_handle = catalog.add_zone(ar, vec![tld_addr]);

        let mut examp = Zone::new(n("examp.le"));
        examp.add(n("examp.le"), a("203.0.113.10"));
        examp.add(n("www.examp.le"), RData::Cname(n("edge.foob.ar")));
        examp.add(n("examp.le"), RData::Ns(n("ns.foob.ar")));
        let examp_handle = catalog.add_zone(examp, vec![dps_addr]);

        let mut foob = Zone::new(n("foob.ar"));
        foob.add(n("edge.foob.ar"), a("198.51.100.7"));
        foob.add(n("foob.ar"), RData::Ns(n("ns.foob.ar")));
        foob.add(n("ns.foob.ar"), a("10.255.2.1"));
        let foob_handle = catalog.add_zone(foob, vec![dps_addr]);

        let root_srv = AuthServer::new();
        root_srv.serve_zone(root_handle);
        root_srv.bind(net, root_addr);

        let tld_srv = AuthServer::new();
        tld_srv.serve_zone(le_handle);
        tld_srv.serve_zone(ar_handle);
        tld_srv.bind(net, tld_addr);

        let dps_srv = AuthServer::new();
        dps_srv.serve_zone(examp_handle);
        dps_srv.serve_zone(foob_handle);
        dps_srv.bind(net, dps_addr);

        catalog.set_root_hints(vec![root_addr]);
        catalog
    }

    fn wire_resolver(net: &Arc<Network>, catalog: &Catalog) -> Resolver {
        Resolver::new(net, ip("172.16.0.1"), 0, catalog.root_hints())
    }

    #[test]
    fn wire_resolves_apex_a() {
        let net = Network::new(11);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("examp.le"), RrType::A).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.records_of(RrType::A).count(), 1);
        assert!(res.elapsed_us > 0);
    }

    #[test]
    fn wire_follows_cname_across_zones() {
        let net = Network::new(12);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("www.examp.le"), RrType::A).unwrap();
        let chain = res.cname_chain();
        assert_eq!(chain, vec![&n("edge.foob.ar")]);
        let a_rec = res.records_of(RrType::A).next().unwrap();
        assert_eq!(a_rec.rdata, a("198.51.100.7"));
    }

    #[test]
    fn wire_nxdomain_propagates() {
        let net = Network::new(13);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("missing.examp.le"), RrType::A).unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn wire_nodata_is_noerror_empty() {
        let net = Network::new(14);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("examp.le"), RrType::Mx).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert!(res.records_of(RrType::Mx).next().is_none());
    }

    #[test]
    fn wire_survives_heavy_loss() {
        let net = Network::new(15);
        let catalog = build_world(&net);
        net.set_faults(dps_netsim::FaultProfile {
            loss: 0.3,
            ..Default::default()
        });
        let mut r = wire_resolver(&net, &catalog).with_config(ResolverConfig {
            retries: 8,
            ..Default::default()
        });
        let res = r.resolve(&n("www.examp.le"), RrType::A).unwrap();
        assert_eq!(res.records_of(RrType::A).count(), 1);
    }

    #[test]
    fn wire_reports_unbound_server_as_unreachable() {
        let net = Network::new(16);
        let catalog = Arc::new(Catalog::new());
        catalog.set_root_hints(vec![ip("10.255.0.99")]); // nothing bound
        let mut r = Resolver::new(&net, ip("172.16.0.1"), 0, catalog.root_hints()).with_config(
            ResolverConfig {
                retries: 2,
                attempt_timeout_us: 200_000,
                ..Default::default()
            },
        );
        let started = r.now_us();
        assert_eq!(
            r.resolve(&n("x.y"), RrType::A),
            Err(ResolveError::Unreachable)
        );
        // ICMP fast-fail: well under the 2 × 200 ms worth of timeouts.
        assert!(r.now_us() - started < 400_000, "took {}", r.now_us());
    }

    #[test]
    fn wire_times_out_on_blackout() {
        let net = Network::new(16);
        let catalog = build_world(&net);
        net.set_chaos(dps_netsim::ChaosSchedule::new().blackout(None, 0, u64::MAX));
        let mut r = wire_resolver(&net, &catalog).with_config(ResolverConfig {
            retries: 2,
            attempt_timeout_us: 10_000,
            ..Default::default()
        });
        // A blackout is silence, not an ICMP bounce.
        assert_eq!(r.resolve(&n("x.y"), RrType::A), Err(ResolveError::Timeout));
    }

    #[test]
    fn wire_classifies_pure_garbage_as_corrupt_reply() {
        let net = Network::new(19);
        let addr = ip("10.255.0.1");
        // A server that answers every query with noise.
        net.bind_service(addr, Arc::new(|_, _| Some(vec![0xFF; 24])));
        let catalog = Arc::new(Catalog::new());
        catalog.set_root_hints(vec![addr]);
        let mut r = Resolver::new(&net, ip("172.16.0.1"), 0, catalog.root_hints()).with_config(
            ResolverConfig {
                retries: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            r.resolve(&n("x.y"), RrType::A),
            Err(ResolveError::CorruptReply)
        );
    }

    #[test]
    fn backoff_advances_clock_without_changing_answers() {
        let net = Network::new(20);
        let catalog = build_world(&net);
        net.set_faults(dps_netsim::FaultProfile {
            loss: 0.3,
            ..Default::default()
        });
        let mut r = wire_resolver(&net, &catalog).with_config(ResolverConfig {
            retries: 8,
            backoff_base_us: 50_000,
            backoff_jitter: 0.25,
            ..Default::default()
        });
        let res = r.resolve(&n("www.examp.le"), RrType::A).unwrap();
        assert_eq!(res.records_of(RrType::A).count(), 1);
    }

    #[test]
    fn hedged_exchange_wins_via_the_second_server() {
        let net = Network::new(21);
        let catalog = build_world(&net);
        let dead = ip("10.255.9.9"); // bound to nothing — but blacked out,
                                     // so it stays silent instead of bouncing.
        net.set_chaos(dps_netsim::ChaosSchedule::new().blackout(Some(dead), 0, u64::MAX));
        let mut r = wire_resolver(&net, &catalog).with_config(ResolverConfig {
            hedge_after_us: 100_000,
            ..Default::default()
        });
        let root = catalog.root_hints()[0];
        let out = r
            .exchange_hedged(dead, Some(root), &n("le"), RrType::Ns)
            .unwrap();
        assert!(out.hedged);
        assert_eq!(out.responder, root);
        assert_eq!(r.hedges_sent(), 1);
    }

    #[test]
    fn health_tracker_deprioritises_a_dead_server() {
        use crate::health::{HealthConfig, HealthTracker};
        let net = Network::new(22);
        let catalog = build_world(&net);
        let tracker = Arc::new(HealthTracker::new(HealthConfig {
            failure_threshold: 2,
            open_duration_us: 60_000_000,
        }));
        // Blackout one of two root replicas: after the breaker trips, the
        // resolver should stop burning timeouts on it.
        let dead = ip("10.255.0.77");
        net.set_chaos(dps_netsim::ChaosSchedule::new().blackout(Some(dead), 0, u64::MAX));
        let mut r = Resolver::new(
            &net,
            ip("172.16.0.1"),
            0,
            vec![dead, catalog.root_hints()[0]],
        )
        .with_health(Arc::clone(&tracker));
        for _ in 0..4 {
            r.resolve(&n("examp.le"), RrType::A).unwrap();
        }
        assert_eq!(tracker.trips(), 1);
        assert!(tracker.skips() > 0, "open breaker never skipped");
    }

    #[test]
    fn direct_matches_wire_on_all_cases() {
        let net = Network::new(17);
        let catalog = build_world(&net);
        let direct = DirectResolver::new(Arc::clone(&catalog));
        let mut wire = wire_resolver(&net, &catalog);
        for (qname, qtype) in [
            ("examp.le", RrType::A),
            ("examp.le", RrType::Ns),
            ("www.examp.le", RrType::A),
            ("missing.examp.le", RrType::A),
            ("examp.le", RrType::Mx),
            ("edge.foob.ar", RrType::A),
        ] {
            let d = direct.resolve(&n(qname), qtype).unwrap();
            let w = wire.resolve(&n(qname), qtype).unwrap();
            assert_eq!(d.rcode, w.rcode, "{qname} {qtype}");
            assert_eq!(d.answers, w.answers, "{qname} {qtype}");
        }
    }

    #[test]
    fn direct_ns_answer_contains_records() {
        let net = Network::new(18);
        let catalog = build_world(&net);
        let direct = DirectResolver::new(catalog);
        let res = direct.resolve(&n("examp.le"), RrType::Ns).unwrap();
        let ns: Vec<_> = res.records_of(RrType::Ns).collect();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].rdata, RData::Ns(n("ns.foob.ar")));
        assert_eq!(ns[0].class, Class::In);
    }
}
