//! Iterative resolution: the wire path and the bulk (direct) path.
//!
//! [`Resolver`] talks real (simulated) UDP: it starts from root hints,
//! chases referrals using glue, restarts on out-of-zone CNAMEs, validates
//! transaction ids, retries over loss, and rotates servers — the behaviour
//! an active measurement platform needs on the open Internet.
//!
//! [`DirectResolver`] evaluates the *same* delegation-following semantics
//! against the [`Catalog`] without encoding a single byte. The measurement
//! pipeline uses it for full-zone daily sweeps (10⁸ lookups), after tests
//! establish it agrees with the wire path.

use crate::catalog::Catalog;
use crate::zone::LookupOutcome;
use dps_dns::{Message, Name, Question, RData, Rcode, Record, RrType, WireError};
use dps_netsim::{Network, Socket};
use std::fmt;
use std::net::IpAddr;
use std::sync::Arc;

/// Tunables for the wire resolver.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Per-attempt receive timeout (virtual µs).
    pub attempt_timeout_us: u64,
    /// Send attempts per server before failing over.
    pub retries: u32,
    /// Maximum CNAME restarts per resolution.
    pub max_indirections: u32,
    /// Maximum referral hops per restart.
    pub max_referrals: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        Self {
            attempt_timeout_us: 500_000,
            retries: 3,
            max_indirections: 8,
            max_referrals: 12,
        }
    }
}

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Every server/retry combination timed out.
    Timeout,
    /// A server answered with a non-recoverable RCODE (SERVFAIL, REFUSED…).
    ServerFailure(Rcode),
    /// More CNAME restarts than allowed.
    TooManyIndirections,
    /// More referral hops than allowed (delegation loop).
    TooManyReferrals,
    /// A referral gave no usable name servers.
    NoNameservers,
    /// The response was malformed beyond use.
    Malformed(WireError),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "all servers timed out"),
            Self::ServerFailure(rc) => write!(f, "server failure: {rc}"),
            Self::TooManyIndirections => write!(f, "CNAME chain too long"),
            Self::TooManyReferrals => write!(f, "referral chain too long"),
            Self::NoNameservers => write!(f, "referral without usable name servers"),
            Self::Malformed(e) => write!(f, "malformed response: {e}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// The result of a successful resolution.
///
/// `answers` holds the full chain in resolution order: every CNAME record
/// traversed (the paper stores "CNAMEs and their full expansions") followed
/// by the records of the requested type, if any. An authoritative *negative*
/// answer (NXDOMAIN / NODATA) is a success at this level; check `rcode` and
/// `answers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// Final response code (NoError or NxDomain).
    pub rcode: Rcode,
    /// CNAME chain + final RRset, in chase order.
    pub answers: Vec<Record>,
    /// Virtual time the resolution took (wire path only; 0 for direct).
    pub elapsed_us: u64,
}

impl Resolution {
    /// Records of the requested type in the answer chain.
    pub fn records_of(&self, rtype: RrType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rtype() == rtype)
    }

    /// The CNAME expansion: each target name in chase order.
    pub fn cname_chain(&self) -> Vec<&Name> {
        self.answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t),
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Wire path
// ---------------------------------------------------------------------------

/// An iterative resolver over the simulated network.
pub struct Resolver {
    socket: Socket,
    root_hints: Vec<IpAddr>,
    config: ResolverConfig,
    next_id: u16,
    sent: u64,
}

impl Resolver {
    /// Creates a resolver sending from `src`; `stream` keeps parallel
    /// resolvers deterministic (see [`Network::socket`]).
    pub fn new(net: &Arc<Network>, src: IpAddr, stream: u64, root_hints: Vec<IpAddr>) -> Self {
        Self {
            socket: net.socket(src, stream),
            root_hints,
            config: ResolverConfig::default(),
            next_id: 1,
            sent: 0,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ResolverConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Virtual time consumed by this resolver so far.
    pub fn now_us(&self) -> u64 {
        self.socket.now_us()
    }

    /// UDP queries sent by this resolver so far (including retries).
    pub fn queries_sent(&self) -> u64 {
        self.sent
    }

    /// Resolves `(qname, qtype)` iteratively from the root.
    pub fn resolve(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let started = self.socket.now_us();
        let mut chain: Vec<Record> = Vec::new();
        let mut current = qname.clone();

        for _ in 0..=self.config.max_indirections {
            let resp = self.resolve_once(&current, qtype, 0)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => {
                    chain.extend(resp.answers);
                    return Ok(Resolution {
                        rcode: Rcode::NxDomain,
                        answers: chain,
                        elapsed_us: self.socket.now_us() - started,
                    });
                }
                rc => return Err(ResolveError::ServerFailure(rc)),
            }

            chain.extend(resp.answers.iter().cloned());

            // Follow the CNAME chain inside this response to find where we
            // stand now.
            let mut tip = current.clone();
            loop {
                let next = resp.answers.iter().find_map(|r| match &r.rdata {
                    RData::Cname(t) if r.name == tip => Some(t.clone()),
                    _ => None,
                });
                match next {
                    Some(t) => tip = t,
                    None => break,
                }
            }

            let have_final = qtype == RrType::Cname
                || resp
                    .answers
                    .iter()
                    .any(|r| r.name == tip && r.rtype() == qtype);
            if have_final || tip == current {
                // Done: either we have the records, or an authoritative
                // empty answer (NODATA).
                return Ok(Resolution {
                    rcode: Rcode::NoError,
                    answers: chain,
                    elapsed_us: self.socket.now_us() - started,
                });
            }
            // Restart at the alias target.
            current = tip;
        }
        Err(ResolveError::TooManyIndirections)
    }

    /// One referral descent from the root for a single owner name. `depth`
    /// guards nested glue resolutions.
    fn resolve_once(
        &mut self,
        qname: &Name,
        qtype: RrType,
        depth: u32,
    ) -> Result<Message, ResolveError> {
        if depth > 2 {
            return Err(ResolveError::NoNameservers);
        }
        let mut servers = self.root_hints.clone();
        for _ in 0..=self.config.max_referrals {
            let resp = self.query_any(&servers, qname, qtype)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                _ => return Ok(resp),
            }
            if !resp.answers.is_empty() || resp.header.aa {
                return Ok(resp);
            }
            // Referral: gather NS targets + glue.
            let ns_targets: Vec<Name> = resp
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();
            if ns_targets.is_empty() {
                return Err(ResolveError::NoNameservers);
            }
            let mut next: Vec<IpAddr> = resp
                .additionals
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::A(a) if ns_targets.contains(&r.name) => Some(IpAddr::V4(*a)),
                    _ => None,
                })
                .collect();
            if next.is_empty() {
                // Glueless delegation: resolve the first NS names ourselves.
                for target in ns_targets.iter().take(2) {
                    if let Ok(m) = self.resolve_once(target, RrType::A, depth + 1) {
                        next.extend(m.answers.iter().filter_map(|r| match &r.rdata {
                            RData::A(a) if r.name == *target => Some(IpAddr::V4(*a)),
                            _ => None,
                        }));
                    }
                }
            }
            if next.is_empty() {
                return Err(ResolveError::NoNameservers);
            }
            servers = next;
        }
        Err(ResolveError::TooManyReferrals)
    }

    /// Sends to each server in turn with retries, returning the first
    /// validated response.
    fn query_any(
        &mut self,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        let mut last_err = ResolveError::Timeout;
        for _attempt in 0..self.config.retries.max(1) {
            for &server in servers {
                match self.exchange(server, qname, qtype) {
                    Ok(m) => return Ok(m),
                    Err(e) => last_err = e,
                }
            }
        }
        Err(last_err)
    }

    /// One validated request/response exchange: a single attempt against a
    /// single server within `attempt_timeout_us`. Retry and failover policy
    /// stay with the caller, which lets services with their own scheduling
    /// (e.g. a caching recursor) reuse the wire handling — id allocation,
    /// response validation, truncation detection — without adopting this
    /// resolver's descent loop.
    pub fn exchange(
        &mut self,
        server: IpAddr,
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let id = self.next_id;
        let query = Message::query(id, Question::new(qname.clone(), qtype));
        let bytes = match query.to_bytes() {
            Ok(b) => b,
            Err(e) => return Err(ResolveError::Malformed(e)),
        };
        self.socket.drain();
        self.socket.send_to(server, &bytes);
        self.sent += 1;

        let deadline_budget = self.config.attempt_timeout_us;
        let start = self.socket.now_us();
        loop {
            let spent = self.socket.now_us() - start;
            if spent >= deadline_budget {
                return Err(ResolveError::Timeout);
            }
            match self.socket.recv(deadline_budget - spent) {
                Ok((from, data)) => {
                    if from != server {
                        continue;
                    }
                    match Message::parse(&data) {
                        Ok(m)
                            if m.header.qr
                                && m.header.id == id
                                && m.questions.first().map(|q| (&q.qname, q.qtype))
                                    == Some((qname, qtype)) =>
                        {
                            if m.header.tc {
                                return Err(ResolveError::Malformed(WireError::TruncatedResponse));
                            }
                            return Ok(m);
                        }
                        // Wrong id / corrupted / unparsable: keep listening
                        // until the attempt deadline.
                        _ => continue,
                    }
                }
                Err(_) => return Err(ResolveError::Timeout),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bulk path
// ---------------------------------------------------------------------------

/// Delegation-following resolution evaluated directly on the [`Catalog`].
pub struct DirectResolver {
    catalog: Arc<Catalog>,
    max_indirections: u32,
    max_referrals: u32,
}

impl DirectResolver {
    /// Creates a direct resolver over `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self {
            catalog,
            max_indirections: 8,
            max_referrals: 12,
        }
    }

    /// Resolves `(qname, qtype)`, producing the same `Resolution` the wire
    /// path would (with zero elapsed time).
    pub fn resolve(&self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let mut chain: Vec<Record> = Vec::new();
        let mut current = qname.clone();

        'restart: for _ in 0..=self.max_indirections {
            // Descend from the root by following delegations.
            let Some((mut origin, mut zone)) = self.catalog.find_zone(&Name::root()) else {
                return Err(ResolveError::NoNameservers);
            };
            // Fast path: jump straight to the deepest registered zone; the
            // catalog only contains properly delegated zones (asserted by the
            // wire/direct equivalence tests).
            if let Some((o, z)) = self.catalog.find_zone(&current) {
                origin = o;
                zone = z;
            }
            let _ = origin;

            for _ in 0..=self.max_referrals {
                let outcome = zone.read().lookup(&current, qtype);
                match outcome {
                    LookupOutcome::Answer(recs) => {
                        chain.extend(recs);
                        return Ok(Resolution {
                            rcode: Rcode::NoError,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                    LookupOutcome::Cname(rec) => {
                        let target = match &rec.rdata {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!(),
                        };
                        chain.push(rec);
                        current = target;
                        continue 'restart;
                    }
                    LookupOutcome::Referral { ns, .. } => {
                        // Move into the child zone if it is registered.
                        let cut = ns
                            .first()
                            .map(|r| r.name.clone())
                            .ok_or(ResolveError::NoNameservers)?;
                        match self.catalog.zone(&cut) {
                            Some(z) => zone = z,
                            None => return Err(ResolveError::NoNameservers),
                        }
                    }
                    LookupOutcome::NoData => {
                        return Ok(Resolution {
                            rcode: Rcode::NoError,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                    LookupOutcome::NxDomain => {
                        return Ok(Resolution {
                            rcode: Rcode::NxDomain,
                            answers: chain,
                            elapsed_us: 0,
                        });
                    }
                }
            }
            return Err(ResolveError::TooManyReferrals);
        }
        Err(ResolveError::TooManyIndirections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::AuthServer;
    use crate::zone::Zone;
    use dps_dns::Class;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse::<Ipv4Addr>().unwrap())
    }

    /// Builds a tiny world: root, `le` TLD, `examp.le` customer zone hosted
    /// on a DPS server that also serves `foob.ar` with the CNAME target.
    fn build_world(net: &Arc<Network>) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());

        let root_addr = ip("10.255.0.1");
        let tld_addr = ip("10.255.1.1");
        let dps_addr = ip("10.255.2.1");

        let mut root = Zone::new(Name::root());
        root.add(n("le"), RData::Ns(n("ns.le")));
        root.add(n("ns.le"), a("10.255.1.1"));
        root.add(n("ar"), RData::Ns(n("ns.ar")));
        root.add(n("ns.ar"), a("10.255.1.1"));
        let root_handle = catalog.add_zone(root, vec![root_addr]);

        let mut le = Zone::new(n("le"));
        le.add(n("examp.le"), RData::Ns(n("ns.foob.ar")));
        // Glueless: ns.foob.ar must be resolved via .ar.
        let le_handle = catalog.add_zone(le, vec![tld_addr]);

        let mut ar = Zone::new(n("ar"));
        ar.add(n("foob.ar"), RData::Ns(n("ns.foob.ar")));
        ar.add(n("ns.foob.ar"), a("10.255.2.1"));
        let ar_handle = catalog.add_zone(ar, vec![tld_addr]);

        let mut examp = Zone::new(n("examp.le"));
        examp.add(n("examp.le"), a("203.0.113.10"));
        examp.add(n("www.examp.le"), RData::Cname(n("edge.foob.ar")));
        examp.add(n("examp.le"), RData::Ns(n("ns.foob.ar")));
        let examp_handle = catalog.add_zone(examp, vec![dps_addr]);

        let mut foob = Zone::new(n("foob.ar"));
        foob.add(n("edge.foob.ar"), a("198.51.100.7"));
        foob.add(n("foob.ar"), RData::Ns(n("ns.foob.ar")));
        foob.add(n("ns.foob.ar"), a("10.255.2.1"));
        let foob_handle = catalog.add_zone(foob, vec![dps_addr]);

        let root_srv = AuthServer::new();
        root_srv.serve_zone(root_handle);
        root_srv.bind(net, root_addr);

        let tld_srv = AuthServer::new();
        tld_srv.serve_zone(le_handle);
        tld_srv.serve_zone(ar_handle);
        tld_srv.bind(net, tld_addr);

        let dps_srv = AuthServer::new();
        dps_srv.serve_zone(examp_handle);
        dps_srv.serve_zone(foob_handle);
        dps_srv.bind(net, dps_addr);

        catalog.set_root_hints(vec![root_addr]);
        catalog
    }

    fn wire_resolver(net: &Arc<Network>, catalog: &Catalog) -> Resolver {
        Resolver::new(net, ip("172.16.0.1"), 0, catalog.root_hints())
    }

    #[test]
    fn wire_resolves_apex_a() {
        let net = Network::new(11);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("examp.le"), RrType::A).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.records_of(RrType::A).count(), 1);
        assert!(res.elapsed_us > 0);
    }

    #[test]
    fn wire_follows_cname_across_zones() {
        let net = Network::new(12);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("www.examp.le"), RrType::A).unwrap();
        let chain = res.cname_chain();
        assert_eq!(chain, vec![&n("edge.foob.ar")]);
        let a_rec = res.records_of(RrType::A).next().unwrap();
        assert_eq!(a_rec.rdata, a("198.51.100.7"));
    }

    #[test]
    fn wire_nxdomain_propagates() {
        let net = Network::new(13);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("missing.examp.le"), RrType::A).unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn wire_nodata_is_noerror_empty() {
        let net = Network::new(14);
        let catalog = build_world(&net);
        let mut r = wire_resolver(&net, &catalog);
        let res = r.resolve(&n("examp.le"), RrType::Mx).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert!(res.records_of(RrType::Mx).next().is_none());
    }

    #[test]
    fn wire_survives_heavy_loss() {
        let net = Network::new(15);
        let catalog = build_world(&net);
        net.set_faults(dps_netsim::FaultProfile {
            loss: 0.3,
            ..Default::default()
        });
        let mut r = wire_resolver(&net, &catalog).with_config(ResolverConfig {
            retries: 8,
            ..Default::default()
        });
        let res = r.resolve(&n("www.examp.le"), RrType::A).unwrap();
        assert_eq!(res.records_of(RrType::A).count(), 1);
    }

    #[test]
    fn wire_times_out_on_black_hole() {
        let net = Network::new(16);
        let catalog = Arc::new(Catalog::new());
        catalog.set_root_hints(vec![ip("10.255.0.99")]); // nothing bound
        let mut r = Resolver::new(&net, ip("172.16.0.1"), 0, catalog.root_hints()).with_config(
            ResolverConfig {
                retries: 2,
                attempt_timeout_us: 10_000,
                ..Default::default()
            },
        );
        assert_eq!(r.resolve(&n("x.y"), RrType::A), Err(ResolveError::Timeout));
    }

    #[test]
    fn direct_matches_wire_on_all_cases() {
        let net = Network::new(17);
        let catalog = build_world(&net);
        let direct = DirectResolver::new(Arc::clone(&catalog));
        let mut wire = wire_resolver(&net, &catalog);
        for (qname, qtype) in [
            ("examp.le", RrType::A),
            ("examp.le", RrType::Ns),
            ("www.examp.le", RrType::A),
            ("missing.examp.le", RrType::A),
            ("examp.le", RrType::Mx),
            ("edge.foob.ar", RrType::A),
        ] {
            let d = direct.resolve(&n(qname), qtype).unwrap();
            let w = wire.resolve(&n(qname), qtype).unwrap();
            assert_eq!(d.rcode, w.rcode, "{qname} {qtype}");
            assert_eq!(d.answers, w.answers, "{qname} {qtype}");
        }
    }

    #[test]
    fn direct_ns_answer_contains_records() {
        let net = Network::new(18);
        let catalog = build_world(&net);
        let direct = DirectResolver::new(catalog);
        let res = direct.resolve(&n("examp.le"), RrType::Ns).unwrap();
        let ns: Vec<_> = res.records_of(RrType::Ns).collect();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].rdata, RData::Ns(n("ns.foob.ar")));
        assert_eq!(ns[0].class, Class::In);
    }
}
