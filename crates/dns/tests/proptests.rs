//! Property-based tests: arbitrary well-formed messages survive an
//! encode → decode round trip, and the decoder never panics on garbage.

use dps_dns::{Class, Header, Message, Name, Opcode, Question, RData, Rcode, Record, RrType, Soa};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(|labels| {
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_bytes()).collect();
        Name::from_labels(refs).expect("labels within limits")
    })
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(mname, rname, serial, refresh, retry, expire, minimum)| RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            ),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..4)
            .prop_map(RData::Txt),
        (100u16..60000, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(rtype, data)| RData::Raw { rtype, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        class: Class::In,
        ttl,
        rdata,
    })
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(id, qr, aa, tc, rd, ra, rcode)| Header {
            id,
            qr,
            opcode: Opcode::Query,
            aa,
            tc,
            rd,
            ra,
            rcode: Rcode::from_code(rcode),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_header(),
        proptest::collection::vec(
            (arb_name(), 0u16..300).prop_map(|(n, t)| Question {
                qname: n,
                qtype: RrType::from_code(t),
                qclass: Class::In,
            }),
            0..3,
        ),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(header, questions, answers, authorities, additionals)| Message {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let bytes = msg.to_bytes().unwrap();
        let parsed = Message::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn name_roundtrip_via_presentation(name in arb_name()) {
        let shown = name.to_string();
        let reparsed: Name = shown.parse().unwrap();
        prop_assert_eq!(reparsed, name);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any result is fine; panicking or looping is not.
        let _ = Message::parse(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        msg in arb_message(),
        flip in any::<(u16, u8)>(),
    ) {
        let mut bytes = msg.to_bytes().unwrap();
        if !bytes.is_empty() {
            let idx = flip.0 as usize % bytes.len();
            bytes[idx] ^= flip.1;
            let _ = Message::parse(&bytes);
        }
    }

    #[test]
    fn decoder_never_panics_on_truncated_valid_message(
        msg in arb_message(),
        cut in any::<u16>(),
    ) {
        let bytes = msg.to_bytes().unwrap();
        let keep = cut as usize % (bytes.len() + 1);
        let _ = Message::parse(&bytes[..keep]);
    }

    #[test]
    fn decoder_never_panics_under_multi_byte_corruption(
        msg in arb_message(),
        flips in proptest::collection::vec(any::<(u16, u8)>(), 1..8),
    ) {
        let mut bytes = msg.to_bytes().unwrap();
        if !bytes.is_empty() {
            for (at, x) in flips {
                let idx = at as usize % bytes.len();
                bytes[idx] ^= x;
            }
            let _ = Message::parse(&bytes);
        }
    }

    #[test]
    fn subdomain_relation_is_transitive(a in arb_name(), b in arb_name(), c in arb_name()) {
        if a.is_subdomain_of(&b) && b.is_subdomain_of(&c) {
            prop_assert!(a.is_subdomain_of(&c));
        }
    }

    #[test]
    fn sld_is_idempotent(name in arb_name()) {
        prop_assert_eq!(name.sld().sld(), name.sld());
    }
}

/// Exhaustive, deterministic complement to the random truncations: a
/// realistic compressed response must decode (or error) cleanly when cut
/// at *every* possible byte boundary.
#[test]
fn every_prefix_of_a_compressed_response_parses_without_panic() {
    let name: Name = "www.cloudflare.com".parse().unwrap();
    let mut msg = Message::query(0x2016, Question::new(name.clone(), RrType::A));
    msg.header.qr = true;
    msg.answers.push(Record {
        name: name.clone(),
        class: Class::In,
        ttl: 300,
        rdata: RData::Cname("edge.cloudflare.com".parse().unwrap()),
    });
    msg.answers.push(Record {
        name: "edge.cloudflare.com".parse().unwrap(),
        class: Class::In,
        ttl: 300,
        rdata: RData::A(Ipv4Addr::new(198, 41, 128, 1)),
    });
    let bytes = msg.to_bytes().unwrap();
    assert!(Message::parse(&bytes).is_ok());
    for keep in 0..bytes.len() {
        let _ = Message::parse(&bytes[..keep]);
    }
}
