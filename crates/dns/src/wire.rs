//! RFC 1035 wire-format encoding and decoding.
//!
//! The encoder performs full domain-name compression (every name and every
//! name embedded in RDATA of well-known types is eligible as a compression
//! target, matching common server behaviour). The decoder chases compression
//! pointers with strict backward-only and hop-count protection, so malformed
//! or adversarial messages cannot loop it.

// Untrusted-input module: decoders must return errors, never panic
// (enforced by dps-analyzer's panic-safety family and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::error::{NameError, WireError};
use crate::name::{Name, MAX_NAME_LEN};
use crate::rr::{Class, RData, Record, RrType, Soa};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Upper bound on an encoded message (the 16-bit length framing limit).
pub const MAX_MESSAGE_LEN: usize = u16::MAX as usize;

/// Maximum compression-pointer hops we tolerate when decoding one name.
/// A valid chain can never exceed the 127 labels a 255-octet name allows.
const MAX_POINTER_HOPS: usize = 127;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Streaming encoder with name compression.
pub struct Encoder {
    buf: BytesMut,
    /// Maps a name suffix (in wire form) to its offset in `buf`.
    compression: HashMap<Vec<u8>, u16>,
}

impl Encoder {
    /// Creates an encoder with a reasonable initial capacity.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::with_capacity(512),
            compression: HashMap::new(),
        }
    }

    /// Finishes encoding and returns the message bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Current output length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends raw octets.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.put_slice(s);
    }

    /// Appends a domain name, emitting a compression pointer for the longest
    /// suffix already written, and registering every new suffix.
    pub fn put_name(&mut self, name: &Name) -> Result<(), WireError> {
        let mut rest: &[u8] = name.as_wire();
        // Walk label by label; at each step either emit a pointer to an
        // already-written suffix, or write this label and register the
        // suffix starting here for future message parts.
        while let Some((&len, _)) = rest.split_first() {
            if len == 0 {
                break;
            }
            if let Some(&offset) = self.compression.get(rest) {
                self.buf.put_u16(0xC000 | offset);
                return self.check_len();
            }
            // Register this suffix if its offset fits in 14 bits.
            let here = self.buf.len();
            if here <= 0x3FFF {
                self.compression.insert(rest.to_vec(), here as u16);
            }
            let label = rest.get(..1 + len as usize).ok_or(WireError::Truncated)?;
            self.buf.put_slice(label);
            rest = rest.get(1 + len as usize..).unwrap_or(&[]);
        }
        self.buf.put_u8(0);
        self.check_len()
    }

    fn check_len(&self) -> Result<(), WireError> {
        if self.buf.len() > MAX_MESSAGE_LEN {
            Err(WireError::MessageTooLarge)
        } else {
            Ok(())
        }
    }

    /// Appends a full resource record (owner, type, class, TTL, RDATA).
    pub fn put_record(&mut self, rec: &Record) -> Result<(), WireError> {
        self.put_name(&rec.name)?;
        self.put_u16(rec.rtype().code());
        self.put_u16(rec.class.code());
        self.put_u32(rec.ttl);
        // Reserve RDLENGTH, encode RDATA, then patch the length.
        let len_at = self.buf.len();
        self.put_u16(0);
        let start = self.buf.len();
        self.put_rdata(&rec.rdata)?;
        let rdlen = self.buf.len() - start;
        if rdlen > u16::MAX as usize {
            return Err(WireError::MessageTooLarge);
        }
        self.buf
            .get_mut(len_at..len_at + 2)
            .ok_or(WireError::Truncated)?
            .copy_from_slice(&(rdlen as u16).to_be_bytes());
        self.check_len()
    }

    fn put_rdata(&mut self, rdata: &RData) -> Result<(), WireError> {
        match rdata {
            RData::A(a) => self.put_slice(&a.octets()),
            RData::Aaaa(a) => self.put_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) => self.put_name(n)?,
            RData::Soa(s) => {
                self.put_name(&s.mname)?;
                self.put_name(&s.rname)?;
                self.put_u32(s.serial);
                self.put_u32(s.refresh);
                self.put_u32(s.retry);
                self.put_u32(s.expire);
                self.put_u32(s.minimum);
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                self.put_u16(*preference);
                self.put_name(exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::StringTooLong(s.len()));
                    }
                    self.buf.put_u8(s.len() as u8);
                    self.put_slice(s);
                }
            }
            RData::Raw { data, .. } => self.put_slice(data),
        }
        Ok(())
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor-based decoder over a full message buffer.
///
/// The whole message must be available because compression pointers refer to
/// absolute offsets from the message start.
pub struct Decoder<'a> {
    msg: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `msg`.
    pub fn new(msg: &'a [u8]) -> Self {
        Self { msg, pos: 0 }
    }

    /// Current offset from message start.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining octets.
    pub fn remaining(&self) -> usize {
        self.msg.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.msg.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a big-endian u8.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    /// Reads a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let mut s = self.take(2)?;
        Ok(s.get_u16())
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let mut s = self.take(4)?;
        Ok(s.get_u32())
    }

    /// Decodes a (possibly compressed) domain name at the cursor.
    pub fn get_name(&mut self) -> Result<Name, WireError> {
        let mut wire = Vec::with_capacity(32);
        let mut pos = self.pos;
        let mut followed: Option<usize> = None; // cursor resume point
        let mut hops = 0usize;

        loop {
            let len = *self.msg.get(pos).ok_or(WireError::Truncated)? as usize;
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        wire.push(0);
                        pos += 1;
                        break;
                    }
                    let end = pos + 1 + len;
                    let label = self.msg.get(pos + 1..end).ok_or(WireError::Truncated)?;
                    wire.push(len as u8);
                    for &b in label {
                        wire.push(b.to_ascii_lowercase());
                    }
                    if wire.len() > MAX_NAME_LEN {
                        return Err(WireError::BadName(NameError::NameTooLong(wire.len())));
                    }
                    pos = end;
                }
                0xC0 => {
                    let second = *self.msg.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                    let target = ((len & 0x3F) << 8) | second;
                    // Pointers must go strictly backwards: this both matches
                    // every sane encoder and guarantees termination together
                    // with the hop counter.
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    if followed.is_none() {
                        followed = Some(pos + 2);
                    }
                    pos = target;
                }
                other => return Err(WireError::ReservedLabelType(other as u8)),
            }
        }

        self.pos = followed.unwrap_or(pos);
        Name::from_wire_unchecked(wire).map_err(WireError::BadName)
    }

    /// Decodes a full resource record at the cursor.
    pub fn get_record(&mut self) -> Result<Record, WireError> {
        let name = self.get_name()?;
        let rtype = RrType::from_code(self.get_u16()?);
        let class = Class::from_code(self.get_u16()?);
        let ttl = self.get_u32()?;
        let rdlen = self.get_u16()? as usize;
        if self.remaining() < rdlen {
            return Err(WireError::Truncated);
        }
        let rdata_start = self.pos;
        let rdata = self.get_rdata(rtype, rdlen)?;
        if self.pos != rdata_start + rdlen {
            return Err(WireError::BadRdataLength {
                rtype: rtype.code(),
                declared: rdlen,
                actual: self.pos - rdata_start,
            });
        }
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }

    fn get_rdata(&mut self, rtype: RrType, rdlen: usize) -> Result<RData, WireError> {
        let mismatch = |actual: usize| WireError::BadRdataLength {
            rtype: rtype.code(),
            declared: rdlen,
            actual,
        };
        match rtype {
            RrType::A => {
                if rdlen != 4 {
                    return Err(mismatch(4));
                }
                let &[a, b, c, d] = self.take(4)? else {
                    return Err(WireError::Truncated);
                };
                Ok(RData::A(Ipv4Addr::new(a, b, c, d)))
            }
            RrType::Aaaa => {
                if rdlen != 16 {
                    return Err(mismatch(16));
                }
                let a: [u8; 16] = self
                    .take(16)?
                    .try_into()
                    .map_err(|_| WireError::Truncated)?;
                Ok(RData::Aaaa(Ipv6Addr::from(a)))
            }
            RrType::Ns => Ok(RData::Ns(self.get_name()?)),
            RrType::Cname => Ok(RData::Cname(self.get_name()?)),
            RrType::Soa => Ok(RData::Soa(Soa {
                mname: self.get_name()?,
                rname: self.get_name()?,
                serial: self.get_u32()?,
                refresh: self.get_u32()?,
                retry: self.get_u32()?,
                expire: self.get_u32()?,
                minimum: self.get_u32()?,
            })),
            RrType::Mx => Ok(RData::Mx {
                preference: self.get_u16()?,
                exchange: self.get_name()?,
            }),
            RrType::Txt => {
                let end = self.pos + rdlen;
                let mut strings = Vec::new();
                while self.pos < end {
                    let n = self.get_u8()? as usize;
                    if self.pos + n > end {
                        return Err(mismatch(n));
                    }
                    strings.push(self.take(n)?.to_vec());
                }
                Ok(RData::Txt(strings))
            }
            _ => Ok(RData::Raw {
                rtype: rtype.code(),
                data: self.take(rdlen)?.to_vec(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn roundtrip_name_pair(a: &Name, b: &Name) -> (Vec<u8>, Name, Name) {
        let mut enc = Encoder::new();
        enc.put_name(a).unwrap();
        enc.put_name(b).unwrap();
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let da = dec.get_name().unwrap();
        let db = dec.get_name().unwrap();
        (bytes, da, db)
    }

    #[test]
    fn name_roundtrip_plain() {
        let (_, da, db) = roundtrip_name_pair(&n("www.examp.le"), &n("other.test"));
        assert_eq!(da, n("www.examp.le"));
        assert_eq!(db, n("other.test"));
    }

    #[test]
    fn compression_reuses_suffix() {
        let a = n("www.examp.le");
        let b = n("mail.examp.le");
        let (bytes, da, db) = roundtrip_name_pair(&a, &b);
        assert_eq!(da, a);
        assert_eq!(db, b);
        // Second name should be `\x04mail` + 2-byte pointer = 7 octets,
        // instead of 15 uncompressed.
        assert_eq!(bytes.len(), a.wire_len() + 7);
    }

    #[test]
    fn identical_name_collapses_to_pointer() {
        let a = n("examp.le");
        let (bytes, ..) = roundtrip_name_pair(&a, &a);
        assert_eq!(bytes.len(), a.wire_len() + 2);
    }

    #[test]
    fn root_name_roundtrips() {
        let (_, da, _) = roundtrip_name_pair(&Name::root(), &n("x.y"));
        assert!(da.is_root());
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to offset 2 from offset 0 (forward).
        let bytes = [0xC0, 0x02, 0x00];
        assert_eq!(Decoder::new(&bytes).get_name(), Err(WireError::BadPointer));
    }

    #[test]
    fn self_pointer_rejected() {
        // First write a valid name so offset 2 exists, then point 2 -> 2.
        let bytes = [0x01, b'a', 0xC0, 0x02];
        let mut dec = Decoder::new(&bytes);
        dec.pos = 2;
        assert_eq!(dec.get_name(), Err(WireError::BadPointer));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let bytes = [0x80, 0x00];
        assert!(matches!(
            Decoder::new(&bytes).get_name(),
            Err(WireError::ReservedLabelType(_))
        ));
    }

    #[test]
    fn truncated_label_rejected() {
        let bytes = [0x05, b'a', b'b'];
        assert_eq!(Decoder::new(&bytes).get_name(), Err(WireError::Truncated));
    }

    #[test]
    fn record_roundtrip_all_types() {
        let recs = vec![
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::A("10.1.2.3".parse().unwrap()),
            ),
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ),
            Record::new(n("a.test"), Class::In, 60, RData::Ns(n("ns1.a.test"))),
            Record::new(
                n("w.a.test"),
                Class::In,
                60,
                RData::Cname(n("edge.dps.net")),
            ),
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::Soa(Soa {
                    mname: n("ns1.a.test"),
                    rname: n("hostmaster.a.test"),
                    serial: 20_160_305,
                    refresh: 7200,
                    retry: 900,
                    expire: 1209600,
                    minimum: 300,
                }),
            ),
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::Mx {
                    preference: 10,
                    exchange: n("mx.a.test"),
                },
            ),
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]),
            ),
            Record::new(
                n("a.test"),
                Class::In,
                60,
                RData::Raw {
                    rtype: 99,
                    data: vec![1, 2, 3],
                },
            ),
        ];
        let mut enc = Encoder::new();
        for r in &recs {
            enc.put_record(r).unwrap();
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for r in &recs {
            assert_eq!(&dec.get_record().unwrap(), r);
        }
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn a_record_with_wrong_rdlen_rejected() {
        // Hand-craft: name "x." + type A + class IN + ttl + rdlen 3 + 3 bytes.
        let mut bytes = vec![0x01, b'x', 0x00];
        bytes.extend_from_slice(&1u16.to_be_bytes()); // type A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // class IN
        bytes.extend_from_slice(&60u32.to_be_bytes());
        bytes.extend_from_slice(&3u16.to_be_bytes()); // bad rdlen
        bytes.extend_from_slice(&[10, 0, 0]);
        assert!(matches!(
            Decoder::new(&bytes).get_record(),
            Err(WireError::BadRdataLength { rtype: 1, .. })
        ));
    }

    #[test]
    fn txt_string_too_long_rejected_on_encode() {
        let r = Record::new(n("x.y"), Class::In, 0, RData::Txt(vec![vec![0u8; 300]]));
        let mut enc = Encoder::new();
        assert!(matches!(
            enc.put_record(&r),
            Err(WireError::StringTooLong(300))
        ));
    }

    #[test]
    fn decoded_names_are_lowercased() {
        // Encode a name with uppercase octets by hand.
        let bytes = [0x03, b'W', b'W', b'W', 0x02, b'E', b'X', 0x00];
        let name = Decoder::new(&bytes).get_name().unwrap();
        assert_eq!(name, n("www.ex"));
    }
}
