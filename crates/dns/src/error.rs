//! Error types for name parsing and wire-format handling.

use std::fmt;

/// Errors produced while constructing or parsing a domain [`Name`](crate::Name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A single label exceeded 63 octets (RFC 1035 §2.3.4).
    LabelTooLong(usize),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// An empty label appeared in the middle of a name (e.g. `"a..b"`).
    EmptyLabel,
    /// A label contained an octet we do not accept in presentation format.
    InvalidCharacter(char),
    /// Wire-form bytes were structurally invalid: a label length ran past
    /// the end, or bytes trailed the root octet.
    MalformedWire,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LabelTooLong(n) => write!(f, "label of {n} octets exceeds the 63-octet limit"),
            Self::NameTooLong(n) => {
                write!(f, "name of {n} wire octets exceeds the 255-octet limit")
            }
            Self::EmptyLabel => write!(f, "empty label inside a name"),
            Self::InvalidCharacter(c) => write!(f, "character {c:?} not allowed in a domain name"),
            Self::MalformedWire => write!(f, "structurally invalid wire-form name"),
        }
    }
}

impl std::error::Error for NameError {}

/// Errors produced while encoding or decoding DNS wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A domain-name compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A name embedded in the message violated name length limits.
    BadName(NameError),
    /// An RDATA length did not match the records's actual payload.
    BadRdataLength {
        /// Record type whose RDATA was malformed.
        rtype: u16,
        /// Declared RDLENGTH.
        declared: usize,
        /// Octets actually consumed (or available).
        actual: usize,
    },
    /// A label length octet used the reserved `0b10`/`0b01` prefixes.
    ReservedLabelType(u8),
    /// The message would exceed the 64 KiB size limit when encoding.
    MessageTooLarge,
    /// A character-string (e.g. in TXT) exceeded 255 octets.
    StringTooLong(usize),
    /// The response had the TC (truncation) bit set; the caller should retry
    /// over a transport without the size limit. We surface rather than hide it.
    TruncatedResponse,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "message truncated mid-structure"),
            Self::BadPointer => write!(f, "invalid or looping compression pointer"),
            Self::BadName(e) => write!(f, "invalid embedded name: {e}"),
            Self::BadRdataLength {
                rtype,
                declared,
                actual,
            } => write!(
                f,
                "RDATA length mismatch for type {rtype}: declared {declared}, actual {actual}"
            ),
            Self::ReservedLabelType(b) => write!(f, "reserved label type octet {b:#04x}"),
            Self::MessageTooLarge => write!(f, "encoded message exceeds 64 KiB"),
            Self::StringTooLong(n) => write!(f, "character-string of {n} octets exceeds 255"),
            Self::TruncatedResponse => write!(f, "response carries the TC bit"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        Self::BadName(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::BadRdataLength {
            rtype: 1,
            declared: 4,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains("type 1"), "{s}");
        assert!(s.contains("declared 4"), "{s}");
    }

    #[test]
    fn name_error_converts_to_wire_error() {
        let w: WireError = NameError::EmptyLabel.into();
        assert_eq!(w, WireError::BadName(NameError::EmptyLabel));
    }
}
