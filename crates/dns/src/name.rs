//! Domain names.
//!
//! A [`Name`] is stored in uncompressed wire form: a sequence of
//! length-prefixed labels terminated by the root label (a zero octet). All
//! labels are normalised to ASCII lowercase at construction, which makes
//! equality and hashing case-insensitive as required by RFC 1035 §2.3.3 —
//! the property the detection methodology relies on when matching
//! second-level domains in `CNAME`/`NS` records.

use crate::error::NameError;
use std::fmt;
use std::str::FromStr;

/// Maximum octets of a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a whole name in wire form (including the root octet).
pub const MAX_NAME_LEN: usize = 255;

/// An absolute domain name (always rooted).
///
/// ```
/// use dps_dns::Name;
/// let a: Name = "WWW.Examp.LE".parse().unwrap();
/// let b: Name = "www.examp.le.".parse().unwrap();
/// assert_eq!(a, b); // case-insensitive, trailing dot optional
/// assert_eq!(a.label_count(), 3);
/// assert_eq!(a.to_string(), "www.examp.le.");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    /// Uncompressed wire form: `\x03www\x05examp\x02le\x00`.
    wire: Vec<u8>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Self { wire: vec![0] }
    }

    /// Builds a name from an iterator of label byte-slices, most-specific
    /// first (`["www", "examp", "le"]`).
    pub fn from_labels<'a, I>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut wire = Vec::with_capacity(32);
        for label in labels {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(label.len()));
            }
            wire.push(label.len() as u8);
            for &b in label {
                wire.push(b.to_ascii_lowercase());
            }
        }
        wire.push(0);
        if wire.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire.len()));
        }
        Ok(Self { wire })
    }

    /// Constructs a name directly from validated uncompressed wire bytes.
    ///
    /// Used by the wire decoder, which has already validated structure; this
    /// still re-checks the length invariants cheaply.
    pub(crate) fn from_wire_unchecked(wire: Vec<u8>) -> Result<Self, NameError> {
        if wire.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire.len()));
        }
        debug_assert_eq!(wire.last(), Some(&0));
        Ok(Self { wire })
    }

    /// The uncompressed wire representation (always ends with `0x00`).
    pub fn as_wire(&self) -> &[u8] {
        &self.wire
    }

    /// Parses an untrusted uncompressed wire-form name (length-prefixed
    /// labels terminated by the root octet), normalising labels to ASCII
    /// lowercase. Checked throughout: bad structure is an error, never a
    /// panic. The inverse of [`as_wire`](Self::as_wire) — much cheaper
    /// than a presentation-format round-trip.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, NameError> {
        if bytes.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(bytes.len()));
        }
        let mut i = 0usize;
        loop {
            match bytes.get(i) {
                // Ran past the end without meeting the root octet.
                None => return Err(NameError::MalformedWire),
                Some(0) => {
                    if i + 1 != bytes.len() {
                        // Trailing bytes after the root octet.
                        return Err(NameError::MalformedWire);
                    }
                    break;
                }
                Some(&len) => {
                    if usize::from(len) > MAX_LABEL_LEN {
                        return Err(NameError::LabelTooLong(usize::from(len)));
                    }
                    i += 1 + usize::from(len);
                }
            }
        }
        Ok(Self {
            wire: bytes.to_ascii_lowercase(),
        })
    }

    /// Number of labels, excluding the root label. The root name has 0.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Iterates over the labels, most-specific first.
    pub fn labels(&self) -> Labels<'_> {
        Labels { rest: &self.wire }
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.wire.len() == 1
    }

    /// The name with the most-specific label removed; `None` for the root.
    ///
    /// `www.examp.le.` → `examp.le.`
    pub fn parent(&self) -> Option<Self> {
        if self.is_root() {
            return None;
        }
        let skip = 1 + *self.wire.first()? as usize;
        Some(Self {
            wire: self.wire.get(skip..)?.to_vec(),
        })
    }

    /// True if `self` equals `other` or is underneath it in the tree.
    ///
    /// Every name is a subdomain of the root. `examp.le.` is a subdomain of
    /// `le.` and of itself, but not of `ample.` (comparison is per label, not
    /// per substring).
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        self.wire.ends_with(&other.wire)
    }

    /// Prepends a single label: `prepend("www")` on `examp.le.` gives
    /// `www.examp.le.`.
    pub fn prepend(&self, label: &str) -> Result<Self, NameError> {
        let mut labels: Vec<&[u8]> = vec![label.as_bytes()];
        let tail: Vec<&[u8]> = self.labels().collect();
        labels.extend(tail);
        Self::from_labels(labels)
    }

    /// The suffix of `self` keeping only the last `n` labels.
    ///
    /// `www.examp.le.` with `n = 2` gives `examp.le.`; if the name has fewer
    /// than `n` labels the whole name is returned.
    pub fn suffix(&self, n: usize) -> Self {
        let count = self.label_count();
        if count <= n {
            return self.clone();
        }
        let mut rest = self.wire.as_slice();
        for _ in 0..count - n {
            let Some(&len) = rest.first() else { break };
            rest = rest.get(1 + len as usize..).unwrap_or(&[]);
        }
        Self {
            wire: rest.to_vec(),
        }
    }

    /// The registered-domain heuristic used throughout the paper: the last
    /// two labels of a name (`second-level domain` + TLD), e.g.
    /// `edge.cdn.incapdns.net.` → `incapdns.net.`.
    ///
    /// The real study uses knowledge of public suffixes; our simulated
    /// namespace only uses single-label public suffixes, so two labels is
    /// exact. Names with fewer than two labels are returned unchanged.
    pub fn sld(&self) -> Self {
        self.suffix(2)
    }

    /// Wire length in octets (including the root octet).
    pub fn wire_len(&self) -> usize {
        self.wire.len()
    }
}

impl FromStr for Name {
    type Err = NameError;

    /// Parses presentation format. A trailing dot is optional; `"."` and
    /// `""` both give the root. Allowed characters: ASCII alphanumerics,
    /// `-` and `_` (seen in e.g. `_dmarc` labels).
    fn from_str(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Self::root());
        }
        for c in s.chars() {
            if !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.') {
                return Err(NameError::InvalidCharacter(c));
            }
        }
        Self::from_labels(s.split('.').map(str::as_bytes))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for label in self.labels() {
            // Labels are normalised ASCII; lossy conversion never triggers.
            f.write_str(&String::from_utf8_lossy(label))?;
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Iterator over the labels of a [`Name`], most-specific first.
pub struct Labels<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Labels<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let len = *self.rest.first()? as usize;
        if len == 0 {
            return None;
        }
        let label = self.rest.get(1..1 + len)?;
        self.rest = self.rest.get(1 + len..).unwrap_or(&[]);
        Some(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        assert_eq!(n("www.examp.le").to_string(), "www.examp.le.");
        assert_eq!(n("www.examp.le.").to_string(), "www.examp.le.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(n("Examp.LE"));
        assert!(set.contains(&n("examp.le")));
        assert_eq!(n("A.B"), n("a.b"));
    }

    #[test]
    fn label_limits_enforced() {
        let long = "a".repeat(64);
        assert_eq!(long.parse::<Name>(), Err(NameError::LabelTooLong(64)));
        let ok = "a".repeat(63);
        assert!(ok.parse::<Name>().is_ok());
    }

    #[test]
    fn name_length_limit_enforced() {
        // 4 labels of 63 octets = 4*64 + 1 = 257 wire octets > 255.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(s.parse::<Name>(), Err(NameError::NameTooLong(_))));
    }

    #[test]
    fn empty_label_rejected() {
        assert_eq!("a..b".parse::<Name>(), Err(NameError::EmptyLabel));
    }

    #[test]
    fn invalid_characters_rejected() {
        assert_eq!("a b".parse::<Name>(), Err(NameError::InvalidCharacter(' ')));
        assert!("xn--caf-dma.example".parse::<Name>().is_ok()); // punycode form ok
    }

    #[test]
    fn parent_chain_terminates_at_root() {
        let mut cur = Some(n("www.examp.le"));
        let mut seen = Vec::new();
        while let Some(c) = cur {
            seen.push(c.to_string());
            cur = c.parent();
        }
        assert_eq!(seen, vec!["www.examp.le.", "examp.le.", "le.", "."]);
    }

    #[test]
    fn subdomain_is_per_label() {
        assert!(n("www.examp.le").is_subdomain_of(&n("examp.le")));
        assert!(n("examp.le").is_subdomain_of(&n("examp.le")));
        assert!(n("examp.le").is_subdomain_of(&Name::root()));
        assert!(!n("examp.le").is_subdomain_of(&n("amp.le")));
        assert!(!n("le").is_subdomain_of(&n("examp.le")));
    }

    #[test]
    fn sld_takes_last_two_labels() {
        assert_eq!(n("edge.cdn.incapdns.net").sld(), n("incapdns.net"));
        assert_eq!(n("examp.le").sld(), n("examp.le"));
        assert_eq!(n("le").sld(), n("le"));
    }

    #[test]
    fn prepend_builds_child() {
        assert_eq!(n("examp.le").prepend("www").unwrap(), n("www.examp.le"));
    }

    #[test]
    fn suffix_counts_labels() {
        let x = n("a.b.c.d");
        assert_eq!(x.suffix(1), n("d"));
        assert_eq!(x.suffix(4), x);
        assert_eq!(x.suffix(9), x);
        assert_eq!(x.suffix(0), Name::root());
    }

    #[test]
    fn labels_iterate_most_specific_first() {
        let name = n("www.examp.le");
        let collected: Vec<&[u8]> = name.labels().collect();
        assert_eq!(collected, vec![b"www".as_slice(), b"examp", b"le"]);
    }

    #[test]
    fn from_wire_inverts_as_wire() {
        for s in ["www.examp.le", "a.b.c.d", "le"] {
            let name = n(s);
            assert_eq!(Name::from_wire(name.as_wire()).unwrap(), name);
        }
        assert_eq!(Name::from_wire(&[0]).unwrap(), Name::root());
        // Uppercase wire bytes normalise like every other constructor.
        assert_eq!(Name::from_wire(b"\x03WWW\x02le\x00").unwrap(), n("www.le"));
    }

    #[test]
    fn from_wire_rejects_malformed_bytes() {
        assert_eq!(Name::from_wire(&[]), Err(NameError::MalformedWire));
        // Label length runs past the end.
        assert_eq!(Name::from_wire(b"\x05ab"), Err(NameError::MalformedWire));
        // Missing root octet.
        assert_eq!(Name::from_wire(b"\x02ab"), Err(NameError::MalformedWire));
        // Trailing bytes after the root octet.
        assert_eq!(
            Name::from_wire(b"\x01a\x00x"),
            Err(NameError::MalformedWire)
        );
        // Oversized label (64) and oversized name.
        let mut long = vec![64u8];
        long.extend(std::iter::repeat_n(b'a', 64));
        long.push(0);
        assert_eq!(Name::from_wire(&long), Err(NameError::LabelTooLong(64)));
        let big = [1u8, b'a'].repeat(200);
        assert_eq!(Name::from_wire(&big), Err(NameError::NameTooLong(400)));
    }
}
