//! Resource records: types, classes and typed RDATA.

use crate::name::Name;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Resource-record type codes (RFC 1035 §3.2.2 and successors).
///
/// Only the types the measurement pipeline queries or may encounter are
/// given variants; everything else round-trips through [`RrType::Other`]
/// so unknown records never break parsing (important for an active
/// measurement tool pointed at arbitrary servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// Query-only: any type.
    Any,
    /// Any other numeric type, preserved verbatim.
    Other(u16),
}

impl RrType {
    /// Numeric type code.
    pub fn code(self) -> u16 {
        match self {
            Self::A => 1,
            Self::Ns => 2,
            Self::Cname => 5,
            Self::Soa => 6,
            Self::Mx => 15,
            Self::Txt => 16,
            Self::Aaaa => 28,
            Self::Opt => 41,
            Self::Any => 255,
            Self::Other(c) => c,
        }
    }

    /// Maps a numeric code back to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => Self::A,
            2 => Self::Ns,
            5 => Self::Cname,
            6 => Self::Soa,
            15 => Self::Mx,
            16 => Self::Txt,
            28 => Self::Aaaa,
            41 => Self::Opt,
            255 => Self::Any,
            c => Self::Other(c),
        }
    }
}

impl std::str::FromStr for RrType {
    type Err = String;

    /// Parses a presentation-format type mnemonic (`"A"`, `"aaaa"`,
    /// `"TYPE99"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Ok(Self::A),
            "NS" => Ok(Self::Ns),
            "CNAME" => Ok(Self::Cname),
            "SOA" => Ok(Self::Soa),
            "MX" => Ok(Self::Mx),
            "TXT" => Ok(Self::Txt),
            "AAAA" => Ok(Self::Aaaa),
            "OPT" => Ok(Self::Opt),
            "ANY" | "*" => Ok(Self::Any),
            other => match other
                .strip_prefix("TYPE")
                .and_then(|d| d.parse::<u16>().ok())
            {
                Some(code) => Ok(Self::from_code(code)),
                None => Err(format!("unknown RR type {s:?}")),
            },
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::A => write!(f, "A"),
            Self::Ns => write!(f, "NS"),
            Self::Cname => write!(f, "CNAME"),
            Self::Soa => write!(f, "SOA"),
            Self::Mx => write!(f, "MX"),
            Self::Txt => write!(f, "TXT"),
            Self::Aaaa => write!(f, "AAAA"),
            Self::Opt => write!(f, "OPT"),
            Self::Any => write!(f, "ANY"),
            Self::Other(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// Record classes. The study only ever sees `IN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// The Internet.
    In,
    /// Query-only: any class.
    Any,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl Class {
    /// Numeric class code.
    pub fn code(self) -> u16 {
        match self {
            Self::In => 1,
            Self::Any => 255,
            Self::Other(c) => c,
        }
    }

    /// Maps a numeric code back to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => Self::In,
            255 => Self::Any,
            c => Self::Other(c),
        }
    }
}

/// SOA RDATA (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary name server of the zone.
    pub mname: Name,
    /// Mailbox of the responsible person.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expiry limit (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds).
    pub minimum: u32,
}

/// Typed RDATA for the record types we understand, with a raw fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name-server host name.
    Ns(Name),
    /// Canonical name target.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// Mail exchange: preference and host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Exchange host name.
        exchange: Name,
    },
    /// Text record: one or more character-strings, each ≤255 octets.
    Txt(Vec<Vec<u8>>),
    /// Unknown type: raw RDATA preserved for round-tripping.
    Raw {
        /// Numeric type code.
        rtype: u16,
        /// Raw RDATA octets.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            Self::A(_) => RrType::A,
            Self::Aaaa(_) => RrType::Aaaa,
            Self::Ns(_) => RrType::Ns,
            Self::Cname(_) => RrType::Cname,
            Self::Soa(_) => RrType::Soa,
            Self::Mx { .. } => RrType::Mx,
            Self::Txt(_) => RrType::Txt,
            Self::Raw { rtype, .. } => RrType::from_code(*rtype),
        }
    }

    /// The name carried in the RDATA, when there is one (NS/CNAME/MX).
    ///
    /// The detection methodology inspects these to find provider SLDs.
    pub fn carried_name(&self) -> Option<&Name> {
        match self {
            Self::Ns(n) | Self::Cname(n) | Self::Mx { exchange: n, .. } => Some(n),
            Self::Soa(soa) => Some(&soa.mname),
            _ => None,
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (almost always `IN`).
    pub class: Class,
    /// Time to live (seconds).
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: Name, class: Class, ttl: u32, rdata: RData) -> Self {
        Self {
            name,
            class,
            ttl,
            rdata,
        }
    }

    /// The record's type, derived from its RDATA.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {}", self.name, self.ttl, self.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, " {a}"),
            RData::Aaaa(a) => write!(f, " {a}"),
            RData::Ns(n) | RData::Cname(n) => write!(f, " {n}"),
            RData::Soa(s) => write!(f, " {} {} {}", s.mname, s.rname, s.serial),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, " {preference} {exchange}"),
            RData::Txt(parts) => {
                for p in parts {
                    write!(f, " \"{}\"", String::from_utf8_lossy(p))?;
                }
                Ok(())
            }
            RData::Raw { data, .. } => write!(f, " \\# {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Any,
            RrType::Other(4242),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
    }

    #[test]
    fn type_mnemonics_parse() {
        assert_eq!("A".parse::<RrType>(), Ok(RrType::A));
        assert_eq!("aaaa".parse::<RrType>(), Ok(RrType::Aaaa));
        assert_eq!("Cname".parse::<RrType>(), Ok(RrType::Cname));
        assert_eq!("TYPE99".parse::<RrType>(), Ok(RrType::Other(99)));
        assert_eq!("TYPE1".parse::<RrType>(), Ok(RrType::A));
        assert!("BOGUS".parse::<RrType>().is_err());
        // Display ↔ FromStr round trip for the named types.
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Other(300),
        ] {
            assert_eq!(t.to_string().parse::<RrType>(), Ok(t));
        }
    }

    #[test]
    fn class_codes_roundtrip() {
        for c in [Class::In, Class::Any, Class::Other(3)] {
            assert_eq!(Class::from_code(c.code()), c);
        }
    }

    #[test]
    fn carried_name_extracts_targets() {
        let n: Name = "foob.ar".parse().unwrap();
        assert_eq!(RData::Cname(n.clone()).carried_name(), Some(&n));
        assert_eq!(RData::Ns(n.clone()).carried_name(), Some(&n));
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).carried_name(), None);
    }

    #[test]
    fn record_display_is_zone_file_like() {
        let r = Record::new(
            "www.examp.le".parse().unwrap(),
            Class::In,
            300,
            RData::A(Ipv4Addr::new(10, 0, 0, 1)),
        );
        assert_eq!(r.to_string(), "www.examp.le. 300 IN A 10.0.0.1");
    }
}
