//! DNS messages: header, questions, and the four record sections.

// Untrusted-input module: decoders must return errors, never panic
// (enforced by dps-analyzer's panic-safety family and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::error::WireError;
use crate::name::Name;
use crate::rr::{Class, Record, RrType};
use crate::wire::{Decoder, Encoder};
use std::fmt;

/// Header opcodes (we only originate `Query`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Anything else, preserved numerically.
    Other(u8),
}

impl Opcode {
    fn code(self) -> u8 {
        match self {
            Self::Query => 0,
            Self::Other(c) => c & 0x0F,
        }
    }

    fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Self::Query,
            o => Self::Other(o),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The query was malformed.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The queried name does not exist (authoritative).
    NxDomain,
    /// The server does not implement the request.
    NotImp,
    /// The server refuses to answer.
    Refused,
    /// Any other code, preserved numerically.
    Other(u8),
}

impl Rcode {
    /// Numeric code.
    pub fn code(self) -> u8 {
        match self {
            Self::NoError => 0,
            Self::FormErr => 1,
            Self::ServFail => 2,
            Self::NxDomain => 3,
            Self::NotImp => 4,
            Self::Refused => 5,
            Self::Other(c) => c & 0x0F,
        }
    }

    /// Maps a numeric code back to a variant.
    pub fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Self::NoError,
            1 => Self::FormErr,
            2 => Self::ServFail,
            3 => Self::NxDomain,
            4 => Self::NotImp,
            5 => Self::Refused,
            o => Self::Other(o),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoError => write!(f, "NOERROR"),
            Self::FormErr => write!(f, "FORMERR"),
            Self::ServFail => write!(f, "SERVFAIL"),
            Self::NxDomain => write!(f, "NXDOMAIN"),
            Self::NotImp => write!(f, "NOTIMP"),
            Self::Refused => write!(f, "REFUSED"),
            Self::Other(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// Decoded message header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier, echoed by the responder.
    pub id: u16,
    /// True for responses.
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation: the response did not fit the transport.
    pub tc: bool,
    /// Recursion desired (copied into responses).
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A query header with the given id, RD clear (we resolve iteratively).
    pub fn query(id: u16) -> Self {
        Self {
            id,
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: false,
            ra: false,
            rcode: Rcode::NoError,
        }
    }

    fn flags(&self) -> u16 {
        let mut f = 0u16;
        if self.qr {
            f |= 1 << 15;
        }
        f |= (self.opcode.code() as u16) << 11;
        if self.aa {
            f |= 1 << 10;
        }
        if self.tc {
            f |= 1 << 9;
        }
        if self.rd {
            f |= 1 << 8;
        }
        if self.ra {
            f |= 1 << 7;
        }
        f |= self.rcode.code() as u16;
        f
    }

    fn from_flags(id: u16, f: u16) -> Self {
        Self {
            id,
            qr: f & (1 << 15) != 0,
            opcode: Opcode::from_code((f >> 11) as u8),
            aa: f & (1 << 10) != 0,
            tc: f & (1 << 9) != 0,
            rd: f & (1 << 8) != 0,
            ra: f & (1 << 7) != 0,
            rcode: Rcode::from_code(f as u8),
        }
    }
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Name being queried.
    pub qname: Name,
    /// Requested record type.
    pub qtype: RrType,
    /// Requested class (always `IN` here).
    pub qclass: Class,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(qname: Name, qtype: RrType) -> Self {
        Self {
            qname,
            qtype,
            qclass: Class::In,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header with flags.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS/SOA records).
    pub authorities: Vec<Record>,
    /// Additional section (glue).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a single-question query.
    pub fn query(id: u16, question: Question) -> Self {
        Self {
            header: Header::query(id),
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Starts a response to this query: same id and question, QR set,
    /// empty record sections for the responder to fill.
    pub fn answer_template(&self) -> Self {
        let mut header = self.header.clone();
        header.qr = true;
        header.ra = false;
        Self {
            header,
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encodes to wire format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut enc = Encoder::new();
        enc.put_u16(self.header.id);
        enc.put_u16(self.header.flags());
        let count = |n: usize| -> Result<u16, WireError> {
            u16::try_from(n).map_err(|_| WireError::MessageTooLarge)
        };
        enc.put_u16(count(self.questions.len())?);
        enc.put_u16(count(self.answers.len())?);
        enc.put_u16(count(self.authorities.len())?);
        enc.put_u16(count(self.additionals.len())?);
        for q in &self.questions {
            enc.put_name(&q.qname)?;
            enc.put_u16(q.qtype.code());
            enc.put_u16(q.qclass.code());
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            enc.put_record(r)?;
        }
        Ok(enc.finish())
    }

    /// Decodes from wire format. Trailing octets after the declared sections
    /// are tolerated (some middleboxes pad), but truncated sections are not.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        let mut dec = Decoder::new(bytes);
        let id = dec.get_u16()?;
        let flags = dec.get_u16()?;
        let header = Header::from_flags(id, flags);
        let qd = dec.get_u16()? as usize;
        let an = dec.get_u16()? as usize;
        let ns = dec.get_u16()? as usize;
        let ar = dec.get_u16()? as usize;

        let mut questions = Vec::with_capacity(qd.min(16));
        for _ in 0..qd {
            let qname = dec.get_name()?;
            let qtype = RrType::from_code(dec.get_u16()?);
            let qclass = Class::from_code(dec.get_u16()?);
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
        }
        let mut section = |n: usize| -> Result<Vec<Record>, WireError> {
            let mut v = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                v.push(dec.get_record()?);
            }
            Ok(v)
        };
        let answers = section(an)?;
        let authorities = section(ns)?;
        let additionals = section(ar)?;

        Ok(Self {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// All answer-section records of the given type.
    pub fn answers_of(&self, rtype: RrType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rtype() == rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0xBEEF, Question::new(n("www.examp.le"), RrType::Aaaa));
        let bytes = q.to_bytes().unwrap();
        let p = Message::parse(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = Message::query(7, Question::new(n("www.examp.le"), RrType::A));
        let mut r = q.answer_template();
        r.header.aa = true;
        r.answers.push(Record::new(
            n("www.examp.le"),
            Class::In,
            60,
            RData::Cname(n("edge.foob.ar")),
        ));
        r.answers.push(Record::new(
            n("edge.foob.ar"),
            Class::In,
            60,
            RData::A(Ipv4Addr::new(10, 0, 0, 2)),
        ));
        r.authorities.push(Record::new(
            n("foob.ar"),
            Class::In,
            3600,
            RData::Ns(n("ns.foob.ar")),
        ));
        r.additionals.push(Record::new(
            n("ns.foob.ar"),
            Class::In,
            3600,
            RData::A(Ipv4Addr::new(10, 9, 9, 9)),
        ));
        let bytes = r.to_bytes().unwrap();
        let p = Message::parse(&bytes).unwrap();
        assert_eq!(p, r);
        assert!(p.header.aa);
        assert_eq!(p.answers_of(RrType::A).count(), 1);
        assert_eq!(p.answers_of(RrType::Cname).count(), 1);
    }

    #[test]
    fn flags_roundtrip_all_bits() {
        let mut h = Header::query(1);
        h.qr = true;
        h.aa = true;
        h.tc = true;
        h.rd = true;
        h.ra = true;
        h.rcode = Rcode::NxDomain;
        let rebuilt = Header::from_flags(1, h.flags());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn answer_template_echoes_question_and_id() {
        let q = Message::query(99, Question::new(n("a.b"), RrType::Ns));
        let r = q.answer_template();
        assert!(r.header.qr);
        assert_eq!(r.header.id, 99);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn short_buffer_is_truncated_error() {
        assert_eq!(Message::parse(&[0, 1, 2]), Err(WireError::Truncated));
    }

    #[test]
    fn compression_shrinks_realistic_response() {
        let q = Message::query(7, Question::new(n("www.verylongdomainname.com"), RrType::A));
        let mut r = q.answer_template();
        for i in 0..4 {
            r.answers.push(Record::new(
                n("www.verylongdomainname.com"),
                Class::In,
                60,
                RData::A(Ipv4Addr::new(10, 0, 0, i)),
            ));
        }
        let bytes = r.to_bytes().unwrap();
        // Owner name occurs 5 times (1 question + 4 answers); compression
        // should make each repetition 2 octets instead of 28.
        let uncompressed_estimate = 12 + 5 * (28 + 4) + 4 * (4 + 6);
        assert!(
            bytes.len() < uncompressed_estimate - 3 * 26,
            "len={}",
            bytes.len()
        );
        assert_eq!(Message::parse(&bytes).unwrap(), r);
    }

    #[test]
    fn trailing_garbage_tolerated() {
        let q = Message::query(3, Question::new(n("x.y"), RrType::A));
        let mut bytes = q.to_bytes().unwrap();
        bytes.extend_from_slice(&[0xAA; 7]);
        assert_eq!(Message::parse(&bytes).unwrap(), q);
    }
}
