//! # dps-dns — a from-scratch DNS implementation
//!
//! This crate implements the subset of the Domain Name System needed by the
//! IMC 2016 reproduction: domain names, the RFC 1035 wire format (including
//! name compression), the resource-record types used by DDoS-protection
//! detection (`A`, `AAAA`, `NS`, `CNAME`, `SOA`, `MX`, `TXT`) and full
//! message encoding/decoding.
//!
//! It is written in the spirit of `smoltcp`: no dependencies beyond `bytes`,
//! explicit error types, no panics on untrusted input, and exhaustive tests
//! (unit tests per module plus property-based round-trip tests).
//!
//! ## Quick tour
//!
//! ```
//! use dps_dns::{Name, Message, Question, RrType, Class, Record, RData};
//! use std::net::Ipv4Addr;
//!
//! // Build a query.
//! let q = Message::query(0x1234, Question::new("www.examp.le".parse().unwrap(), RrType::A));
//! let bytes = q.to_bytes().unwrap();
//!
//! // Parse it back.
//! let parsed = Message::parse(&bytes).unwrap();
//! assert_eq!(parsed.header.id, 0x1234);
//! assert_eq!(parsed.questions[0].qtype, RrType::A);
//!
//! // Build a response with an answer.
//! let mut resp = q.answer_template();
//! resp.answers.push(Record::new(
//!     "www.examp.le".parse::<Name>().unwrap(),
//!     Class::In,
//!     300,
//!     RData::A(Ipv4Addr::new(10, 0, 0, 1)),
//! ));
//! let wire = resp.to_bytes().unwrap();
//! assert!(Message::parse(&wire).is_ok());
//! ```

pub mod error;
pub mod message;
pub mod name;
pub mod psl;
pub mod rr;
pub mod wire;

pub use error::{NameError, WireError};
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use psl::PublicSuffixList;
pub use rr::{Class, RData, Record, RrType, Soa};
