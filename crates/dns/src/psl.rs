//! Public-suffix-aware registered-domain extraction.
//!
//! The paper detects provider references "based on the second-level domain
//! (SLD) contained therein" — which, on the real Internet, means the label
//! directly under the *public suffix*, not literally the second label:
//! `foo.co.uk`'s registered domain is `foo.co.uk`, not `co.uk`. This module
//! implements the Public Suffix List matching algorithm (longest matching
//! rule, wildcard rules, exception rules) over [`Name`]s.
//!
//! The simulated namespace only uses single-label suffixes, for which
//! [`Name::sld`] is exact; the measurement pipeline nevertheless goes
//! through this API so pointing it at real data with a full PSL is a
//! drop-in change.

use crate::name::Name;
use std::collections::HashSet;

/// A compiled public-suffix list.
#[derive(Debug, Clone, Default)]
pub struct PublicSuffixList {
    /// Exact rules, stored as reversed label paths joined by '.'
    /// (e.g. `uk.co` for the rule `co.uk`).
    rules: HashSet<String>,
    /// Wildcard rules: `*.ck` stored as `ck` (any single label below).
    wildcards: HashSet<String>,
    /// Exception rules: `!www.ck` stored as `ck.www`.
    exceptions: HashSet<String>,
}

fn reversed_key(labels: &[&[u8]]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    parts.reverse();
    parts.join(".")
}

impl PublicSuffixList {
    /// Parses PSL text: one rule per line, `//` comments, blank lines,
    /// `*.` wildcards and `!` exceptions, as in the real list's format.
    pub fn parse(text: &str) -> Self {
        let mut psl = Self::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            if let Some(exc) = line.strip_prefix('!') {
                psl.exceptions.insert(reverse_dotted(exc));
            } else if let Some(wild) = line.strip_prefix("*.") {
                psl.wildcards.insert(reverse_dotted(wild));
            } else {
                psl.rules.insert(reverse_dotted(line));
            }
        }
        psl
    }

    /// A minimal list covering the simulated namespace plus a few real
    /// multi-label suffixes for generality.
    pub fn default_list() -> Self {
        Self::parse(
            "// built-in subset\n\
             com\nnet\norg\nnl\nbiz\nar\nle\ntest\n\
             co.uk\norg.uk\ncom.au\n*.ck\n!www.ck\n",
        )
    }

    /// Number of rules (exact + wildcard + exception).
    pub fn len(&self) -> usize {
        self.rules.len() + self.wildcards.len() + self.exceptions.len()
    }

    /// True if no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length in labels of the public suffix of `name`, per the PSL
    /// algorithm (longest matching rule wins; exceptions beat wildcards;
    /// unknown TLDs match implicitly with one label).
    pub fn suffix_labels(&self, name: &Name) -> usize {
        let labels: Vec<&[u8]> = name.labels().collect();
        let n = labels.len();
        let mut best = 1.min(n); // implicit `*` rule: unknown TLD = 1 label
        for take in 1..=n {
            let Some(tail) = labels.get(n - take..) else {
                break;
            };
            let key = reversed_key(tail);
            if self.exceptions.contains(&key) {
                // Exception: the suffix is one label shorter than the rule.
                return take - 1;
            }
            if self.rules.contains(&key) {
                best = best.max(take);
            }
            // Wildcard `*.<base>`: matches when the base is everything but
            // the leftmost label of the candidate tail.
            if take >= 2 {
                if let Some(rest) = tail.get(1..) {
                    let base = reversed_key(rest);
                    if self.wildcards.contains(&base) {
                        best = best.max(take);
                    }
                }
            }
        }
        best
    }

    /// The registered domain of `name`: public suffix plus one label.
    /// Names at or above a public suffix are returned unchanged.
    pub fn registered_domain(&self, name: &Name) -> Name {
        let suffix = self.suffix_labels(name);
        let want = suffix + 1;
        if name.label_count() <= want {
            return name.clone();
        }
        name.suffix(want)
    }
}

fn reverse_dotted(rule: &str) -> String {
    let mut parts: Vec<&str> = rule.split('.').collect();
    parts.reverse();
    parts.join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn psl() -> PublicSuffixList {
        PublicSuffixList::default_list()
    }

    #[test]
    fn single_label_suffixes_match_sld() {
        let psl = psl();
        for name in ["www.examp.le", "edge.cdn.incapdns.net", "d123.com"] {
            assert_eq!(psl.registered_domain(&n(name)), n(name).sld(), "{name}");
        }
    }

    #[test]
    fn multi_label_suffixes() {
        let psl = psl();
        assert_eq!(psl.registered_domain(&n("www.foo.co.uk")), n("foo.co.uk"));
        assert_eq!(psl.registered_domain(&n("foo.co.uk")), n("foo.co.uk"));
        assert_eq!(
            psl.registered_domain(&n("a.b.site.com.au")),
            n("site.com.au")
        );
    }

    #[test]
    fn suffix_itself_is_returned_unchanged() {
        let psl = psl();
        assert_eq!(psl.registered_domain(&n("co.uk")), n("co.uk"));
        assert_eq!(psl.registered_domain(&n("com")), n("com"));
    }

    #[test]
    fn wildcard_and_exception_rules() {
        let psl = psl();
        // *.ck: every label under ck is a public suffix…
        assert_eq!(
            psl.registered_domain(&n("shop.anything.ck")),
            n("shop.anything.ck")
        );
        // …except the exception rule !www.ck: www.ck is a registrable name.
        assert_eq!(psl.registered_domain(&n("www.ck")), n("www.ck"));
        assert_eq!(psl.registered_domain(&n("deep.www.ck")), n("www.ck"));
    }

    #[test]
    fn unknown_tld_uses_implicit_rule() {
        let psl = psl();
        assert_eq!(psl.registered_domain(&n("www.thing.zz")), n("thing.zz"));
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let psl = PublicSuffixList::parse("// header\n\nuk\nco.uk\n");
        assert_eq!(psl.len(), 2);
        assert_eq!(psl.registered_domain(&n("x.y.co.uk")), n("y.co.uk"));
    }

    #[test]
    fn root_and_tiny_names() {
        let psl = psl();
        assert_eq!(psl.registered_domain(&Name::root()), Name::root());
        assert_eq!(psl.registered_domain(&n("com")), n("com"));
    }
}
