//! Growth analysis (§4.2, Figs. 5–6): large-anomaly cleaning, median
//! smoothing, and normalised growth factors.
//!
//! The paper smooths "shorter and smaller anomalies … by taking the median
//! reference count over a time window of several weeks, while the large
//! anomalies are cleaned manually". Manual cleaning is not reproducible,
//! so this module automates what the authors describe: day-over-day level
//! shifts far outside the robust noise band are detected, and opposite
//! shifts of matching magnitude are paired and subtracted (a transient
//! excursion — a Wix-style peak or plateau — is removed), while unpaired
//! shifts (a Fabulous-style permanent exit) are kept, as the paper keeps
//! its March-2016 dip.

use crate::util::{mad, median_u32};

/// Tunables for the growth analysis.
#[derive(Debug, Clone, Copy)]
pub struct GrowthConfig {
    /// Centered median window (days). The paper says "several weeks".
    pub median_window: usize,
    /// A shift is "large" if it exceeds `mad_factor × MAD(deltas)` …
    pub mad_factor: f64,
    /// … and this fraction of the current level …
    pub min_level_fraction: f64,
    /// … and this absolute floor.
    pub min_absolute: f64,
    /// Two opposite shifts pair if the later one cancels the earlier
    /// within this relative tolerance and within `max_excursion_days`.
    pub pair_tolerance: f64,
    /// Longest excursion that can be cleaned (the Wix plateau is ~124 d).
    pub max_excursion_days: usize,
    /// Whether large-anomaly cleaning runs at all (ablation knob).
    pub clean_anomalies: bool,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        Self {
            median_window: 28,
            mad_factor: 8.0,
            min_level_fraction: 0.004,
            min_absolute: 4.0,
            pair_tolerance: 0.35,
            max_excursion_days: 240,
            clean_anomalies: true,
        }
    }
}

/// The analysis output.
#[derive(Debug, Clone)]
pub struct GrowthAnalysis {
    /// Input days.
    pub days: Vec<u32>,
    /// Raw counts.
    pub raw: Vec<f64>,
    /// After large-anomaly cleaning.
    pub cleaned: Vec<f64>,
    /// After median smoothing.
    pub smoothed: Vec<f64>,
    /// Smoothed series normalised to its first value (the paper's y-axis).
    pub normalized: Vec<f64>,
    /// Final growth factor (last / first of the smoothed series).
    pub factor: f64,
    /// Detected large-shift days `(index, delta)`, for reporting.
    pub shifts: Vec<(usize, f64)>,
    /// Days excluded by the data-quality mask (empty for unmasked runs).
    /// Their values were bridged by interpolation before cleaning, so an
    /// outage trough never registers as a shift or drags the medians.
    pub masked_days: Vec<u32>,
}

/// Runs the §4.2 growth analysis on a daily count series.
pub fn analyze(days: &[u32], series: &[u32], config: &GrowthConfig) -> GrowthAnalysis {
    assert_eq!(days.len(), series.len());
    let raw: Vec<f64> = series.iter().map(|&v| f64::from(v)).collect();
    let (cleaned, shifts) = if config.clean_anomalies && raw.len() > 3 {
        clean_large_anomalies(&raw, config)
    } else {
        (raw.clone(), Vec::new())
    };
    let smoothed = median_smooth(&cleaned, config.median_window);
    let base = smoothed.first().copied().unwrap_or(0.0);
    let normalized: Vec<f64> = smoothed
        .iter()
        .map(|&v| if base > 0.0 { v / base } else { 0.0 })
        .collect();
    let factor = normalized.last().copied().unwrap_or(0.0);
    GrowthAnalysis {
        days: days.to_vec(),
        raw,
        cleaned,
        smoothed,
        normalized,
        factor,
        shifts,
        masked_days: Vec::new(),
    }
}

/// [`analyze`] under a data-quality mask (§4.2 automated): values on
/// `masked_days` are replaced by linear interpolation between the nearest
/// unmasked neighbours *before* anomaly cleaning, so a low-coverage sweep
/// day reads as missing data rather than a mass provider exodus. `raw`
/// keeps the true (unpatched) counts for reporting.
pub fn analyze_masked(
    days: &[u32],
    series: &[u32],
    config: &GrowthConfig,
    masked_days: &[u32],
) -> GrowthAnalysis {
    assert_eq!(days.len(), series.len());
    let mask: std::collections::HashSet<u32> = masked_days.iter().copied().collect();
    let masked_idx: Vec<bool> = days.iter().map(|d| mask.contains(d)).collect();
    let patched = bridge_masked(series, &masked_idx);
    let mut g = analyze(days, &patched, config);
    g.raw = series.iter().map(|&v| f64::from(v)).collect();
    g.masked_days = days.iter().copied().filter(|d| mask.contains(d)).collect();
    g
}

/// Replaces masked positions by linear interpolation between the nearest
/// unmasked neighbours (nearest single neighbour at the edges; zeros if
/// every day is masked).
fn bridge_masked(series: &[u32], masked: &[bool]) -> Vec<u32> {
    let mut out = series.to_vec();
    let n = series.len();
    let mut i = 0;
    while i < n {
        if !masked[i] {
            i += 1;
            continue;
        }
        // The masked run [i, j).
        let mut j = i;
        while j < n && masked[j] {
            j += 1;
        }
        let prev = i.checked_sub(1).map(|p| f64::from(series[p]));
        let next = (j < n).then(|| f64::from(series[j]));
        let span = (j - i + 1) as f64;
        for (k, slot) in out.iter_mut().enumerate().take(j).skip(i) {
            let v = match (prev, next) {
                (Some(a), Some(b)) => a + (b - a) * (k - i + 1) as f64 / span,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => 0.0,
            };
            *slot = v.round().max(0.0) as u32;
        }
        i = j;
    }
    out
}

/// Centered median filter; window is clamped to the series length and
/// truncated at the edges.
pub fn median_smooth(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let half = (window.max(1) - 1) / 2;
    let mut out = Vec::with_capacity(series.len());
    for i in 0..series.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(series.len());
        let mut win: Vec<u32> = series[lo..hi].iter().map(|&v| v.max(0.0) as u32).collect();
        out.push(f64::from(median_u32(&mut win)));
    }
    out
}

/// Detects large level shifts and removes paired (transient) excursions.
fn clean_large_anomalies(raw: &[f64], config: &GrowthConfig) -> (Vec<f64>, Vec<(usize, f64)>) {
    let mut cleaned = raw.to_vec();
    let mut all_shifts = Vec::new();

    // Iterate: removing one excursion may reveal a nested one.
    for _round in 0..8 {
        let deltas: Vec<f64> = cleaned.windows(2).map(|w| w[1] - w[0]).collect();
        let noise = mad(&deltas);
        let level = {
            let mut v: Vec<u32> = cleaned.iter().map(|&x| x.max(0.0) as u32).collect();
            f64::from(median_u32(&mut v))
        };
        let threshold = (config.mad_factor * noise)
            .max(config.min_level_fraction * level)
            .max(config.min_absolute);

        // `shift at index i` means the level changes between day i and i+1.
        let shifts: Vec<(usize, f64)> = deltas
            .iter()
            .enumerate()
            .filter(|(_, &d)| d.abs() > threshold)
            .map(|(i, &d)| (i, d))
            .collect();
        if all_shifts.is_empty() {
            all_shifts = shifts.clone();
        }

        // Pair the first shift with the earliest opposite shift that
        // cancels it within tolerance; subtract the excursion.
        let mut removed_any = false;
        let mut used = vec![false; shifts.len()];
        for a in 0..shifts.len() {
            if used[a] {
                continue;
            }
            let (ia, da) = shifts[a];
            for b in a + 1..shifts.len() {
                if used[b] {
                    continue;
                }
                let (ib, db) = shifts[b];
                if ib - ia > config.max_excursion_days {
                    break;
                }
                if da.signum() != db.signum()
                    && (da + db).abs() <= config.pair_tolerance * da.abs().max(db.abs())
                {
                    // Remove the excursion: interpolate the baseline from
                    // day ia to day ib+1.
                    let start = cleaned[ia];
                    let end = cleaned[ib + 1];
                    let span = (ib + 1 - ia) as f64;
                    for (k, v) in cleaned.iter_mut().enumerate().take(ib + 1).skip(ia + 1) {
                        let t = (k - ia) as f64 / span;
                        *v = start + t * (end - start);
                    }
                    used[a] = true;
                    used[b] = true;
                    removed_any = true;
                    break;
                }
            }
        }
        if !removed_any {
            break;
        }
    }
    (cleaned, all_shifts)
}

#[cfg(test)]
// Index-based loops keep the day arithmetic explicit in fixtures.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn days(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    fn linear(n: usize, start: f64, end: f64) -> Vec<u32> {
        (0..n)
            .map(|i| (start + (end - start) * i as f64 / (n - 1) as f64).round() as u32)
            .collect()
    }

    #[test]
    fn clean_trend_measures_growth_factor() {
        let n = 550;
        let series = linear(n, 5000.0, 6200.0);
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        assert!((g.factor - 1.24).abs() < 0.02, "factor={}", g.factor);
    }

    #[test]
    fn short_peak_is_smoothed_out() {
        let n = 200;
        let mut series = linear(n, 1000.0, 1100.0);
        for day in 50..54 {
            series[day] += 5000; // 4-day anomaly
        }
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        // The smoothed series never jumps by the peak height.
        let max_step = g
            .smoothed
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_step < 100.0, "max step {max_step}");
        assert!((g.factor - 1.1).abs() < 0.05, "factor={}", g.factor);
    }

    #[test]
    fn long_plateau_is_cleaned() {
        // A 124-day plateau like the Wix/Incapsula one: median smoothing
        // alone cannot remove it; the pairing rule must.
        let n = 400;
        let mut series = linear(n, 4000.0, 4400.0);
        for day in 66..190 {
            series[day] += 1100;
        }
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        assert!((g.factor - 1.1).abs() < 0.04, "factor={}", g.factor);
        assert!(!g.shifts.is_empty());
        // The cleaned series should be near the baseline mid-plateau.
        assert!(
            (g.cleaned[120] - 4150.0).abs() < 220.0,
            "cleaned={}",
            g.cleaned[120]
        );
    }

    #[test]
    fn overlapping_anomalies_of_different_magnitude_pair_correctly() {
        // A 1100-domain plateau (days 60..190) overlapping a 700-domain
        // excursion (days 80..95): the ±700 pair must not steal the +1100
        // shift (pair_tolerance guards magnitude mismatch).
        let n = 400;
        let mut series = linear(n, 5000.0, 5200.0);
        for day in 60..190 {
            series[day] += 1100;
        }
        for day in 80..95 {
            series[day] += 700;
        }
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        // Both excursions removed: factor close to the underlying trend.
        assert!((g.factor - 1.04).abs() < 0.03, "factor={}", g.factor);
        assert!(
            (g.cleaned[100] - 5070.0).abs() < 200.0,
            "cleaned={}",
            g.cleaned[100]
        );
    }

    #[test]
    fn permanent_level_change_is_kept() {
        // A Fabulous-style permanent drop must survive cleaning (the paper
        // keeps the March 2016 dip).
        let n = 400;
        let mut series = linear(n, 4000.0, 4000.0);
        for item in series.iter_mut().skip(300) {
            *item -= 800;
        }
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        assert!(g.factor < 0.9, "factor={}", g.factor);
    }

    #[test]
    fn single_day_trough_is_cleaned() {
        // Sedo-style one-day outage.
        let n = 100;
        let mut series = vec![2000u32; n];
        series[50] = 1300;
        let g = analyze(&days(n), &series, &GrowthConfig::default());
        assert!((g.factor - 1.0).abs() < 0.01);
        assert!((g.cleaned[50] - 2000.0).abs() < 1.0);
    }

    #[test]
    fn ablation_no_cleaning_keeps_plateau() {
        let n = 400;
        let mut series = linear(n, 4000.0, 4400.0);
        for day in 150..350 {
            series[day] += 2000;
        }
        let config = GrowthConfig {
            clean_anomalies: false,
            ..GrowthConfig::default()
        };
        let g = analyze(&days(n), &series, &config);
        // Without cleaning the plateau inflates mid-series values.
        assert!(g.smoothed[250] > 5500.0);
    }

    #[test]
    fn masked_outage_day_is_bridged_not_counted() {
        // A full-outage day measures 0 DPS users — analyze() sees a huge
        // trough; analyze_masked() bridges it and reports the day.
        let n = 100;
        let mut series = vec![3000u32; n];
        series[40] = 0;
        let g = analyze_masked(&days(n), &series, &GrowthConfig::default(), &[40]);
        assert_eq!(g.masked_days, vec![40]);
        assert!(
            (g.cleaned[40] - 3000.0).abs() < 1.0,
            "bridged: {}",
            g.cleaned[40]
        );
        assert_eq!(g.raw[40], 0.0, "raw keeps the true measurement");
        assert!((g.factor - 1.0).abs() < 0.01);
    }

    #[test]
    fn masked_run_at_series_edge_uses_nearest_neighbour() {
        let series = vec![0u32, 0, 500, 510, 520, 0];
        let g = analyze_masked(
            &days(6),
            &series,
            &GrowthConfig {
                clean_anomalies: false,
                median_window: 1,
                ..GrowthConfig::default()
            },
            &[0, 1, 5],
        );
        assert_eq!(g.cleaned[0], 500.0);
        assert_eq!(g.cleaned[1], 500.0);
        assert_eq!(g.cleaned[5], 520.0);
        assert_eq!(g.masked_days, vec![0, 1, 5]);
    }

    #[test]
    fn unmasked_analyze_reports_no_masked_days() {
        let g = analyze(&days(10), &[5u32; 10], &GrowthConfig::default());
        assert!(g.masked_days.is_empty());
    }

    #[test]
    fn empty_and_tiny_series() {
        let g = analyze(&[], &[], &GrowthConfig::default());
        assert_eq!(g.factor, 0.0);
        let g = analyze(&[0, 1], &[10, 11], &GrowthConfig::default());
        assert!(g.factor > 0.0);
    }
}
