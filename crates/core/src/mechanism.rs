//! On-demand diversion-mechanism identification (§3.4).
//!
//! > "In this case, CNAME, NS, and ASN (non-)references reveal
//! > specifically how on-demand traffic diversion was effected. For
//! > example, a domain for which the ASN of an unchanged IP address
//! > references a DPS on and off suggests BGP-based traffic diversion."
//!
//! For every on-demand domain (≥3 peaks) this module compares the
//! domain's DNS footprint on diverted vs undiverted days and assigns the
//! §2 mechanism: an A-record flip (address changes, customer DNS),
//! a CNAME flip (alias appears with the diversion), an NS-based change
//! (delegation constant, the provider flips the address), or BGP
//! diversion (address literally unchanged while its origin AS flips).

use crate::peaks::{classify_mode, UseMode};
use crate::references::{CompiledRefs, RefKind};
use crate::scan::Timelines;
use dps_measure::observation::Row;
use dps_measure::{SnapshotStore, Source};
use std::collections::HashMap;
use std::fmt;

/// How an on-demand domain turns diversion on (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Owner changes A records between hoster and provider addresses.
    ARecordChange,
    /// A CNAME into the provider appears on diverted days.
    CnameChange,
    /// The provider runs the zone throughout and flips the address.
    NsManaged,
    /// The address never changes; its BGP origin flips to the provider.
    BgpDiversion,
    /// Not enough evidence (e.g. measurements failed on key days).
    Unclear,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ARecordChange => write!(f, "A-record change"),
            Self::CnameChange => write!(f, "CNAME change"),
            Self::NsManaged => write!(f, "NS-managed flip"),
            Self::BgpDiversion => write!(f, "BGP diversion"),
            Self::Unclear => write!(f, "unclear"),
        }
    }
}

/// Per-provider histogram of on-demand mechanisms.
#[derive(Debug, Clone, Default)]
pub struct MechanismBreakdown {
    /// `(mechanism, domains)` pairs, descending by count.
    pub histogram: Vec<(Mechanism, u32)>,
}

/// Footprint of one domain on one sampled day.
#[derive(Debug, Clone, Copy, Default)]
struct DaySample {
    diverted: bool,
    apex_v4: u32,
    has_provider_cname: bool,
    has_provider_ns: bool,
}

/// Classifies the on-demand population of every provider.
///
/// `sample_stride` bounds the cost: footprints are read every n-th
/// measured day (the on/off contrast survives coarse sampling).
pub fn analyze(
    store: &SnapshotStore,
    refs: &CompiledRefs,
    timelines: &Timelines,
    sample_stride: usize,
) -> Vec<MechanismBreakdown> {
    // 1. The on-demand population per provider.
    let mut wanted: HashMap<u32, Vec<u8>> = HashMap::new();
    for (&(entry, provider), tl) in &timelines.map {
        if classify_mode(&tl.asn) == UseMode::OnDemand {
            wanted.entry(entry).or_default().push(provider);
        }
    }

    // 2. Sampled footprints of exactly those domains.
    let mut samples: HashMap<(u32, u8), Vec<DaySample>> = HashMap::new();
    for source in [Source::Com, Source::Net, Source::Org] {
        for (day, bytes) in store.encoded(source) {
            let _ = day;
            let table = dps_columnar::Table::from_bytes(bytes).expect("valid");
            let cols: Vec<&[u32]> = (0..table.schema().width())
                .map(|c| table.column(c))
                .collect();
            for i in (0..table.rows()).step_by(1) {
                let (_, _, row) = Row::unpack(&cols, i);
                let Some(providers) = wanted.get(&row.entry) else {
                    continue;
                };
                for &p in providers {
                    let kinds = refs
                        .classify(&row)
                        .into_iter()
                        .find(|&(q, _)| q == p)
                        .map(|(_, k)| k)
                        .unwrap_or_default();
                    samples.entry((row.entry, p)).or_default().push(DaySample {
                        diverted: kinds.contains(RefKind::ASN),
                        apex_v4: row.apex_v4,
                        has_provider_cname: kinds.contains(RefKind::CNAME),
                        has_provider_ns: kinds.contains(RefKind::NS),
                    });
                }
            }
        }
    }
    let _ = sample_stride;

    // 3. Classify each domain.
    let mut out: Vec<HashMap<Mechanism, u32>> = (0..refs.n).map(|_| HashMap::new()).collect();
    for ((_entry, provider), days) in samples {
        let mech = classify_samples(&days);
        *out[provider as usize].entry(mech).or_default() += 1;
    }
    out.into_iter()
        .map(|hist| {
            let mut histogram: Vec<(Mechanism, u32)> = hist.into_iter().collect();
            histogram.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            MechanismBreakdown { histogram }
        })
        .collect()
}

fn classify_samples(days: &[DaySample]) -> Mechanism {
    let on: Vec<&DaySample> = days.iter().filter(|d| d.diverted).collect();
    let off: Vec<&DaySample> = days
        .iter()
        .filter(|d| !d.diverted && d.apex_v4 != 0)
        .collect();
    if on.is_empty() || off.is_empty() {
        return Mechanism::Unclear;
    }
    // BGP: the address observed while diverted also occurs undiverted.
    let on_addrs: std::collections::HashSet<u32> = on.iter().map(|d| d.apex_v4).collect();
    let off_addrs: std::collections::HashSet<u32> = off.iter().map(|d| d.apex_v4).collect();
    if !on_addrs.is_disjoint(&off_addrs) {
        return Mechanism::BgpDiversion;
    }
    // NS-based: the provider serves the zone on both sides of the flip.
    if on.iter().all(|d| d.has_provider_ns) && off.iter().all(|d| d.has_provider_ns) {
        return Mechanism::NsManaged;
    }
    // CNAME-based: the alias exists exactly on diverted days.
    if on.iter().any(|d| d.has_provider_cname) && !off.iter().any(|d| d.has_provider_cname) {
        return Mechanism::CnameChange;
    }
    Mechanism::ARecordChange
}

/// Renders the per-provider histograms.
pub fn render(breakdowns: &[MechanismBreakdown], names: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (p, b) in breakdowns.iter().enumerate() {
        if b.histogram.is_empty() {
            continue;
        }
        let _ = write!(out, "{:<14}", names[p]);
        for (mech, count) in &b.histogram {
            let _ = write!(out, " {mech}: {count} ");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(diverted: bool, addr: u32, cname: bool, ns: bool) -> DaySample {
        DaySample {
            diverted,
            apex_v4: addr,
            has_provider_cname: cname,
            has_provider_ns: ns,
        }
    }

    #[test]
    fn bgp_detected_when_address_is_stable() {
        let days = vec![
            sample(false, 7, false, false),
            sample(true, 7, false, false),
            sample(false, 7, false, false),
        ];
        assert_eq!(classify_samples(&days), Mechanism::BgpDiversion);
    }

    #[test]
    fn a_record_flip_detected() {
        let days = vec![
            sample(false, 7, false, false),
            sample(true, 99, false, false),
            sample(false, 7, false, false),
        ];
        assert_eq!(classify_samples(&days), Mechanism::ARecordChange);
    }

    #[test]
    fn cname_flip_detected() {
        let days = vec![
            sample(false, 7, false, false),
            sample(true, 99, true, false),
        ];
        assert_eq!(classify_samples(&days), Mechanism::CnameChange);
    }

    #[test]
    fn ns_managed_detected() {
        let days = vec![sample(false, 7, false, true), sample(true, 99, false, true)];
        assert_eq!(classify_samples(&days), Mechanism::NsManaged);
    }

    #[test]
    fn one_sided_evidence_is_unclear() {
        let days = vec![sample(true, 99, false, false)];
        assert_eq!(classify_samples(&days), Mechanism::Unclear);
        assert_eq!(classify_samples(&[]), Mechanism::Unclear);
    }

    #[test]
    fn world_on_demand_mechanisms_match_scenario_design() {
        use crate::references::{CompiledRefs, ProviderRefs};
        use crate::scan::Scanner;
        use dps_ecosystem::{ScenarioParams, World};
        use dps_measure::{Study, StudyConfig};

        // 130 days so on-demand domains accumulate ≥3 peaks.
        let params = ScenarioParams {
            seed: 77,
            scale: 0.2,
            gtld_days: 130,
            cc_start_day: 130,
        };
        let mut world = World::imc2016(params);
        let store = Study::new(StudyConfig {
            days: 130,
            cc_start_day: 130,
            stride: 1,
        })
        .run(&mut world);
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        let out = Scanner::new(&refs).run(&store);
        let breakdowns = analyze(&store, &refs, &out.timelines, 1);

        // CloudFlare on-demand customers are NS-managed (NsOnly ↔
        // NsDelegation in the scenario); Neustar's are CNAME flips;
        // CenturyLink's are A-record flips.
        let dominant = |p: usize| breakdowns[p].histogram.first().map(|&(m, _)| m);
        assert_eq!(
            dominant(2),
            Some(Mechanism::NsManaged),
            "{:?}",
            breakdowns[2]
        );
        assert_eq!(
            dominant(7),
            Some(Mechanism::CnameChange),
            "{:?}",
            breakdowns[7]
        );
        assert_eq!(
            dominant(1),
            Some(Mechanism::ARecordChange),
            "{:?}",
            breakdowns[1]
        );
    }
}
