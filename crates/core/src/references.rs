//! Provider reference sets (paper Table 2) and their compiled lookup form.

use dps_columnar::StringDict;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a domain references a provider on a given day (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefKind(u8);

impl RefKind {
    /// Origin-AS reference of an A/AAAA address.
    pub const ASN: RefKind = RefKind(1);
    /// Provider SLD in the CNAME expansion.
    pub const CNAME: RefKind = RefKind(2);
    /// Provider SLD in the NS set.
    pub const NS: RefKind = RefKind(4);

    /// No reference.
    pub fn empty() -> Self {
        RefKind(0)
    }

    /// True if no reference bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Sets the bits of `other`.
    pub fn insert(&mut self, other: RefKind) {
        self.0 |= other.0;
    }

    /// True if all bits of `other` are set.
    pub fn contains(self, other: RefKind) -> bool {
        self.0 & other.0 == other.0
    }
}

/// The reference set of one provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderRefs {
    /// Provider name.
    pub name: String,
    /// Mitigation-infrastructure AS numbers.
    pub asns: Vec<u32>,
    /// CNAME second-level domains.
    pub cname_slds: Vec<String>,
    /// NS second-level domains.
    pub ns_slds: Vec<String>,
}

impl ProviderRefs {
    /// The paper's Table 2, from the ecosystem's ground-truth spec.
    pub fn paper_table2() -> Vec<ProviderRefs> {
        dps_ecosystem::spec::PROVIDERS
            .iter()
            .map(|p| ProviderRefs {
                name: p.name.to_string(),
                asns: p.asns.to_vec(),
                cname_slds: p.cname_slds.iter().map(|s| s.to_string()).collect(),
                ns_slds: p.ns_slds.iter().map(|s| s.to_string()).collect(),
            })
            .collect()
    }
}

/// Reference sets compiled against a measurement dictionary for O(1)
/// per-row matching.
#[derive(Debug, Clone)]
pub struct CompiledRefs {
    /// Provider count.
    pub n: usize,
    /// Provider names, by index.
    pub names: Vec<String>,
    asn_to_provider: HashMap<u32, u8>,
    cname_to_provider: HashMap<u32, u8>,
    ns_to_provider: HashMap<u32, u8>,
}

impl CompiledRefs {
    /// Compiles reference sets against `dict` (SLDs not present in the
    /// dictionary can never match and are skipped).
    pub fn compile(refs: &[ProviderRefs], dict: &StringDict) -> Self {
        let mut asn_to_provider = HashMap::new();
        let mut cname_to_provider = HashMap::new();
        let mut ns_to_provider = HashMap::new();
        for (i, r) in refs.iter().enumerate() {
            for &a in &r.asns {
                asn_to_provider.insert(a, i as u8);
            }
            for s in &r.cname_slds {
                if let Some(id) = dict.get(s) {
                    cname_to_provider.insert(id, i as u8);
                }
            }
            for s in &r.ns_slds {
                if let Some(id) = dict.get(s) {
                    ns_to_provider.insert(id, i as u8);
                }
            }
        }
        Self {
            n: refs.len(),
            names: refs.iter().map(|r| r.name.clone()).collect(),
            asn_to_provider,
            cname_to_provider,
            ns_to_provider,
        }
    }

    /// Provider referenced by an origin AS.
    pub fn provider_of_asn(&self, asn: u32) -> Option<u8> {
        if asn == 0 {
            return None;
        }
        self.asn_to_provider.get(&asn).copied()
    }

    /// Provider referenced by a CNAME SLD dictionary id.
    pub fn provider_of_cname(&self, sld_id: u32) -> Option<u8> {
        if sld_id == 0 {
            return None;
        }
        self.cname_to_provider.get(&sld_id).copied()
    }

    /// Provider referenced by an NS SLD dictionary id.
    pub fn provider_of_ns(&self, sld_id: u32) -> Option<u8> {
        if sld_id == 0 {
            return None;
        }
        self.ns_to_provider.get(&sld_id).copied()
    }

    /// Classifies one measurement row into per-provider reference kinds.
    /// Returns `(provider, kinds)` pairs; use is counted once per SLD, so
    /// two matching NS records still yield one NS bit (paper footnote 9).
    pub fn classify(&self, row: &dps_measure::observation::Row) -> Vec<(u8, RefKind)> {
        let mut found: Vec<(u8, RefKind)> = Vec::new();
        let mut add = |p: u8, k: RefKind| {
            if let Some(slot) = found.iter_mut().find(|(q, _)| *q == p) {
                slot.1.insert(k);
            } else {
                let mut r = RefKind::empty();
                r.insert(k);
                found.push((p, r));
            }
        };
        if row.failed {
            return found;
        }
        for asn in [row.asn1, row.asn2, row.www_asn, row.aaaa_asn] {
            if let Some(p) = self.provider_of_asn(asn) {
                add(p, RefKind::ASN);
            }
        }
        for sld in [row.cname1, row.cname2] {
            if let Some(p) = self.provider_of_cname(sld) {
                add(p, RefKind::CNAME);
            }
        }
        for sld in [row.ns1, row.ns2] {
            if let Some(p) = self.provider_of_ns(sld) {
                add(p, RefKind::NS);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_measure::observation::Row;

    fn compiled() -> (CompiledRefs, StringDict) {
        let mut dict = StringDict::new();
        let cf_net = dict.intern("cloudflare.net");
        let cf_com = dict.intern("cloudflare.com");
        let _ = (cf_net, cf_com);
        dict.intern("incapdns.net");
        let refs = ProviderRefs::paper_table2();
        let compiled = CompiledRefs::compile(&refs, &dict);
        (compiled, dict)
    }

    #[test]
    fn table2_has_nine_providers_with_expected_asns() {
        let refs = ProviderRefs::paper_table2();
        assert_eq!(refs.len(), 9);
        let cf = refs.iter().find(|r| r.name == "CloudFlare").unwrap();
        assert_eq!(cf.asns, vec![13335]);
        assert_eq!(cf.cname_slds, vec!["cloudflare.net"]);
        let l3 = refs.iter().find(|r| r.name == "Level 3").unwrap();
        assert_eq!(l3.asns.len(), 4);
        assert!(l3.cname_slds.is_empty());
    }

    #[test]
    fn classify_combines_kinds_per_provider() {
        let (compiled, dict) = compiled();
        let row = Row {
            asn1: 13335,
            cname1: dict.get("cloudflare.net").unwrap(),
            ns1: dict.get("cloudflare.com").unwrap(),
            ..Row::default()
        };
        let found = compiled.classify(&row);
        assert_eq!(found.len(), 1);
        let (p, kinds) = found[0];
        assert_eq!(compiled.names[p as usize], "CloudFlare");
        assert!(kinds.contains(RefKind::ASN));
        assert!(kinds.contains(RefKind::CNAME));
        assert!(kinds.contains(RefKind::NS));
    }

    #[test]
    fn classify_separates_providers() {
        let (compiled, dict) = compiled();
        let row = Row {
            asn1: 19551, // Incapsula AS
            cname1: dict.get("incapdns.net").unwrap(),
            ns1: dict.get("cloudflare.com").unwrap(), // CloudFlare NS
            ..Row::default()
        };
        let found = compiled.classify(&row);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn failed_rows_reference_nothing() {
        let (compiled, _) = compiled();
        let row = Row {
            failed: true,
            asn1: 13335,
            ..Row::default()
        };
        assert!(compiled.classify(&row).is_empty());
    }

    #[test]
    fn null_ids_never_match() {
        let (compiled, _) = compiled();
        assert_eq!(compiled.provider_of_cname(0), None);
        assert_eq!(compiled.provider_of_ns(0), None);
        assert_eq!(compiled.provider_of_asn(0), None);
    }
}
