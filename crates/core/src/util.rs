//! Small utilities: day bitsets and robust statistics.

/// A fixed-capacity bitset indexed by measured-day position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DayBits {
    words: Vec<u64>,
    len: usize,
}

impl DayBits {
    /// A bitset for `len` days, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of day slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no day slots exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets day `i`. Out-of-range days are ignored.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        if let Some(w) = self.words.get_mut(i / 64) {
            *w |= 1 << (i % 64);
        }
    }

    /// Reads day `i`. Out-of-range days read as unset.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of set days.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// First set day, if any.
    pub fn first(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate() {
            if *word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Last set day, if any.
    pub fn last(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate().rev() {
            if *word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    /// Maximal runs of consecutive set days as `(start, len)` pairs.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = None;
        for i in 0..self.len {
            match (self.get(i), start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push((s, i - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s, self.len - s));
        }
        out
    }

    /// True if the set days form one contiguous block (no gap days between
    /// first and last) — the paper's always-on criterion.
    pub fn is_gapless(&self) -> bool {
        match (self.first(), self.last()) {
            (Some(f), Some(l)) => self.count() == l - f + 1,
            _ => true,
        }
    }
}

/// Median of a slice (averaging is not needed: we keep the lower median to
/// stay integral, which is irrelevant at series scale).
pub fn median_u32(values: &mut [u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mid = values.len() / 2;
    *values.select_nth_unstable(mid).1
}

/// Median absolute deviation of a f64 slice around its median.
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let med = v[v.len() / 2];
    let mut dev: Vec<f64> = v.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    dev[dev.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = DayBits::new(130);
        for i in [0usize, 63, 64, 129] {
            b.set(i);
        }
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 4);
        assert_eq!(b.first(), Some(0));
        assert_eq!(b.last(), Some(129));
    }

    #[test]
    fn runs_and_gaplessness() {
        let mut b = DayBits::new(20);
        for i in 3..8 {
            b.set(i);
        }
        for i in 12..14 {
            b.set(i);
        }
        assert_eq!(b.runs(), vec![(3, 5), (12, 2)]);
        assert!(!b.is_gapless());

        let mut c = DayBits::new(10);
        for i in 2..9 {
            c.set(i);
        }
        assert!(c.is_gapless());
        assert_eq!(c.runs(), vec![(2, 7)]);

        let empty = DayBits::new(5);
        assert!(empty.is_gapless());
        assert!(empty.runs().is_empty());
    }

    #[test]
    fn run_to_the_end_is_closed() {
        let mut b = DayBits::new(6);
        b.set(4);
        b.set(5);
        assert_eq!(b.runs(), vec![(4, 2)]);
    }

    #[test]
    fn median_works() {
        let mut v = vec![5u32, 1, 9, 3, 7];
        assert_eq!(median_u32(&mut v), 5);
        let mut v = vec![4u32, 2];
        assert_eq!(median_u32(&mut v), 4); // upper of the two mids
        assert_eq!(median_u32(&mut []), 0);
    }

    #[test]
    fn mad_is_robust() {
        let values = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert_eq!(mad(&values), 0.0);
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mad(&values), 1.0);
    }
}
