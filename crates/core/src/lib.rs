//! # dps-core — the IMC 2016 detection methodology
//!
//! This crate is the paper's primary contribution, implemented as a
//! library over the measurement archive produced by `dps-measure`:
//!
//! * [`references`] — per-provider reference sets (AS numbers, CNAME SLDs,
//!   NS SLDs; paper Table 2) and their compiled lookup form,
//! * [`scan`] — the single pass that classifies every domain-day into
//!   per-provider use with a method breakdown (§3.3) and produces daily
//!   series plus per-domain reference timelines,
//! * [`discovery`] — the iterative seed-expansion procedure that derives
//!   the reference sets from the data itself (§3.3, regenerates Table 2),
//! * [`growth`] — median smoothing, large-anomaly cleaning and growth
//!   factors (§4.2, Figs. 5–6),
//! * [`peaks`] — always-on/on-demand classification and peak-duration
//!   CDFs (§3.4, §4.4.3, Fig. 8),
//! * [`flux`] — first-seen/last-seen influx/outflux in two-week windows
//!   (§4.4.2, Fig. 7),
//! * [`quality`] — per-day coverage gating from the archive's DayQuality
//!   records (the automated §4.2 cleaning; masked days are bridged in
//!   [`growth`] and ignored in [`flux`]),
//! * [`attribution`] — tracing anomalies to third parties via shared
//!   NS/CNAME SLDs of the domains that flipped (§4.4.1),
//! * [`combinations`] — the reference-combination breakdown ("not only
//!   if, but how", §3.3),
//! * [`mechanism`] — identifying how on-demand diversion was effected
//!   (A record / CNAME / NS-managed / BGP, §3.4),
//! * [`report`] — text/CSV builders for every table and figure.

pub mod attribution;
pub mod combinations;
pub mod discovery;
pub mod flux;
pub mod growth;
pub mod mechanism;
pub mod peaks;
pub mod quality;
pub mod references;
pub mod report;
pub mod scan;
pub mod util;

pub use quality::{QualityMask, DEFAULT_MIN_COVERAGE};
pub use references::{CompiledRefs, ProviderRefs, RefKind};
pub use scan::{ScanOutput, Scanner, SeriesSet, Timelines};
