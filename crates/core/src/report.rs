//! Text and CSV builders for every table and figure in the paper.

use crate::flux::FluxSeries;
use crate::growth::GrowthAnalysis;
use crate::peaks::PeakDistribution;
use crate::quality::QualityMask;
use crate::references::ProviderRefs;
use crate::scan::SeriesSet;
use dps_measure::{SnapshotStore, SOURCES};
use dps_netsim::Day;
use std::fmt::Write as _;

/// Pretty-prints a count like the paper (`161.2M`, `534.5G`).
pub fn human_count(v: f64) -> String {
    let (val, unit) = if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    format!("{val:.1}{unit}")
}

/// Pretty-prints a byte size (`17.5TiB`, `2.1GiB`).
pub fn human_bytes(v: u64) -> String {
    let v = v as f64;
    for (limit, unit) in [
        (1u64 << 40, "TiB"),
        (1 << 30, "GiB"),
        (1 << 20, "MiB"),
        (1 << 10, "KiB"),
    ] {
        if v >= limit as f64 {
            return format!("{:.1}{unit}", v / limit as f64);
        }
    }
    format!("{v:.0}B")
}

/// Table 1: data-set statistics per source.
pub fn table1(store: &SnapshotStore) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "Source", "start", "days", "#SLDs", "#DPs", "size", "(raw)"
    );
    let mut total_slds = 0u64;
    let mut total_dps = 0u64;
    let mut total_size = 0u64;
    for source in SOURCES {
        let st = store.stats(source);
        let start = st
            .first_day
            .map(|d| Day(d).date().to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>6} {:>9} {:>9} {:>10} {:>10}",
            source.label(),
            start,
            st.days,
            human_count(st.unique_slds.len() as f64),
            human_count(st.data_points as f64),
            human_bytes(st.stored_bytes),
            human_bytes(st.raw_bytes),
        );
        total_slds += st.unique_slds.len() as u64;
        total_dps += st.data_points;
        total_size += st.stored_bytes;
    }
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>6} {:>9} {:>9} {:>10}",
        "Total",
        "",
        "",
        human_count(total_slds as f64),
        human_count(total_dps as f64),
        human_bytes(total_size),
    );
    out
}

/// Data-quality summary: per-source coverage, failure census, and the
/// days a [`QualityMask`] gates out (the automated §4.2 cleaning log).
pub fn quality_summary(store: &SnapshotStore, mask: &QualityMask) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7}  masked days",
        "Source", "days", "min cov", "failed", "retried", "recov", "t/o", "unrch", "hedges"
    );
    for source in SOURCES {
        let qualities = store.qualities(source);
        if qualities.is_empty() {
            continue;
        }
        let min_cov = qualities
            .iter()
            .map(|q| q.coverage())
            .fold(f64::INFINITY, f64::min);
        let sum = |f: fn(&dps_measure::DayQuality) -> u32| -> u64 {
            qualities.iter().map(|q| u64::from(f(q))).sum()
        };
        let masked = mask.masked_days(source);
        let masked_str = if masked.is_empty() {
            "-".to_string()
        } else {
            masked
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>8.2}% {:>8} {:>8} {:>8} {:>7} {:>7} {:>7}  {}",
            source.label(),
            qualities.len(),
            min_cov * 100.0,
            sum(|q| q.failed),
            sum(|q| q.retried),
            sum(|q| q.recovered),
            sum(|q| q.causes.timeouts),
            sum(|q| q.causes.unreachable),
            sum(|q| q.hedges),
            masked_str,
        );
    }
    if out.lines().count() <= 1 {
        out.push_str("(no quality records in this archive)\n");
    } else {
        let _ = writeln!(
            out,
            "mask: coverage < {:.1}% on {} (day, source) cells",
            mask.min_coverage() * 100.0,
            mask.len()
        );
    }
    out
}

/// Table 2: provider references.
pub fn table2(refs: &[ProviderRefs]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<28} {:<44} NS SLD(s)",
        "Provider", "AS number(s)", "CNAME SLD(s)"
    );
    for r in refs {
        let asns = r
            .asns
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{:<14} {:<28} {:<44} {}",
            r.name,
            asns,
            if r.cname_slds.is_empty() {
                "—".into()
            } else {
                r.cname_slds.join(", ")
            },
            if r.ns_slds.is_empty() {
                "—".into()
            } else {
                r.ns_slds.join(", ")
            },
        );
    }
    out
}

/// Table 2 discovered-vs-truth comparison; returns the text and the number
/// of exact per-provider matches.
pub fn table2_comparison(found: &[ProviderRefs], truth: &[ProviderRefs]) -> (String, usize) {
    let mut out = String::new();
    let mut exact = 0usize;
    for (f, t) in found.iter().zip(truth) {
        let mut fa = f.asns.clone();
        fa.sort_unstable();
        let mut ta = t.asns.clone();
        ta.sort_unstable();
        let sort = |v: &[String]| {
            let mut v = v.to_vec();
            v.sort();
            v
        };
        let asns_ok = fa == ta;
        let cname_ok = sort(&f.cname_slds) == sort(&t.cname_slds);
        let ns_ok = sort(&f.ns_slds) == sort(&t.ns_slds);
        if asns_ok && cname_ok && ns_ok {
            exact += 1;
        }
        let mark = |ok: bool| if ok { "ok" } else { "DIFF" };
        let _ = writeln!(
            out,
            "{:<14} asns:{:<5} cname:{:<5} ns:{:<5}",
            t.name,
            mark(asns_ok),
            mark(cname_ok),
            mark(ns_ok)
        );
        if !asns_ok {
            let _ = writeln!(out, "    asns found {fa:?} vs truth {ta:?}");
        }
        if !cname_ok {
            let _ = writeln!(
                out,
                "    cname found {:?} vs truth {:?}",
                sort(&f.cname_slds),
                sort(&t.cname_slds)
            );
        }
        if !ns_ok {
            let _ = writeln!(
                out,
                "    ns found {:?} vs truth {:?}",
                sort(&f.ns_slds),
                sort(&t.ns_slds)
            );
        }
    }
    (out, exact)
}

/// Footnote-10 analysis: the distinct NS host names referenced by one
/// provider's delegated domains on a single day, with reference counts —
/// "There are 403 such names on April 30th, 2016, with
/// kate.ns.cloudflare.com the most-referenced (by 112k domains)".
pub fn ns_host_census(
    store: &SnapshotStore,
    refs: &crate::references::CompiledRefs,
    provider: u8,
    day: u32,
) -> Vec<(String, u32)> {
    use dps_measure::observation::Row;
    use dps_measure::Source;
    let mut hist: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for source in [Source::Com, Source::Net, Source::Org] {
        if let Some(table) = store.table(day, source) {
            let cols: Vec<&[u32]> = (0..table.schema().width())
                .map(|c| table.column(c))
                .collect();
            for i in 0..table.rows() {
                let (_, _, row) = Row::unpack(&cols, i);
                let delegated = [row.ns1, row.ns2]
                    .iter()
                    .any(|&sld| refs.provider_of_ns(sld) == Some(provider));
                if delegated {
                    for host in [row.nsh1, row.nsh2] {
                        if host != 0 {
                            *hist.entry(host).or_default() += 1;
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<(String, u32)> = hist
        .into_iter()
        .map(|(id, c)| (store.dict.resolve(id).unwrap_or("?").to_string(), c))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

fn date_of(day: u32) -> String {
    Day(day).date().to_string()
}

/// Fig. 2 CSV: date, com, net, org, combined.
pub fn fig2_csv(series: &SeriesSet) -> String {
    let mut out = String::from("date,com,net,org,combined\n");
    let combined = series.combined_any();
    for (i, &day) in series.days.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            date_of(day),
            series.tld_any[0][i],
            series.tld_any[1][i],
            series.tld_any[2][i],
            combined[i]
        );
    }
    out
}

/// Fig. 3 CSV: per provider, total plus AS/CNAME/NS breakdown.
pub fn fig3_csv(series: &SeriesSet, names: &[String]) -> String {
    let mut out = String::from("date,provider,any,asn,cname,ns\n");
    for (p, name) in names.iter().enumerate() {
        for (i, &day) in series.days.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                date_of(day),
                name,
                series.provider_any[p][i],
                series.provider_asn[p][i],
                series.provider_cname[p][i],
                series.provider_ns[p][i]
            );
        }
    }
    out
}

/// Fig. 4: average namespace distribution vs DPS-use distribution over the
/// three gTLDs. Returns `((ns_com, ns_net, ns_org), (dps_com, dps_net,
/// dps_org))` as percentages, plus a text rendering.
pub fn fig4(series: &SeriesSet) -> (([f64; 3], [f64; 3]), String) {
    let mut ns = [0f64; 3];
    let mut dps = [0f64; 3];
    let n = series.days.len().max(1) as f64;
    for i in 0..series.days.len() {
        let zone_total: f64 = (0..3).map(|s| f64::from(series.zone_sizes[s][i])).sum();
        let dps_total: f64 = (0..3).map(|s| f64::from(series.tld_any[s][i])).sum();
        for s in 0..3 {
            if zone_total > 0.0 {
                ns[s] += f64::from(series.zone_sizes[s][i]) / zone_total / n;
            }
            if dps_total > 0.0 {
                dps[s] += f64::from(series.tld_any[s][i]) / dps_total / n;
            }
        }
    }
    let text = format!(
        "Namespace distribution: com {:.2}%  net {:.2}%  org {:.2}%\n\
         DPS use distribution:   com {:.2}%  net {:.2}%  org {:.2}%\n",
        ns[0] * 100.0,
        ns[1] * 100.0,
        ns[2] * 100.0,
        dps[0] * 100.0,
        dps[1] * 100.0,
        dps[2] * 100.0
    );
    ((ns.map(|v| v * 100.0), dps.map(|v| v * 100.0)), text)
}

/// Growth CSV (Figs. 5–6): date and the normalised series of each labelled
/// analysis.
pub fn growth_csv(analyses: &[(&str, &GrowthAnalysis)]) -> String {
    let mut out = String::from("date");
    for (label, _) in analyses {
        let _ = write!(out, ",{label}");
    }
    out.push('\n');
    if let Some((_, first)) = analyses.first() {
        for (i, &day) in first.days.iter().enumerate() {
            let _ = write!(out, "{}", date_of(day));
            for (_, g) in analyses {
                let v = g.normalized.get(i).copied().unwrap_or(f64::NAN);
                let _ = write!(out, ",{v:.4}");
            }
            out.push('\n');
        }
    }
    out
}

/// Fig. 7 CSV: per provider, window start date, influx, outflux, delta.
pub fn fig7_csv(flux: &[FluxSeries], names: &[String], days: &[u32]) -> String {
    let mut out = String::from("provider,window_start,influx,outflux,delta\n");
    for (p, series) in flux.iter().enumerate() {
        for (w, &start) in series.window_starts.iter().enumerate() {
            let day = days.get(start).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                names[p],
                date_of(day),
                series.influx[w],
                series.outflux[w],
                i64::from(series.influx[w]) - i64::from(series.outflux[w])
            );
        }
    }
    out
}

/// Fig. 8: per-provider peak-duration CDFs with the paper-style
/// 80th-percentile marker; text summary plus CSV of the CDF points.
pub fn fig8(dists: &[PeakDistribution], names: &[String]) -> (String, String) {
    let mut summary = String::new();
    let mut csv = String::from("provider,duration_days,cdf\n");
    for (p, dist) in dists.iter().enumerate() {
        let p80 = dist.quantile(0.8);
        let _ = writeln!(
            summary,
            "{:<14} on-demand domains: {:>5}  always-on: {:>5}  peaks: {:>6}  p80: {}",
            names[p],
            dist.domains,
            dist.always_on,
            dist.durations.len(),
            p80.map(|d| format!("{d}d")).unwrap_or_else(|| "-".into()),
        );
        let maxd = dist.durations.last().copied().unwrap_or(0);
        let mut d = 1u32;
        while d <= maxd {
            let _ = writeln!(csv, "{},{},{:.4}", names[p], d, dist.cdf(d));
            d += 1.max(maxd / 120);
        }
    }
    (summary, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humanize() {
        assert_eq!(human_count(161_200_000.0), "161.2M");
        assert_eq!(human_count(534.0), "534.0");
        assert_eq!(human_count(62_400.0), "62.4k");
        assert_eq!(human_bytes(19_241_453_486_080), "17.5TiB");
        assert_eq!(human_bytes(100), "100B");
    }

    #[test]
    fn table2_renders_paper_truth() {
        let truth = ProviderRefs::paper_table2();
        let text = table2(&truth);
        assert!(text.contains("CloudFlare"));
        assert!(text.contains("13335"));
        assert!(text.contains("incapdns.net"));
        assert!(text.contains("—"), "providers without SLDs render a dash");
    }

    #[test]
    fn table2_comparison_counts_matches() {
        let truth = ProviderRefs::paper_table2();
        let (text, exact) = table2_comparison(&truth, &truth);
        assert_eq!(exact, 9);
        assert!(!text.contains("DIFF"));
        let mut broken = truth.clone();
        broken[0].asns.pop();
        let (text, exact) = table2_comparison(&broken, &truth);
        assert_eq!(exact, 8);
        assert!(text.contains("DIFF"));
    }

    #[test]
    fn fig4_percentages_sum_to_100() {
        let mut series = SeriesSet {
            days: vec![0, 1],
            zone_sizes: vec![
                vec![80, 80],
                vec![12, 12],
                vec![8, 8],
                vec![0, 0],
                vec![0, 0],
            ],
            provider_any: vec![],
            provider_asn: vec![],
            provider_cname: vec![],
            provider_ns: vec![],
            tld_any: vec![vec![9, 9], vec![1, 1], vec![0, 0]],
            source_any: vec![vec![0, 0]; 5],
        };
        series.source_any[0] = vec![9, 9];
        let ((ns, dps), text) = fig4(&series);
        assert!((ns.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        assert!((dps.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        assert!((ns[0] - 80.0).abs() < 1e-6);
        assert!((dps[0] - 90.0).abs() < 1e-6);
        assert!(text.contains("com"));
    }
}
