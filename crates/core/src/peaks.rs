//! Always-on vs. on-demand use (§3.4) and peak-duration analysis (§4.4.3,
//! Fig. 8).
//!
//! A *peak* is a maximal run of consecutive days on which a domain
//! references a provider by ASN (i.e. traffic is actually diverted). The
//! paper deems use always-on when the ASN reference has no gap days, and
//! estimates the on-demand population as domains with at least three
//! peaks; single- or double-peak domains are left unclassified ("could
//! either be a short-lived always-on customer, or brief on-demand use").

use crate::scan::Timelines;

/// How a domain uses a provider over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseMode {
    /// ASN reference present without gap days.
    AlwaysOn,
    /// ≥ 3 distinct diversion peaks.
    OnDemand,
    /// 2 peaks: switching, but below the on-demand evidence bar.
    Ambiguous,
    /// References without any ASN reference (e.g. managed DNS only).
    NeverDiverted,
}

/// Classifies one ASN-reference timeline.
pub fn classify_mode(asn_bits: &crate::util::DayBits) -> UseMode {
    let runs = asn_bits.runs();
    match runs.len() {
        0 => UseMode::NeverDiverted,
        1 => UseMode::AlwaysOn,
        2 => UseMode::Ambiguous,
        _ => UseMode::OnDemand,
    }
}

/// Peak-duration distribution of one provider's on-demand population.
#[derive(Debug, Clone, Default)]
pub struct PeakDistribution {
    /// Number of on-demand domains (≥3 peaks).
    pub domains: usize,
    /// Counts per use mode over all referencing domains.
    pub always_on: usize,
    /// See [`UseMode::Ambiguous`].
    pub ambiguous: usize,
    /// Domains excluded as part of a synchronised third-party block.
    pub synchronized: usize,
    /// All peak durations (days) of the on-demand population, sorted.
    pub durations: Vec<u32>,
}

impl PeakDistribution {
    /// Empirical CDF evaluated at `x` days.
    pub fn cdf(&self, x: u32) -> f64 {
        if self.durations.is_empty() {
            return 0.0;
        }
        let below = self.durations.partition_point(|&d| d <= x);
        below as f64 / self.durations.len() as f64
    }

    /// The duration at which the CDF reaches `q` (e.g. 0.8 for the paper's
    /// per-provider markers).
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.durations.is_empty() {
            return None;
        }
        let idx =
            ((self.durations.len() as f64 * q).ceil() as usize).clamp(1, self.durations.len());
        Some(self.durations[idx - 1])
    }
}

/// Computes per-provider peak distributions from the scan timelines.
///
/// `measure_stride` converts run lengths (in measured-day positions) back
/// to calendar days when the study was run with a stride. Third-party
/// blocks — `sync_threshold` or more domains flipping with *identical*
/// peak signatures (a Wix or an ENOM, §4.4.1) — are excluded from the
/// on-demand population, as the paper's Fig. 8 excludes them: their peaks
/// reflect one operator's decision, not per-customer mitigation behaviour.
pub fn analyze(
    timelines: &Timelines,
    n_providers: usize,
    measure_stride: u32,
) -> Vec<PeakDistribution> {
    analyze_with(timelines, n_providers, measure_stride, 20)
}

/// [`analyze`] with an explicit synchronised-block exclusion threshold
/// (`0` disables the exclusion).
pub fn analyze_with(
    timelines: &Timelines,
    n_providers: usize,
    measure_stride: u32,
    sync_threshold: usize,
) -> Vec<PeakDistribution> {
    // Count identical (provider, runs) signatures.
    let mut signature_counts: std::collections::HashMap<(u8, Vec<(usize, usize)>), usize> =
        std::collections::HashMap::new();
    if sync_threshold > 0 {
        for (&(_, provider), tl) in &timelines.map {
            let runs = tl.asn.runs();
            if runs.len() >= 3 {
                *signature_counts.entry((provider, runs)).or_default() += 1;
            }
        }
    }

    let mut out: Vec<PeakDistribution> = (0..n_providers)
        .map(|_| PeakDistribution::default())
        .collect();
    for (&(_entry, provider), tl) in &timelines.map {
        let dist = &mut out[provider as usize];
        match classify_mode(&tl.asn) {
            UseMode::AlwaysOn => dist.always_on += 1,
            UseMode::Ambiguous => dist.ambiguous += 1,
            UseMode::NeverDiverted => {}
            UseMode::OnDemand => {
                let runs = tl.asn.runs();
                if sync_threshold > 0 {
                    let synced = signature_counts
                        .get(&(provider, runs.clone()))
                        .is_some_and(|&c| c >= sync_threshold);
                    if synced {
                        dist.synchronized += 1;
                        continue;
                    }
                }
                dist.domains += 1;
                for (_, len) in runs {
                    dist.durations.push(len as u32 * measure_stride.max(1));
                }
            }
        }
    }
    for dist in &mut out {
        dist.durations.sort_unstable();
    }
    out
}

#[cfg(test)]
// Tests build literal `vec![a..b]` range fixtures on purpose.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::scan::Timeline;
    use crate::util::DayBits;
    use std::collections::HashMap;

    fn bits(days: usize, set: &[std::ops::Range<usize>]) -> DayBits {
        let mut b = DayBits::new(days);
        for r in set {
            for i in r.clone() {
                b.set(i);
            }
        }
        b
    }

    fn tl(asn: DayBits) -> Timeline {
        let n = asn.len();
        Timeline {
            any: asn.clone(),
            asn,
            cname: DayBits::new(n),
            ns: DayBits::new(n),
        }
    }

    #[test]
    fn mode_classification() {
        assert_eq!(classify_mode(&bits(30, &[])), UseMode::NeverDiverted);
        assert_eq!(classify_mode(&bits(30, &[0..30])), UseMode::AlwaysOn);
        assert_eq!(classify_mode(&bits(30, &[5..20])), UseMode::AlwaysOn);
        assert_eq!(
            classify_mode(&bits(30, &[2..5, 10..12])),
            UseMode::Ambiguous
        );
        assert_eq!(
            classify_mode(&bits(30, &[2..5, 10..12, 20..29])),
            UseMode::OnDemand
        );
    }

    #[test]
    fn distribution_collects_durations() {
        let mut map = HashMap::new();
        map.insert((0u32, 0u8), tl(bits(60, &[0..3, 10..14, 30..35])));
        map.insert((2u32, 0u8), tl(bits(60, &[0..60])));
        map.insert((4u32, 0u8), tl(bits(60, &[1..2, 6..8])));
        let timelines = Timelines {
            days: (0..60).collect(),
            map,
        };
        let dists = analyze(&timelines, 2, 1);
        let d = &dists[0];
        assert_eq!(d.domains, 1);
        assert_eq!(d.always_on, 1);
        assert_eq!(d.ambiguous, 1);
        assert_eq!(d.durations, vec![3, 4, 5]);
        assert_eq!(dists[1].domains, 0);
    }

    #[test]
    fn cdf_and_quantile() {
        let d = PeakDistribution {
            durations: vec![1, 2, 2, 3, 10],
            ..Default::default()
        };
        assert_eq!(d.cdf(0), 0.0);
        assert_eq!(d.cdf(2), 0.6);
        assert_eq!(d.cdf(10), 1.0);
        assert_eq!(d.quantile(0.8), Some(3));
        assert_eq!(d.quantile(1.0), Some(10));
        assert_eq!(PeakDistribution::default().quantile(0.8), None);
    }

    #[test]
    fn synchronized_blocks_are_excluded() {
        // 25 domains flipping in perfect lockstep (a Wix) + 2 independent
        // on-demand domains.
        let mut map = HashMap::new();
        for e in 0..25u32 {
            map.insert((e, 0u8), tl(bits(60, &[5..10, 20..30, 40..45])));
        }
        map.insert((100u32, 0u8), tl(bits(60, &[1..3, 9..11, 30..33])));
        map.insert((101u32, 0u8), tl(bits(60, &[2..4, 15..16, 50..55])));
        let timelines = Timelines {
            days: (0..60).collect(),
            map,
        };

        let with_exclusion = analyze_with(&timelines, 1, 1, 20);
        assert_eq!(with_exclusion[0].synchronized, 25);
        assert_eq!(with_exclusion[0].domains, 2);
        assert_eq!(with_exclusion[0].durations.len(), 6);

        let without = analyze_with(&timelines, 1, 1, 0);
        assert_eq!(without[0].domains, 27);
        assert_eq!(without[0].synchronized, 0);
    }

    #[test]
    fn small_coincidences_are_kept() {
        // Below the threshold, identical signatures are just coincidence.
        let mut map = HashMap::new();
        for e in 0..5u32 {
            map.insert((e, 0u8), tl(bits(60, &[5..10, 20..30, 40..45])));
        }
        let timelines = Timelines {
            days: (0..60).collect(),
            map,
        };
        let dists = analyze(&timelines, 1, 1);
        assert_eq!(dists[0].domains, 5);
    }

    #[test]
    fn stride_scales_durations() {
        let mut map = HashMap::new();
        map.insert((0u32, 0u8), tl(bits(20, &[0..2, 5..6, 9..12])));
        let timelines = Timelines {
            days: (0..20).collect(),
            map,
        };
        let dists = analyze(&timelines, 1, 3);
        assert_eq!(dists[0].durations, vec![3, 6, 9]);
    }
}
