//! Anomaly detection and third-party attribution (§4.4.1).
//!
//! Large day-over-day swings in a provider's use count are located, and
//! the set difference of referencing domains between the two days is
//! summarised by its dominant NS / CNAME SLDs — which is how the paper
//! traces e.g. the April 2016 Incapsula peak to Wix, or the February 2016
//! CloudFlare peak to ~247k Namecheap-hosted names.

use crate::references::CompiledRefs;
use crate::util::mad;
use dps_measure::observation::Row;
use dps_measure::{SnapshotStore, Source};
use std::collections::{HashMap, HashSet};

/// A detected anomaly in a provider's daily series.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Index into the series' day list (the day the level changed *to*).
    pub day_index: usize,
    /// Signed change in referencing domains.
    pub delta: i64,
}

/// Finds day-over-day changes exceeding `mad_factor` robust deviations and
/// `abs_floor` in magnitude.
pub fn find_anomalies(series: &[u32], mad_factor: f64, abs_floor: u32) -> Vec<Anomaly> {
    if series.len() < 3 {
        return Vec::new();
    }
    let deltas: Vec<f64> = series
        .windows(2)
        .map(|w| f64::from(w[1]) - f64::from(w[0]))
        .collect();
    let noise = mad(&deltas).max(0.5);
    deltas
        .iter()
        .enumerate()
        .filter(|(_, d)| d.abs() >= f64::from(abs_floor) && d.abs() > mad_factor * noise)
        .map(|(i, d)| Anomaly {
            day_index: i + 1,
            delta: *d as i64,
        })
        .collect()
}

/// §4.1's transversality observation: "the anomalous trend that is
/// apparent in the largest gTLD, .com, is replicated in .net and .org".
/// For every anomaly day of the first series, checks whether the other
/// series move in the same direction; returns the fraction that do.
pub fn transversality(series: &[&[u32]], mad_factor: f64, abs_floor: u32) -> f64 {
    let Some(first) = series.first() else {
        return 0.0;
    };
    let anomalies = find_anomalies(first, mad_factor, abs_floor);
    if anomalies.is_empty() || series.len() < 2 {
        return 0.0;
    }
    let mut replicated = 0usize;
    let mut total = 0usize;
    for a in &anomalies {
        for other in &series[1..] {
            total += 1;
            let delta = i64::from(other[a.day_index]) - i64::from(other[a.day_index - 1]);
            if delta.signum() == a.delta.signum() && delta != 0 {
                replicated += 1;
            }
        }
    }
    replicated as f64 / total as f64
}

/// The explanation of one anomaly: who joined/left and what they share.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Domains referencing the provider on `day` but not on `prev_day`.
    pub joined: usize,
    /// Domains referencing on `prev_day` but not on `day`.
    pub left: usize,
    /// Most common NS SLDs among the changed domains, with counts.
    pub top_ns_slds: Vec<(String, usize)>,
    /// Most common CNAME SLDs among the changed domains.
    pub top_cname_slds: Vec<(String, usize)>,
}

impl Attribution {
    /// The single most plausible responsible party, if one SLD dominates
    /// the changed set (≥ half of it).
    pub fn dominant_party(&self) -> Option<&str> {
        let changed = self.joined + self.left;
        self.top_ns_slds
            .first()
            .filter(|(_, c)| *c * 2 >= changed && changed > 0)
            .map(|(s, _)| s.as_str())
    }
}

fn referencing_entries(
    store: &SnapshotStore,
    refs: &CompiledRefs,
    provider: u8,
    day: u32,
) -> HashMap<u32, (u32, u32)> {
    // entry → (ns1, cname1) for attribution histograms.
    let mut out = HashMap::new();
    for source in [Source::Com, Source::Net, Source::Org] {
        if let Some(table) = store.table(day, source) {
            let cols: Vec<&[u32]> = (0..table.schema().width())
                .map(|c| table.column(c))
                .collect();
            for i in 0..table.rows() {
                let (_, _, row) = Row::unpack(&cols, i);
                if refs.classify(&row).iter().any(|&(p, _)| p == provider) {
                    out.insert(row.entry, (row.ns1, row.cname1));
                }
            }
        }
    }
    out
}

/// Explains the change in `provider`'s population between two days.
pub fn explain(
    store: &SnapshotStore,
    refs: &CompiledRefs,
    provider: u8,
    prev_day: u32,
    day: u32,
) -> Attribution {
    let before = referencing_entries(store, refs, provider, prev_day);
    let after = referencing_entries(store, refs, provider, day);
    let before_keys: HashSet<&u32> = before.keys().collect();
    let after_keys: HashSet<&u32> = after.keys().collect();

    let mut ns_hist: HashMap<u32, usize> = HashMap::new();
    let mut cname_hist: HashMap<u32, usize> = HashMap::new();
    let mut joined = 0usize;
    let mut left = 0usize;
    for &&e in after_keys.difference(&before_keys) {
        joined += 1;
        let (ns, cn) = after[&e];
        *ns_hist.entry(ns).or_default() += 1;
        *cname_hist.entry(cn).or_default() += 1;
    }
    for &&e in before_keys.difference(&after_keys) {
        left += 1;
        let (ns, cn) = before[&e];
        *ns_hist.entry(ns).or_default() += 1;
        *cname_hist.entry(cn).or_default() += 1;
    }

    let top = |hist: HashMap<u32, usize>| -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = hist
            .into_iter()
            .filter(|&(id, _)| id != 0)
            .map(|(id, c)| (store.dict.resolve(id).unwrap_or("?").to_string(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(5);
        v
    };

    Attribution {
        joined,
        left,
        top_ns_slds: top(ns_hist),
        top_cname_slds: top(cname_hist),
    }
}

#[cfg(test)]
// Index-based loops keep the day arithmetic explicit in fixtures.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn quiet_series_has_no_anomalies() {
        let series: Vec<u32> = (0..100).map(|i| 1000 + i % 3).collect();
        assert!(find_anomalies(&series, 8.0, 10).is_empty());
    }

    #[test]
    fn spike_is_detected_with_sign() {
        let mut series: Vec<u32> = vec![1000; 100];
        for day in 40..45 {
            series[day] = 2500;
        }
        let found = find_anomalies(&series, 8.0, 100);
        assert_eq!(found.len(), 2);
        assert_eq!(
            found[0],
            Anomaly {
                day_index: 40,
                delta: 1500
            }
        );
        assert_eq!(
            found[1],
            Anomaly {
                day_index: 45,
                delta: -1500
            }
        );
    }

    #[test]
    fn transversality_detects_correlated_swings() {
        let mut com: Vec<u32> = vec![8000; 100];
        let mut net: Vec<u32> = vec![1000; 100];
        let mut org: Vec<u32> = vec![700; 100];
        for day in 40..45 {
            com[day] += 900; // the same event hits all three zones
            net[day] += 110;
            org[day] += 80;
        }
        let t = transversality(&[&com, &net, &org], 8.0, 100);
        assert_eq!(t, 1.0);

        // Uncorrelated noise in the small zones: replication breaks.
        let flat = vec![1000u32; 100];
        let t = transversality(&[&com, &flat], 8.0, 100);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn floor_suppresses_small_blips() {
        let mut series: Vec<u32> = vec![100; 50];
        series[20] = 140;
        assert!(find_anomalies(&series, 4.0, 100).is_empty());
        assert!(!find_anomalies(&series, 4.0, 10).is_empty());
    }
}
