//! Daily flux (§4.4.2, Fig. 7): per provider, every domain contributes to
//! influx once (its first-seen day) and to outflux once (its last-seen
//! day); the figure reports Δ = influx − outflux in two-week windows.
//!
//! This construction is exactly why the paper uses it: a basket that flips
//! protection on and off five times contributes ±1, not ±5, so repeated
//! anomalies in Fig. 3 collapse into a single influx/outflux pair in
//! Fig. 7 if they involve the *same* set of names.

use crate::scan::Timelines;

/// Flux series of one provider.
#[derive(Debug, Clone)]
pub struct FluxSeries {
    /// Window starts as indices into the measured-day list.
    pub window_starts: Vec<usize>,
    /// First-seen counts per window.
    pub influx: Vec<u32>,
    /// Last-seen counts per window.
    pub outflux: Vec<u32>,
}

impl FluxSeries {
    /// Δ(first seen) − Δ(last seen) per window (the plotted quantity).
    pub fn delta(&self) -> Vec<i64> {
        self.influx
            .iter()
            .zip(&self.outflux)
            .map(|(&i, &o)| i64::from(i) - i64::from(o))
            .collect()
    }
}

/// Computes per-provider flux in `window` measured-day buckets
/// (14 for the paper's two-week windows at daily cadence).
pub fn analyze(timelines: &Timelines, n_providers: usize, window: usize) -> Vec<FluxSeries> {
    analyze_masked(timelines, n_providers, window, &[])
}

/// [`analyze`] under a data-quality mask: observations on `masked`
/// day *indices* are treated as unknown rather than absent, so a
/// low-coverage sweep at the edge of a domain's protection span cannot
/// fabricate an early outflux (or late influx). Domains seen only on
/// masked days are skipped entirely.
pub fn analyze_masked(
    timelines: &Timelines,
    n_providers: usize,
    window: usize,
    masked: &[usize],
) -> Vec<FluxSeries> {
    let n_days = timelines.days.len();
    let window = window.max(1);
    let n_windows = n_days.div_ceil(window);
    let masked: std::collections::HashSet<usize> = masked.iter().copied().collect();
    let mut out: Vec<FluxSeries> = (0..n_providers)
        .map(|_| FluxSeries {
            window_starts: (0..n_windows).map(|w| w * window).collect(),
            influx: vec![0; n_windows],
            outflux: vec![0; n_windows],
        })
        .collect();
    for (&(_, provider), tl) in &timelines.map {
        let (first, last) = if masked.is_empty() {
            (tl.any.first(), tl.any.last())
        } else {
            (
                (0..n_days).find(|i| !masked.contains(i) && tl.any.get(*i)),
                (0..n_days)
                    .rev()
                    .find(|i| !masked.contains(i) && tl.any.get(*i)),
            )
        };
        let (Some(first), Some(last)) = (first, last) else {
            continue;
        };
        let series = &mut out[provider as usize];
        series.influx[first / window] += 1;
        series.outflux[last / window] += 1;
    }
    out
}

/// Conservation check: Σinflux = Σoutflux = number of referencing domains.
pub fn total_domains(series: &FluxSeries) -> (u64, u64) {
    (
        series.influx.iter().map(|&v| u64::from(v)).sum(),
        series.outflux.iter().map(|&v| u64::from(v)).sum(),
    )
}

#[cfg(test)]
// Tests build literal `vec![a..b]` range fixtures on purpose.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::scan::Timeline;
    use crate::util::DayBits;
    use std::collections::HashMap;

    fn tl(days: usize, ranges: &[std::ops::Range<usize>]) -> Timeline {
        let mut b = DayBits::new(days);
        for r in ranges {
            for i in r.clone() {
                b.set(i);
            }
        }
        Timeline {
            any: b.clone(),
            asn: b,
            cname: DayBits::new(days),
            ns: DayBits::new(days),
        }
    }

    #[test]
    fn repeated_peaks_count_once() {
        let mut map = HashMap::new();
        // Three peaks of the same domain: one influx (w0), one outflux (w3).
        map.insert((0u32, 0u8), tl(56, &[2..4, 20..24, 50..52]));
        let timelines = Timelines {
            days: (0..56).collect(),
            map,
        };
        let series = &analyze(&timelines, 1, 14)[0];
        assert_eq!(series.influx, vec![1, 0, 0, 0]);
        assert_eq!(series.outflux, vec![0, 0, 0, 1]);
        assert_eq!(series.delta(), vec![1, 0, 0, -1]);
    }

    #[test]
    fn flux_conserves_domain_count() {
        let mut map = HashMap::new();
        for e in 0..40u32 {
            let start = (e as usize) % 30;
            map.insert((e, 0u8), tl(56, &[start..start + 10]));
        }
        let timelines = Timelines {
            days: (0..56).collect(),
            map,
        };
        let series = &analyze(&timelines, 1, 14)[0];
        let (inf, out) = total_domains(series);
        assert_eq!(inf, 40);
        assert_eq!(out, 40);
    }

    #[test]
    fn masked_edge_days_do_not_fabricate_flux() {
        let mut map = HashMap::new();
        // The domain is protected days 10..28, but day 27 was a bad sweep:
        // unmasked analysis would see last-seen inside window 1 either way,
        // so use a gap: protection ends day 27 and days 27..28 are masked —
        // last *trustworthy* observation is day 26.
        map.insert((0u32, 0u8), tl(28, &[10..27]));
        let timelines = Timelines {
            days: (0..28).collect(),
            map,
        };
        let unmasked = analyze(&timelines, 1, 14);
        let masked = analyze_masked(&timelines, 1, 14, &[26]);
        // Masking day 26 pushes last-seen back to day 25 (same window here,
        // but first-seen is unaffected) and conservation still holds.
        assert_eq!(total_domains(&unmasked[0]), (1, 1));
        assert_eq!(total_domains(&masked[0]), (1, 1));
        // A domain seen only on masked days disappears from flux.
        let mut map = HashMap::new();
        map.insert((1u32, 0u8), tl(28, &[5..6]));
        let timelines = Timelines {
            days: (0..28).collect(),
            map,
        };
        let gone = analyze_masked(&timelines, 1, 14, &[5]);
        assert_eq!(total_domains(&gone[0]), (0, 0));
    }

    #[test]
    fn providers_are_separated() {
        let mut map = HashMap::new();
        map.insert((0u32, 0u8), tl(28, &[0..28]));
        map.insert((1u32, 1u8), tl(28, &[14..20]));
        let timelines = Timelines {
            days: (0..28).collect(),
            map,
        };
        let all = analyze(&timelines, 2, 14);
        assert_eq!(all[0].influx, vec![1, 0]);
        assert_eq!(all[1].influx, vec![0, 1]);
    }
}
