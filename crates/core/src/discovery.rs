//! The iterative reference-discovery procedure (§3.3), regenerating the
//! paper's Table 2 from the measurement data itself.
//!
//! > "We take the ASNs of a DPS as starting point. Then we find all the
//! > domain names that reference these ASNs and analyze frequently
//! > occurring SLDs in CNAME and NS records. The SLDs obtained in this
//! > manner are used to find any ASNs we may have missed in the first
//! > step, or to remove ASNs that do not belong to the mitigation
//! > infrastructure of a DPS."
//!
//! Seed AS sets come from AS-to-name data (paper footnote 5). Candidate
//! SLDs must additionally pass an *ownership* check — the SLD's own apex
//! must resolve into the provider's AS space — which automates the
//! analyst judgement that kept third-party SLDs (`sedoparking.com`,
//! `registrar-servers.com`) out of the paper's Table 2 while those
//! parties' domains referenced provider ASes en masse.

use crate::references::ProviderRefs;
use dps_measure::observation::Row;
use dps_measure::{SnapshotStore, Source};
use dps_netsim::AsRegistry;
use std::collections::{HashMap, HashSet};

/// A provider seed: a display name and the AS numbers found for it in
/// AS-to-name data.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Provider display name.
    pub name: String,
    /// Name-matched AS numbers.
    pub asns: Vec<u32>,
}

/// Builds seeds by searching an AS registry for provider names.
pub fn seeds_from_registry(registry: &AsRegistry, names: &[&str]) -> Vec<Seed> {
    names
        .iter()
        .map(|n| Seed {
            name: n.to_string(),
            asns: registry.search(n).into_iter().map(|a| a.0).collect(),
        })
        .collect()
}

/// Discovery tunables.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Sample every `stride`-th measured day.
    pub day_stride: usize,
    /// Minimum domain-days supporting a candidate SLD.
    pub min_support: u32,
    /// Minimum fraction of the SLD's domain-days that co-occur with the
    /// provider's ASes.
    pub min_cooccurrence: f64,
    /// Minimum share of a provider's SLD-referencing domain-days an AS
    /// must originate to be adopted in the expansion step.
    pub min_asn_share: f64,
    /// Minimum referencing domain-days for a seed AS to survive pruning.
    pub min_asn_support: u32,
    /// Expansion specificity: of everything an AS originates, at least
    /// this fraction must carry the provider's SLDs. Keeps generic hosting
    /// ASes out (a managed-DNS customer still resolves to its hoster, so
    /// hoster ASes co-occur with provider NS SLDs without belonging to the
    /// mitigation infrastructure).
    pub min_asn_specificity: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            day_stride: 7,
            min_support: 5,
            min_cooccurrence: 0.25,
            min_asn_share: 0.02,
            min_asn_support: 3,
            min_asn_specificity: 0.2,
        }
    }
}

#[derive(Default)]
struct SldStats {
    /// Per provider: domain-days where this SLD co-occurs with a seed AS.
    hits: HashMap<u8, u32>,
    /// Total domain-days mentioning this SLD.
    total: u32,
}

/// Runs the discovery procedure over the archive.
pub fn discover(
    store: &SnapshotStore,
    seeds: &[Seed],
    config: &DiscoveryConfig,
) -> Vec<ProviderRefs> {
    let asn_to_seed: HashMap<u32, u8> = seeds
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.asns.iter().map(move |&a| (a, i as u8)))
        .collect();

    let sampled_days: Vec<u32> = store
        .days(Source::Com)
        .into_iter()
        .step_by(config.day_stride.max(1))
        .collect();
    let sampled: HashSet<u32> = sampled_days.iter().copied().collect();

    // ---- Pass 1: SLD co-occurrence statistics + AS usage support. ----
    let mut cname_stats: HashMap<u32, SldStats> = HashMap::new();
    let mut ns_stats: HashMap<u32, SldStats> = HashMap::new();
    let mut asn_support: HashMap<u32, u32> = HashMap::new();

    for_each_sampled_row(store, &sampled, |row| {
        let seed_provider = [row.asn1, row.asn2, row.www_asn]
            .iter()
            .find_map(|a| asn_to_seed.get(a).copied());
        for asn in [row.asn1, row.asn2] {
            if asn != 0 {
                *asn_support.entry(asn).or_default() += 1;
            }
        }
        for sld in [row.cname1, row.cname2] {
            if sld != 0 {
                let st = cname_stats.entry(sld).or_default();
                st.total += 1;
                if let Some(p) = seed_provider {
                    *st.hits.entry(p).or_default() += 1;
                }
            }
        }
        for sld in [row.ns1, row.ns2] {
            if sld != 0 {
                let st = ns_stats.entry(sld).or_default();
                st.total += 1;
                if let Some(p) = seed_provider {
                    *st.hits.entry(p).or_default() += 1;
                }
            }
        }
    });

    let candidates = |stats: &HashMap<u32, SldStats>| -> HashMap<u32, u8> {
        let mut out = HashMap::new();
        for (&sld, st) in stats {
            for (&p, &hits) in &st.hits {
                if hits >= config.min_support
                    && f64::from(hits) / f64::from(st.total.max(1)) >= config.min_cooccurrence
                {
                    out.insert(sld, p);
                }
            }
        }
        out
    };
    let cname_candidates = candidates(&cname_stats);
    let ns_candidates = candidates(&ns_stats);

    // ---- Pass 2: ownership of candidate SLDs + ASN expansion. ----
    let mut candidate_ids: HashSet<u32> = HashSet::new();
    candidate_ids.extend(cname_candidates.keys());
    candidate_ids.extend(ns_candidates.keys());
    // apex ASN histogram of each candidate SLD's own domain.
    let mut own_asn: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
    // ASN histogram of domains mentioning each candidate SLD.
    let mut cooccur_asn: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
    let mut cooccur_rows: HashMap<u32, u32> = HashMap::new();

    for_each_sampled_row(store, &sampled, |row| {
        if candidate_ids.contains(&row.sld) {
            let hist = own_asn.entry(row.sld).or_default();
            if row.asn1 != 0 {
                *hist.entry(row.asn1).or_default() += 1;
            }
        }
        for sld in [row.cname1, row.cname2, row.ns1, row.ns2] {
            if sld != 0 && candidate_ids.contains(&sld) {
                *cooccur_rows.entry(sld).or_default() += 1;
                let hist = cooccur_asn.entry(sld).or_default();
                for asn in [row.asn1, row.asn2] {
                    if asn != 0 {
                        *hist.entry(asn).or_default() += 1;
                    }
                }
            }
        }
    });

    // Ownership: the SLD's own apex must originate (mostly) from the
    // provider's seed ASes; SLDs whose apex we never measured (zones we do
    // not sweep, like .biz) pass by default.
    let owned_by = |sld: u32, p: u8| -> bool {
        match own_asn.get(&sld) {
            None => true,
            Some(hist) => {
                let total: u32 = hist.values().sum();
                let in_provider: u32 = hist
                    .iter()
                    .filter(|(a, _)| asn_to_seed.get(a) == Some(&p))
                    .map(|(_, &c)| c)
                    .sum();
                total == 0 || f64::from(in_provider) / f64::from(total) >= 0.5
            }
        }
    };

    let mut result: Vec<ProviderRefs> = seeds
        .iter()
        .map(|s| ProviderRefs {
            name: s.name.clone(),
            asns: Vec::new(),
            cname_slds: Vec::new(),
            ns_slds: Vec::new(),
        })
        .collect();

    let resolve = |sld: u32| store.dict.resolve(sld).unwrap_or("?").to_string();

    let mut accepted_slds_per_provider: Vec<Vec<u32>> = vec![Vec::new(); seeds.len()];
    for (&sld, &p) in &cname_candidates {
        if owned_by(sld, p) {
            result[p as usize].cname_slds.push(resolve(sld));
            accepted_slds_per_provider[p as usize].push(sld);
        }
    }
    for (&sld, &p) in &ns_candidates {
        if owned_by(sld, p) {
            result[p as usize].ns_slds.push(resolve(sld));
            accepted_slds_per_provider[p as usize].push(sld);
        }
    }

    // ASN expansion + seed pruning.
    for (p, seed) in seeds.iter().enumerate() {
        let mut asns: HashSet<u32> = seed
            .asns
            .iter()
            .copied()
            .filter(|a| asn_support.get(a).copied().unwrap_or(0) >= config.min_asn_support)
            .collect();
        let mut hist: HashMap<u32, u32> = HashMap::new();
        let mut rows = 0u32;
        for &sld in &accepted_slds_per_provider[p] {
            rows += cooccur_rows.get(&sld).copied().unwrap_or(0);
            if let Some(h) = cooccur_asn.get(&sld) {
                for (&a, &c) in h {
                    *hist.entry(a).or_default() += c;
                }
            }
        }
        for (&asn, &count) in &hist {
            let share = f64::from(count) / f64::from(rows.max(1));
            let foreign = asn_to_seed.get(&asn).is_some_and(|&q| q != p as u8);
            let global = asn_support.get(&asn).copied().unwrap_or(0).max(1);
            let specificity = f64::from(count) / f64::from(global);
            if share >= config.min_asn_share
                && count >= config.min_support
                && specificity >= config.min_asn_specificity
                && !foreign
            {
                asns.insert(asn);
            }
        }
        let mut asns: Vec<u32> = asns.into_iter().collect();
        asns.sort_unstable();
        result[p].asns = asns;
        result[p].cname_slds.sort();
        result[p].ns_slds.sort();
    }
    result
}

fn for_each_sampled_row(store: &SnapshotStore, sampled: &HashSet<u32>, mut f: impl FnMut(&Row)) {
    for source in [Source::Com, Source::Net, Source::Org] {
        for (day, table) in store.scan(source) {
            if !sampled.contains(&day) {
                continue;
            }
            let cols: Vec<&[u32]> = (0..table.schema().width())
                .map(|c| table.column(c))
                .collect();
            for i in 0..table.rows() {
                let (_, _, row) = Row::unpack(&cols, i);
                if !row.failed {
                    f(&row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_ecosystem::{ScenarioParams, World};
    use dps_measure::{Study, StudyConfig};

    /// The marketing keywords an analyst would search AS-to-name data for.
    pub const PROVIDER_KEYWORDS: [&str; 9] = [
        "Akamai",
        "CenturyLink",
        "CloudFlare",
        "DOSarrest",
        "F5",
        "Incapsula",
        "Level 3",
        "Neustar",
        "VeriSign",
    ];

    #[test]
    fn seeds_found_by_name_search() {
        let world = World::imc2016(ScenarioParams::tiny(1));
        let seeds = seeds_from_registry(world.as_registry(), &PROVIDER_KEYWORDS);
        // CloudFlare's single AS is name-findable.
        assert_eq!(seeds[2].asns, vec![13335]);
        // Akamai's Prolexic AS is NOT name-findable (expansion must add it).
        assert!(!seeds[0].asns.contains(&32787));
        assert!(seeds[0].asns.contains(&20940));
        // Level 3's tw telecom AS likewise.
        assert!(!seeds[6].asns.contains(&11213));
    }

    #[test]
    fn discovery_rediscovers_core_references_in_small_world() {
        let mut world = World::imc2016(ScenarioParams {
            scale: 0.2,
            gtld_days: 40,
            cc_start_day: 40,
            seed: 9,
        });
        let seeds_list = seeds_from_registry(world.as_registry(), &PROVIDER_KEYWORDS);
        let store = Study::new(StudyConfig {
            days: 40,
            cc_start_day: 40,
            stride: 1,
        })
        .run(&mut world);
        let config = DiscoveryConfig {
            day_stride: 5,
            ..Default::default()
        };
        let found = discover(&store, &seeds_list, &config);

        let cf = &found[2];
        assert!(cf.asns.contains(&13335));
        assert!(
            cf.cname_slds.contains(&"cloudflare.net".to_string()),
            "{:?}",
            cf.cname_slds
        );
        assert!(
            cf.ns_slds.contains(&"cloudflare.com".to_string()),
            "{:?}",
            cf.ns_slds
        );

        let incapsula = &found[5];
        assert!(incapsula.cname_slds.contains(&"incapdns.net".to_string()));

        // Expansion found Prolexic via Akamai customer addresses.
        let akamai = &found[0];
        assert!(
            akamai.asns.contains(&32787),
            "expanded ASNs: {:?}",
            akamai.asns
        );

        // Third-party SLDs must NOT leak into provider reference sets.
        for refs in &found {
            for sld in refs.ns_slds.iter().chain(&refs.cname_slds) {
                assert!(
                    ![
                        "sedoparking.com",
                        "registrar-servers.com",
                        "fabulousdns.com",
                        "amazonaws.com"
                    ]
                    .contains(&sld.as_str()),
                    "{} leaked into {}",
                    sld,
                    refs.name
                );
            }
        }
    }
}
