//! Reference-combination analysis (§3.3).
//!
//! > "Based on combinations of references and non-references we can
//! > analyze not only if, but also how a domain uses a DPS. Take for
//! > example a domain that references a DPS by CNAME and ASN, but not by
//! > NS record. This combination of references shows us not only that the
//! > domain uses CNAME-based redirection … Moreover, we learn that the
//! > DNS zone of this domain has not been delegated to the DPS."
//!
//! This module counts, per provider, how many domains exhibit each of the
//! seven non-empty (CNAME, NS, ASN) combinations on a given day, and maps
//! each combination to its §2.1 interpretation.

use crate::references::{CompiledRefs, RefKind};
use dps_measure::observation::Row;
use dps_measure::{SnapshotStore, Source};
use std::fmt::Write as _;

/// The seven observable combinations, densely indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Combo {
    /// ASN only: A-record diversion or BGP diversion, own DNS.
    AsnOnly,
    /// CNAME only: alias into the provider but traffic not currently
    /// diverted (e.g. mid-migration or stale alias).
    CnameOnly,
    /// NS only: zone delegated (managed DNS) but no traffic diversion —
    /// the Verisign Managed DNS pattern.
    NsOnly,
    /// CNAME + ASN, no NS: redirection without delegation (the paper's
    /// worked example; the customer keeps DNS control).
    CnameAsn,
    /// NS + ASN, no CNAME: full delegation with diversion.
    NsAsn,
    /// CNAME + NS, no ASN: delegated and aliased but not diverted today
    /// (an on-demand customer in the off state).
    CnameNs,
    /// All three references at once.
    All,
}

/// All combinations in display order.
pub const COMBOS: [Combo; 7] = [
    Combo::AsnOnly,
    Combo::CnameOnly,
    Combo::NsOnly,
    Combo::CnameAsn,
    Combo::NsAsn,
    Combo::CnameNs,
    Combo::All,
];

impl Combo {
    /// Classifies a non-empty reference kind set.
    pub fn from_kinds(kinds: RefKind) -> Combo {
        let c = kinds.contains(RefKind::CNAME);
        let n = kinds.contains(RefKind::NS);
        let a = kinds.contains(RefKind::ASN);
        match (c, n, a) {
            (false, false, true) => Combo::AsnOnly,
            (true, false, false) => Combo::CnameOnly,
            (false, true, false) => Combo::NsOnly,
            (true, false, true) => Combo::CnameAsn,
            (false, true, true) => Combo::NsAsn,
            (true, true, false) => Combo::CnameNs,
            (true, true, true) => Combo::All,
            (false, false, false) => unreachable!("empty kinds are not a combination"),
        }
    }

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Combo::AsnOnly => "AS",
            Combo::CnameOnly => "CN",
            Combo::NsOnly => "NS",
            Combo::CnameAsn => "CN+AS",
            Combo::NsAsn => "NS+AS",
            Combo::CnameNs => "CN+NS",
            Combo::All => "all",
        }
    }

    /// The §2/§3.3 interpretation of this combination.
    pub fn interpretation(self) -> &'static str {
        match self {
            Combo::AsnOnly => "address diversion (A record or BGP), customer-run DNS",
            Combo::CnameOnly => "alias into the provider without active diversion",
            Combo::NsOnly => "managed DNS / delegation without diversion",
            Combo::CnameAsn => "CNAME redirection; zone NOT delegated to the DPS",
            Combo::NsAsn => "full delegation with active diversion",
            Combo::CnameNs => "delegated + aliased, diversion currently off",
            Combo::All => "delegation and CNAME redirection simultaneously",
        }
    }

    /// Dense index.
    pub fn index(self) -> usize {
        // dps: allow(taint-panic, reason = "COMBOS enumerates every Combo variant, so position() is total over self regardless of input")
        COMBOS.iter().position(|&c| c == self).expect("in table")
    }
}

/// Per-provider combination counts for one day.
#[derive(Debug, Clone)]
pub struct ComboBreakdown {
    /// The analysed day.
    pub day: u32,
    /// `counts[provider][combo]`.
    pub counts: Vec<[u32; 7]>,
}

/// Counts reference combinations over the gTLD sources for one day.
pub fn analyze_day(store: &SnapshotStore, refs: &CompiledRefs, day: u32) -> ComboBreakdown {
    let mut counts = vec![[0u32; 7]; refs.n];
    for source in [Source::Com, Source::Net, Source::Org] {
        let Some(table) = store.table(day, source) else {
            continue;
        };
        let cols: Vec<&[u32]> = (0..table.schema().width())
            .map(|c| table.column(c))
            .collect();
        for i in 0..table.rows() {
            let (_, _, row) = Row::unpack(&cols, i);
            for (p, kinds) in refs.classify(&row) {
                counts[p as usize][Combo::from_kinds(kinds).index()] += 1;
            }
        }
    }
    ComboBreakdown { day, counts }
}

/// Renders the breakdown as a table.
pub fn render(breakdown: &ComboBreakdown, names: &[String]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<14}", "provider");
    for combo in COMBOS {
        let _ = write!(out, " {:>7}", combo.label());
    }
    out.push('\n');
    for (p, name) in names.iter().enumerate() {
        let _ = write!(out, "{name:<14}");
        for combo in COMBOS {
            let _ = write!(out, " {:>7}", breakdown.counts[p][combo.index()]);
        }
        out.push('\n');
    }
    out.push('\n');
    for combo in COMBOS {
        let _ = writeln!(out, "{:>6} = {}", combo.label(), combo.interpretation());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(c: bool, n: bool, a: bool) -> RefKind {
        let mut k = RefKind::empty();
        if c {
            k.insert(RefKind::CNAME);
        }
        if n {
            k.insert(RefKind::NS);
        }
        if a {
            k.insert(RefKind::ASN);
        }
        k
    }

    #[test]
    fn combo_classification_covers_all_seven() {
        assert_eq!(Combo::from_kinds(kinds(false, false, true)), Combo::AsnOnly);
        assert_eq!(
            Combo::from_kinds(kinds(true, false, false)),
            Combo::CnameOnly
        );
        assert_eq!(Combo::from_kinds(kinds(false, true, false)), Combo::NsOnly);
        assert_eq!(Combo::from_kinds(kinds(true, false, true)), Combo::CnameAsn);
        assert_eq!(Combo::from_kinds(kinds(false, true, true)), Combo::NsAsn);
        assert_eq!(Combo::from_kinds(kinds(true, true, false)), Combo::CnameNs);
        assert_eq!(Combo::from_kinds(kinds(true, true, true)), Combo::All);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, c) in COMBOS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn small_world_breakdown_matches_postures() {
        use dps_ecosystem::{ScenarioParams, World};
        use dps_measure::{Study, StudyConfig};
        let params = ScenarioParams {
            seed: 13,
            scale: 0.1,
            gtld_days: 2,
            cc_start_day: 2,
        };
        let mut world = World::imc2016(params);
        let store = Study::new(StudyConfig {
            days: 1,
            cc_start_day: 99,
            stride: 1,
        })
        .run(&mut world);
        let refs = crate::references::CompiledRefs::compile(
            &crate::references::ProviderRefs::paper_table2(),
            &store.dict,
        );
        let b = analyze_day(&store, &refs, 0);

        // CloudFlare (index 2) is delegation-heavy: NS+AS dominates.
        let cf = &b.counts[2];
        assert!(cf[Combo::NsAsn.index()] > cf[Combo::CnameAsn.index()]);
        // Incapsula (index 5) is CNAME-heavy: CN+AS dominates, almost no NS.
        let inc = &b.counts[5];
        assert!(inc[Combo::CnameAsn.index()] >= inc[Combo::NsAsn.index()]);
        // Verisign (index 8) has a significant NS-only population.
        let vrsn = &b.counts[8];
        assert!(vrsn[Combo::NsOnly.index()] > 0);
        // DOSarrest (index 3) sells no DNS product: ASN-only exclusively.
        let dos = &b.counts[3];
        for combo in COMBOS {
            if combo != Combo::AsnOnly {
                assert_eq!(dos[combo.index()], 0, "{combo:?}");
            }
        }
        let rendered = render(&b, &refs.names);
        assert!(rendered.contains("managed DNS"));
    }
}
