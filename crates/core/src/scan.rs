//! The classification pass (§3.3): one scan over the measurement archive
//! producing daily series for every figure and per-domain reference
//! timelines for the always-on/on-demand analyses.

use crate::references::{CompiledRefs, RefKind};
use crate::util::DayBits;
use dps_measure::observation::Row;
use dps_measure::{SnapshotStore, Source};
use std::collections::HashMap;

/// Daily count series aligned to `days`.
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Measured gTLD days, ascending.
    pub days: Vec<u32>,
    /// Rows per day per source (zone size; 0 before a source starts).
    pub zone_sizes: Vec<Vec<u32>>,
    /// Per provider: domains (SLDs) with any reference, gTLD sources.
    pub provider_any: Vec<Vec<u32>>,
    /// Per provider: domains with an ASN reference.
    pub provider_asn: Vec<Vec<u32>>,
    /// Per provider: domains with a CNAME reference.
    pub provider_cname: Vec<Vec<u32>>,
    /// Per provider: domains with an NS reference.
    pub provider_ns: Vec<Vec<u32>>,
    /// Domains using any provider, per gTLD source (Fig. 2 lines).
    pub tld_any: Vec<Vec<u32>>,
    /// Domains using any provider, per source incl. .nl / Alexa (Fig. 6).
    pub source_any: Vec<Vec<u32>>,
}

impl SeriesSet {
    fn new(n_days: usize, n_providers: usize) -> Self {
        let zeros = || vec![0u32; n_days];
        Self {
            days: Vec::new(),
            zone_sizes: (0..5).map(|_| zeros()).collect(),
            provider_any: (0..n_providers).map(|_| zeros()).collect(),
            provider_asn: (0..n_providers).map(|_| zeros()).collect(),
            provider_cname: (0..n_providers).map(|_| zeros()).collect(),
            provider_ns: (0..n_providers).map(|_| zeros()).collect(),
            tld_any: (0..3).map(|_| zeros()).collect(),
            source_any: (0..5).map(|_| zeros()).collect(),
        }
    }

    /// Combined gTLD any-provider series (Fig. 2 "Combined").
    pub fn combined_any(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.days.len()];
        for tld in &self.tld_any {
            for (o, v) in out.iter_mut().zip(tld) {
                *o += v;
            }
        }
        out
    }

    /// Combined gTLD zone size (overall namespace expansion baseline).
    pub fn combined_zone_size(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.days.len()];
        for src in 0..3 {
            for (o, v) in out.iter_mut().zip(&self.zone_sizes[src]) {
                *o += v;
            }
        }
        out
    }

    /// Position of a day in the series.
    pub fn day_index(&self, day: u32) -> Option<usize> {
        self.days.binary_search(&day).ok()
    }
}

/// Per-domain, per-provider reference timeline over the gTLD window.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Days with any reference.
    pub any: DayBits,
    /// Days with an ASN reference (traffic actually diverted).
    pub asn: DayBits,
    /// Days with a CNAME reference.
    pub cname: DayBits,
    /// Days with an NS reference.
    pub ns: DayBits,
}

/// All timelines, keyed by `(entry, provider)`.
#[derive(Debug, Clone)]
pub struct Timelines {
    /// Measured days the bit positions refer to.
    pub days: Vec<u32>,
    /// Timeline per referencing `(entry, provider)` pair.
    pub map: HashMap<(u32, u8), Timeline>,
}

/// Output of the scan.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Daily series.
    pub series: SeriesSet,
    /// Per-domain timelines (gTLD sources only).
    pub timelines: Timelines,
}

/// The scanner.
pub struct Scanner<'a> {
    refs: &'a CompiledRefs,
}

impl<'a> Scanner<'a> {
    /// A scanner using the given compiled references.
    pub fn new(refs: &'a CompiledRefs) -> Self {
        Self { refs }
    }

    /// Runs the full pass over an in-memory snapshot store. Day tables are
    /// decoded and classified on the MapReduce worker pool (one map task
    /// per day table); per-day partial results are merged on the caller
    /// thread.
    pub fn run(&self, store: &SnapshotStore) -> ScanOutput {
        let days = store.days(Source::Com);
        let day_pos: HashMap<u32, usize> = days.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        // Gather all (source, day, encoded table) map tasks.
        let mut tasks: Vec<(Source, u32, &[u8])> = Vec::new();
        for source in dps_measure::SOURCES {
            for (day, bytes) in store.encoded(source) {
                if day_pos.contains_key(&day) {
                    tasks.push((source, day, bytes));
                }
            }
        }

        let partials = dps_columnar::mapreduce::par_map(&tasks, |&(source, day, bytes)| {
            let table = dps_columnar::Table::from_bytes(bytes).expect("store holds valid tables");
            self.map_day(source, day, &table)
        });

        self.merge(days, partials)
    }

    /// Runs the full pass directly over a `dps-store` archive file, without
    /// materialising a [`SnapshotStore`] first. Pages are fetched (and
    /// decoded at most once per pass — repeat passes hit the archive's page
    /// cache) on the MapReduce worker pool. Unknown source ids in the
    /// archive are an error.
    pub fn run_archive(&self, archive: &dps_store::Archive) -> std::io::Result<ScanOutput> {
        let days = archive.catalog().days(Source::Com.index() as u8);
        let day_pos: HashMap<u32, usize> = days.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        let mut tasks: Vec<(Source, u32)> = Vec::new();
        for &(day, source) in archive.catalog().pages.keys() {
            if source == dps_measure::QUALITY_SOURCE
                || source == dps_measure::TELEMETRY_SOURCE
                || source == dps_measure::ANALYSIS_SOURCE
            {
                // Per-day quality records, telemetry snapshots and
                // streaming-analysis checkpoints ride in the same archive
                // but are not measurement data; the mask layer, `dpscope
                // metrics` and `dps-stream` read them instead.
                continue;
            }
            let source = Source::from_index(u32::from(source))
                .ok_or_else(|| std::io::Error::other("archive has an unknown source id"))?;
            if day_pos.contains_key(&day) {
                tasks.push((source, day));
            }
        }
        // The paper's Table 1 order (sources outer, days inner) keeps the
        // merge deterministic and identical to `run` over the same data.
        tasks.sort_by_key(|&(source, day)| (source.index(), day));

        let results = dps_columnar::mapreduce::par_map(&tasks, |&(source, day)| {
            let table = archive
                .table(day, source.index() as u8)?
                .ok_or_else(|| std::io::Error::other("catalog-listed page missing"))?;
            Ok::<_, std::io::Error>(self.map_day(source, day, &table))
        });
        let partials = results.into_iter().collect::<std::io::Result<Vec<_>>>()?;

        Ok(self.merge(days, partials))
    }

    /// Runs the full pass over either archive layout. For a sharded
    /// archive each shard's sub-page is its own map task, so one logical
    /// day table is classified by up to `n_shards` workers in parallel;
    /// merging sums the per-shard partials (row counts and classification
    /// counts are per-row, so shard sums equal the logical totals, and
    /// reference timelines are day-bit sets, which are order-independent).
    pub fn run_store(&self, store: &dps_store::StoreReader) -> std::io::Result<ScanOutput> {
        let days = store.catalog().days(Source::Com.index() as u8);
        let day_pos: HashMap<u32, usize> = days.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let n_shards = store.n_shards();

        let mut tasks: Vec<(Source, u32, u32)> = Vec::new();
        for &(day, source) in store.catalog().pages.keys() {
            if source == dps_measure::QUALITY_SOURCE
                || source == dps_measure::TELEMETRY_SOURCE
                || source == dps_measure::ANALYSIS_SOURCE
            {
                continue;
            }
            let source = Source::from_index(u32::from(source))
                .ok_or_else(|| std::io::Error::other("archive has an unknown source id"))?;
            if day_pos.contains_key(&day) {
                for shard in 0..n_shards {
                    tasks.push((source, day, shard));
                }
            }
        }
        // Table 1 order (sources outer, days inner), shards innermost so
        // a shard's partials land adjacent and the merge stays identical
        // to the unsharded pass.
        tasks.sort_by_key(|&(source, day, shard)| (source.index(), day, shard));

        let results = dps_columnar::mapreduce::par_map(&tasks, |&(source, day, shard)| {
            let table = store
                .shard_table(shard, day, source.index() as u8)?
                .ok_or_else(|| std::io::Error::other("catalog-listed page missing"))?;
            Ok::<_, std::io::Error>(self.map_day(source, day, &table))
        });
        let partials = results.into_iter().collect::<std::io::Result<Vec<_>>>()?;

        Ok(self.merge(days, partials))
    }

    /// Merges per-day partials into the final output (deterministic:
    /// partials arrive in task order).
    fn merge(&self, days: Vec<u32>, partials: Vec<DayPartial>) -> ScanOutput {
        let n_days = days.len();
        let day_pos: HashMap<u32, usize> = days.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut series = SeriesSet::new(n_days, self.refs.n);
        series.days = days.clone();
        let mut timelines = Timelines {
            days,
            map: HashMap::new(),
        };

        for partial in partials {
            let di = day_pos[&partial.day];
            let src = partial.source.index();
            // Accumulate rather than assign: a sharded archive yields one
            // partial per (source, day, shard) whose counts sum to the
            // logical page's; an unsharded pass has exactly one partial
            // per (source, day), so += and = coincide there.
            series.zone_sizes[src][di] += partial.rows;
            series.source_any[src][di] += partial.source_any;
            let gtld = matches!(partial.source, Source::Com | Source::Net | Source::Org);
            if !gtld {
                continue;
            }
            series.tld_any[src][di] += partial.source_any;
            for (p, counts) in partial.provider_counts.iter().enumerate() {
                series.provider_any[p][di] += counts[0];
                series.provider_asn[p][di] += counts[1];
                series.provider_cname[p][di] += counts[2];
                series.provider_ns[p][di] += counts[3];
            }
            for (entry, p, kinds) in partial.references {
                let tl = timelines.map.entry((entry, p)).or_insert_with(|| Timeline {
                    any: DayBits::new(n_days),
                    asn: DayBits::new(n_days),
                    cname: DayBits::new(n_days),
                    ns: DayBits::new(n_days),
                });
                tl.any.set(di);
                if kinds.contains(RefKind::ASN) {
                    tl.asn.set(di);
                }
                if kinds.contains(RefKind::CNAME) {
                    tl.cname.set(di);
                }
                if kinds.contains(RefKind::NS) {
                    tl.ns.set(di);
                }
            }
        }
        ScanOutput { series, timelines }
    }

    /// Map task: classify one decoded day table into a partial result.
    fn map_day(&self, source: Source, day: u32, table: &dps_columnar::Table) -> DayPartial {
        let cols: Vec<&[u32]> = (0..table.schema().width())
            .map(|c| table.column(c))
            .collect();
        let gtld = matches!(source, Source::Com | Source::Net | Source::Org);
        let mut partial = DayPartial {
            source,
            day,
            rows: table.rows() as u32,
            source_any: 0,
            provider_counts: vec![[0; 4]; self.refs.n],
            references: Vec::new(),
        };
        for i in 0..table.rows() {
            let (_, _, row) = Row::unpack(&cols, i);
            let found = self.refs.classify(&row);
            if found.is_empty() {
                continue;
            }
            partial.source_any += 1;
            if !gtld {
                continue;
            }
            for &(p, kinds) in &found {
                let counts = &mut partial.provider_counts[p as usize];
                counts[0] += 1;
                counts[1] += u32::from(kinds.contains(RefKind::ASN));
                counts[2] += u32::from(kinds.contains(RefKind::CNAME));
                counts[3] += u32::from(kinds.contains(RefKind::NS));
                partial.references.push((row.entry, p, kinds));
            }
        }
        partial
    }
}

/// Partial classification result of one day table (the map output).
struct DayPartial {
    source: Source,
    day: u32,
    rows: u32,
    source_any: u32,
    /// Per provider: `[any, asn, cname, ns]`.
    provider_counts: Vec<[u32; 4]>,
    references: Vec<(u32, u8, RefKind)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::references::ProviderRefs;
    use dps_ecosystem::{ScenarioParams, World};
    use dps_measure::{Study, StudyConfig};

    fn scanned() -> ScanOutput {
        let mut world = World::imc2016(ScenarioParams::tiny(11));
        let config = StudyConfig {
            days: 30,
            cc_start_day: 20,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        Scanner::new(&refs).run(&store)
    }

    #[test]
    fn series_have_use_counts() {
        let out = scanned();
        assert_eq!(out.series.days.len(), 30);
        let combined = out.series.combined_any();
        assert!(combined[0] > 0, "day-0 DPS users exist: {combined:?}");
        // CloudFlare is the biggest provider in any seed.
        let cf: usize = 2;
        assert!(out.series.provider_any[cf].iter().all(|&c| c > 0));
        // NS-heavy CloudFlare: NS counts close to any counts (≈75%+).
        let any: u32 = out.series.provider_any[cf][0];
        let ns: u32 = out.series.provider_ns[cf][0];
        assert!(ns * 10 >= any * 5, "ns={ns} any={any}");
    }

    #[test]
    fn zone_sizes_follow_sources() {
        let out = scanned();
        assert!(out.series.zone_sizes[0][0] > 0, ".com swept from day 0");
        assert_eq!(
            out.series.zone_sizes[3][0], 0,
            ".nl not swept before cc start"
        );
        assert!(out.series.zone_sizes[3][25] > 0, ".nl swept after cc start");
        assert!(out.series.source_any[4][25] > 0, "Alexa has DPS users");
    }

    #[test]
    fn timelines_cover_always_on_domains() {
        let out = scanned();
        assert!(!out.timelines.map.is_empty());
        // Some domain should reference one provider on every measured day.
        let full = out
            .timelines
            .map
            .values()
            .filter(|t| t.any.count() == 30)
            .count();
        assert!(full > 0, "always-on timelines exist");
    }

    #[test]
    fn archive_scan_matches_in_memory_scan() {
        let mut world = World::imc2016(ScenarioParams::tiny(11));
        let config = StudyConfig {
            days: 10,
            cc_start_day: 6,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);
        let path =
            std::env::temp_dir().join(format!("dps-core-scan-archive-{}.dps", std::process::id()));
        store.save_archive(&path).unwrap();
        let archive = dps_store::Archive::open(&path).unwrap();
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        let scanner = Scanner::new(&refs);
        let mem = scanner.run(&store);
        let arch = scanner.run_archive(&archive).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(arch.series.days, mem.series.days);
        assert_eq!(arch.series.zone_sizes, mem.series.zone_sizes);
        assert_eq!(arch.series.provider_any, mem.series.provider_any);
        assert_eq!(arch.series.provider_asn, mem.series.provider_asn);
        assert_eq!(arch.series.provider_cname, mem.series.provider_cname);
        assert_eq!(arch.series.provider_ns, mem.series.provider_ns);
        assert_eq!(arch.series.tld_any, mem.series.tld_any);
        assert_eq!(arch.series.source_any, mem.series.source_any);
        assert_eq!(arch.timelines.map.len(), mem.timelines.map.len());
    }

    /// `run_store` over a sharded archive must reproduce the in-memory
    /// scan exactly: per-shard partials sum back to the logical page
    /// counts, so shard count is invisible in every output series.
    #[test]
    fn sharded_scan_matches_single_file_scan() {
        let mut world = World::imc2016(ScenarioParams::tiny(11));
        let config = StudyConfig {
            days: 10,
            cc_start_day: 6,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);
        let dir =
            std::env::temp_dir().join(format!("dps-core-scan-sharded-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("archive.dps");
        store.save_archive_with_shards(&path, 3).unwrap();
        let reader = dps_store::StoreReader::open_auto(&path).unwrap();
        assert!(reader.is_sharded());
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        let scanner = Scanner::new(&refs);
        let mem = scanner.run(&store);
        let sharded = scanner.run_store(&reader).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(sharded.series.days, mem.series.days);
        assert_eq!(sharded.series.zone_sizes, mem.series.zone_sizes);
        assert_eq!(sharded.series.provider_any, mem.series.provider_any);
        assert_eq!(sharded.series.provider_asn, mem.series.provider_asn);
        assert_eq!(sharded.series.provider_cname, mem.series.provider_cname);
        assert_eq!(sharded.series.provider_ns, mem.series.provider_ns);
        assert_eq!(sharded.series.tld_any, mem.series.tld_any);
        assert_eq!(sharded.series.source_any, mem.series.source_any);
        assert_eq!(sharded.timelines.map.len(), mem.timelines.map.len());
    }

    #[test]
    fn asn_is_subset_of_any() {
        let out = scanned();
        for tl in out.timelines.map.values() {
            for i in 0..tl.any.len() {
                if tl.asn.get(i) {
                    assert!(tl.any.get(i));
                }
            }
        }
    }
}
