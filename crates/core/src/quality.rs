//! Data-quality gating: the automated analogue of the paper's §4.2 manual
//! cleaning ("days with poor sweep coverage were discarded by hand").
//!
//! The measurement layer persists a per-(day, source)
//! [`DayQuality`](dps_measure::DayQuality) record in the archive; this
//! module turns those records into a [`QualityMask`] — the set of
//! (day, source) cells whose coverage fell below a threshold — which the
//! growth and flux analyses consult so an outage day appears as *missing
//! data*, not as a mass exodus from every protection provider.

use dps_measure::{SnapshotStore, Source};
use std::collections::BTreeSet;

/// Default minimum usable coverage: a day where more than 2% of a source's
/// names ended in unknown state is dropped from trend analyses.
pub const DEFAULT_MIN_COVERAGE: f64 = 0.98;

/// The set of (day, source) cells gated out by coverage.
#[derive(Debug, Clone)]
pub struct QualityMask {
    min_coverage: f64,
    masked: BTreeSet<(u32, u8)>,
}

impl QualityMask {
    /// Builds the mask from a store's quality records. Days without a
    /// quality record are never masked (old archives predate quality
    /// tracking; absence of evidence is not evidence of a bad sweep).
    pub fn from_store(store: &SnapshotStore, min_coverage: f64) -> Self {
        let masked = store
            .all_qualities()
            .filter(|q| q.coverage() < min_coverage)
            .map(|q| (q.day, q.source.index() as u8))
            .collect();
        Self {
            min_coverage,
            masked,
        }
    }

    /// A mask that gates nothing (the unmasked ablation arm).
    pub fn allow_all() -> Self {
        Self {
            min_coverage: 0.0,
            masked: BTreeSet::new(),
        }
    }

    /// The coverage threshold the mask was built with.
    pub fn min_coverage(&self) -> f64 {
        self.min_coverage
    }

    /// Whether `(day, source)` is gated out.
    pub fn is_masked(&self, day: u32, source: Source) -> bool {
        self.masked.contains(&(day, source.index() as u8))
    }

    /// Masked days of one source, ascending.
    pub fn masked_days(&self, source: Source) -> Vec<u32> {
        self.masked
            .iter()
            .filter(|(_, s)| *s == source.index() as u8)
            .map(|&(d, _)| d)
            .collect()
    }

    /// Days masked for *any* gTLD source, ascending — the day set gated
    /// out of combined-gTLD series (a bad sweep of one zone corrupts the
    /// combined count for the whole day).
    pub fn masked_gtld_days(&self) -> Vec<u32> {
        let days: BTreeSet<u32> = self
            .masked
            .iter()
            .filter(|(_, s)| {
                matches!(
                    Source::from_index(u32::from(*s)),
                    Some(Source::Com | Source::Net | Source::Org)
                )
            })
            .map(|&(d, _)| d)
            .collect();
        days.into_iter().collect()
    }

    /// Total masked (day, source) cells.
    pub fn len(&self) -> usize {
        self.masked.len()
    }

    /// Whether nothing is masked.
    pub fn is_empty(&self) -> bool {
        self.masked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_measure::DayQuality;

    fn store_with(qualities: &[(u32, Source, u32, u32)]) -> SnapshotStore {
        let mut store = SnapshotStore::new();
        for &(day, source, attempted, failed) in qualities {
            store.add_quality(DayQuality::perfect(day, source, attempted, failed));
        }
        store
    }

    #[test]
    fn mask_gates_low_coverage_days_only() {
        let store = store_with(&[
            (0, Source::Com, 100, 0),
            (1, Source::Com, 100, 1),  // 0.99 — above threshold
            (2, Source::Com, 100, 60), // 0.40 — masked
            (2, Source::Net, 100, 0),
        ]);
        let mask = QualityMask::from_store(&store, DEFAULT_MIN_COVERAGE);
        assert!(!mask.is_masked(0, Source::Com));
        assert!(!mask.is_masked(1, Source::Com));
        assert!(mask.is_masked(2, Source::Com));
        assert!(!mask.is_masked(2, Source::Net));
        assert_eq!(mask.masked_days(Source::Com), vec![2]);
        assert_eq!(mask.masked_gtld_days(), vec![2]);
        assert_eq!(mask.len(), 1);
    }

    #[test]
    fn days_without_records_are_never_masked() {
        let store = store_with(&[(5, Source::Com, 10, 10)]);
        let mask = QualityMask::from_store(&store, 0.5);
        assert!(mask.is_masked(5, Source::Com));
        assert!(!mask.is_masked(4, Source::Com), "no record, no mask");
    }

    #[test]
    fn allow_all_masks_nothing() {
        let mask = QualityMask::allow_all();
        assert!(mask.is_empty());
        assert!(!mask.is_masked(0, Source::Com));
    }

    #[test]
    fn cc_sources_do_not_gate_gtld_days() {
        let store = store_with(&[(3, Source::Nl, 100, 100), (4, Source::Alexa, 100, 100)]);
        let mask = QualityMask::from_store(&store, DEFAULT_MIN_COVERAGE);
        assert_eq!(mask.len(), 2);
        assert!(mask.masked_gtld_days().is_empty());
    }
}
