//! Property tests for the analysis algebra: peak extraction, flux
//! conservation, day-bit invariants, and smoothing bounds.

use dps_core::growth::{analyze, median_smooth, GrowthConfig};
use dps_core::scan::{Timeline, Timelines};
use dps_core::util::DayBits;
use dps_core::{flux, peaks};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_bits(days: usize) -> impl Strategy<Value = DayBits> {
    proptest::collection::vec(any::<bool>(), days).prop_map(move |v| {
        let mut b = DayBits::new(v.len());
        for (i, set) in v.iter().enumerate() {
            if *set {
                b.set(i);
            }
        }
        b
    })
}

fn tl(asn: DayBits) -> Timeline {
    let n = asn.len();
    Timeline {
        any: asn.clone(),
        asn,
        cname: DayBits::new(n),
        ns: DayBits::new(n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn runs_reconstruct_bits(bits in arb_bits(120)) {
        let mut rebuilt = DayBits::new(bits.len());
        let runs = bits.runs();
        for (start, len) in &runs {
            prop_assert!(*len > 0);
            for i in *start..start + len {
                rebuilt.set(i);
            }
        }
        prop_assert_eq!(&rebuilt, &bits);
        // Runs are separated by at least one clear day.
        for w in runs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 < w[1].0);
        }
        // Total run length equals the population count.
        prop_assert_eq!(runs.iter().map(|(_, l)| l).sum::<usize>(), bits.count());
    }

    #[test]
    fn peak_durations_sum_to_diverted_days(bits in arb_bits(90)) {
        let mut map = HashMap::new();
        let total = bits.count();
        let n_runs = bits.runs().len();
        map.insert((0u32, 0u8), tl(bits));
        let timelines = Timelines { days: (0..90).collect(), map };
        let dists = peaks::analyze_with(&timelines, 1, 1, 0);
        if n_runs >= 3 {
            prop_assert_eq!(dists[0].domains, 1);
            prop_assert_eq!(dists[0].durations.iter().sum::<u32>() as usize, total);
        } else {
            prop_assert_eq!(dists[0].domains, 0);
        }
    }

    #[test]
    fn flux_conservation(bit_sets in proptest::collection::vec(arb_bits(60), 1..30)) {
        let mut map = HashMap::new();
        let mut expected = 0u64;
        for (e, bits) in bit_sets.into_iter().enumerate() {
            if bits.count() > 0 {
                expected += 1;
            }
            map.insert((e as u32, 0u8), tl(bits));
        }
        // Timelines with zero observed days never occur in practice but the
        // analysis must not miscount them either.
        let timelines = Timelines { days: (0..60).collect(), map };
        let series = &flux::analyze(&timelines, 1, 14)[0];
        let (influx, outflux) = flux::total_domains(series);
        prop_assert_eq!(influx, expected);
        prop_assert_eq!(influx, outflux);
    }

    #[test]
    fn median_smooth_stays_within_range(
        series in proptest::collection::vec(0u32..100_000, 1..200),
        window in 1usize..60,
    ) {
        let as_f64: Vec<f64> = series.iter().map(|&v| f64::from(v)).collect();
        let smoothed = median_smooth(&as_f64, window);
        let min = *series.iter().min().unwrap() as f64;
        let max = *series.iter().max().unwrap() as f64;
        prop_assert_eq!(smoothed.len(), series.len());
        for v in smoothed {
            prop_assert!((min..=max).contains(&v), "{v} outside [{min}, {max}]");
        }
    }

    #[test]
    fn growth_factor_of_constant_series_is_one(
        level in 100u32..1_000_000,
        n in 30usize..200,
    ) {
        let days: Vec<u32> = (0..n as u32).collect();
        let series = vec![level; n];
        let g = analyze(&days, &series, &GrowthConfig::default());
        prop_assert!((g.factor - 1.0).abs() < 1e-9);
        prop_assert!(g.shifts.is_empty());
    }

    #[test]
    fn cleaning_never_changes_endpoints(
        series in proptest::collection::vec(1000u32..2000, 50..200),
    ) {
        let days: Vec<u32> = (0..series.len() as u32).collect();
        let g = analyze(&days, &series, &GrowthConfig::default());
        prop_assert_eq!(g.cleaned[0], f64::from(series[0]));
        prop_assert_eq!(
            *g.cleaned.last().unwrap(),
            f64::from(*series.last().unwrap())
        );
    }

    #[test]
    fn cdf_is_a_distribution(durations in proptest::collection::vec(1u32..200, 0..100)) {
        let mut sorted = durations;
        sorted.sort_unstable();
        let dist = peaks::PeakDistribution { durations: sorted.clone(), ..Default::default() };
        if !sorted.is_empty() {
            prop_assert_eq!(dist.cdf(*sorted.last().unwrap()), 1.0);
            prop_assert_eq!(dist.cdf(0), sorted.iter().filter(|&&d| d == 0).count() as f64 / sorted.len() as f64);
            let q80 = dist.quantile(0.8).unwrap();
            prop_assert!(dist.cdf(q80) >= 0.8);
        } else {
            prop_assert!(dist.quantile(0.8).is_none());
        }
    }
}
