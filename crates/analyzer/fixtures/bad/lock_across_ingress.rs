// A guard is held across a call whose callee reads from the network: a
// slow (or silent) hostile peer then controls how long every other
// thread waits on `state`. The drift waiver covers the marked root —
// this fixture is about the lock hazard, not the scope.

// dps: allow-file(policy-drift, reason = "fixture: drift is exercised by its own pair")

struct Server {
    state: Mutex<u64>,
}

impl Server {
    fn poll(&self, sock: &UdpSocket, buf: &mut [u8]) {
        let mut state = self.state.lock();
        // dps-expect: lock-across-ingress
        let n = pull(sock, buf);
        *state += n as u64;
    }
}

// dps: ingress
fn pull(sock: &UdpSocket, buf: &mut [u8]) -> usize {
    sock.recv_from(buf).map(|(n, _)| n).unwrap_or(0)
}
