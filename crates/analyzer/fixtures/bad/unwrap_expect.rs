//! Panics on untrusted input instead of returning a typed error.
// dps-expect: unwrap-expect
// dps-expect: unwrap-expect

fn header(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

fn magic(v: &[u8]) -> &[u8] {
    v.get(..4).expect("short buffer")
}
