//! Environment reads make behaviour depend on the invoking shell.
// dps-expect: env-read

fn archive_dir() -> String {
    std::env::var("DPS_ARCHIVE_DIR").unwrap_or_default()
}
