//! A bare `#[allow]` hides a lint with no recorded justification.
// dps-expect: allow-without-reason

#[allow(dead_code)]
fn orphan() {}
