//! Panic macros crash the decoder instead of rejecting the message.
// dps-expect: panic-macro
// dps-expect: panic-macro

fn rcode(v: u8) -> &'static str {
    match v {
        0 => "NOERROR",
        2 => "SERVFAIL",
        3 => "NXDOMAIN",
        _ => panic!("unhandled rcode {v}"),
    }
}

fn later() {
    todo!("write this before shipping")
}
