// A file that takes in untrusted bytes (the `// dps: ingress` marker
// stands in for a socket read inside a declared ingress surface) but
// that the hand-written panic-safety scope never listed: the declared
// policy has drifted from the real surface. The code itself is fully
// checked — drift is about the scope, not about any one panic site.

// dps-expect: policy-drift
// dps: ingress
fn pump(sock: &UdpSocket, buf: &mut [u8]) {
    let n = sock.recv_from(buf).map(|(n, _)| n).unwrap_or(0);
    let _ = parse(buf.get(..n).unwrap_or(&[]));
}

fn parse(frame: &[u8]) -> Option<u8> {
    frame.first().copied()
}
