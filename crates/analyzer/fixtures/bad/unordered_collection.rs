//! Hash-ordered collections leak nondeterministic iteration order.
// dps-expect: unordered-collection
// dps-expect: unordered-collection

use std::collections::HashMap;

fn count(keys: &[u32]) -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = Default::default();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
