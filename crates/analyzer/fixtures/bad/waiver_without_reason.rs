//! A waiver with no reason string suppresses nothing and is itself a
//! violation — the flagged construct still fires alongside it.
// dps-expect: waiver-without-reason
// dps-expect: unwrap-expect

fn first(v: &[u8]) -> u8 {
    // dps: allow(unwrap-expect)
    v.first().copied().unwrap()
}
