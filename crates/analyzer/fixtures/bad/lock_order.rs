// Two code paths take the same two locks in opposite orders: if one
// thread runs `flush` while another runs `reroute`, each can end up
// holding the lock the other is waiting on. The lint pairs every nested
// acquisition and flags the reversal.

struct Router {
    table: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Router {
    fn flush(&self) {
        let table = self.table.lock();
        let mut stats = self.stats.lock();
        *stats += table.len() as u64;
    }

    fn reroute(&self) {
        let mut stats = self.stats.lock();
        // dps-expect: lock-order
        let table = self.table.lock();
        *stats += table.len() as u64;
    }
}
