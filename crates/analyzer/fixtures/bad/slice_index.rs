//! Direct indexing panics the moment a truncated packet arrives.
// dps-expect: slice-index
// dps-expect: slice-index

fn opcode(msg: &[u8]) -> u8 {
    msg[2] >> 3
}

fn label(msg: &[u8], at: usize, len: usize) -> &[u8] {
    &msg[at..at + len]
}
