//! Reads the OS clock on a simulation path: runs stop being reproducible.
// dps-expect: wall-clock
// dps-expect: wall-clock

fn now_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis()
}

fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
