//! Ambient randomness: two same-seed runs diverge immediately.
// dps-expect: ambient-rng

fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
