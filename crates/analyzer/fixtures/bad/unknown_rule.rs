//! A waiver naming a rule that does not exist is a typo waiting to hide
//! a real violation someday.
// dps-expect: unknown-rule

fn noop() {
    // dps: allow(no-such-rule, reason = "typo'd rule id")
}
