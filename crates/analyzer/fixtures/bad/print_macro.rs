//! Library code writing to stdout/stderr pollutes tool output.
// dps-expect: print-macro
// dps-expect: print-macro

fn report(n: usize) {
    println!("{n} findings");
    eprintln!("done");
}
