// An ingress root reads raw bytes and hands them down a call chain; the
// helper two hops away unwraps them. The lexical panic-safety rule fires
// at the site, and the taint pass proves the site is reachable from the
// root — even though no scope ever listed this file.

// dps: ingress
fn pump(sock: &UdpSocket, buf: &mut [u8]) {
    let n = recv(sock, buf);
    dispatch(&buf[..n]); // dps: allow(slice-index, reason = "n is recv's return, <= buf.len()")
}

fn recv(sock: &UdpSocket, buf: &mut [u8]) -> usize {
    sock.recv_from(buf).map(|(n, _)| n).unwrap_or(0)
}

fn dispatch(frame: &[u8]) {
    decode_len(frame);
}

fn decode_len(frame: &[u8]) -> u16 {
    // dps-expect: taint-panic
    // dps-expect: unwrap-expect
    // dps-expect: policy-drift
    u16::from_be_bytes(frame[..2].try_into().unwrap())
}
