//! A waiver matching nothing is stale: the code it excused is gone.
// dps-expect: unused-waiver

// dps: allow(wall-clock, reason = "nothing here reads a clock any more")
fn calm() {}
