// Counterpart of bad/lock_across_ingress.rs: the socket read happens
// first, with no guard held; the lock is taken only for the short
// in-memory update afterwards. The peer's pacing cannot stall anyone.

// dps: allow-file(policy-drift, reason = "fixture: drift is exercised by its own pair")

struct Server {
    state: Mutex<u64>,
}

impl Server {
    fn poll(&self, sock: &UdpSocket, buf: &mut [u8]) {
        let n = pull(sock, buf);
        let mut state = self.state.lock();
        *state += n as u64;
    }
}

// dps: ingress
fn pull(sock: &UdpSocket, buf: &mut [u8]) -> usize {
    sock.recv_from(buf).map(|(n, _)| n).unwrap_or(0)
}
