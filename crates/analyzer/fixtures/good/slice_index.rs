//! Panic-free counterpart: checked access returns `None` on truncation.

pub fn opcode(msg: &[u8]) -> Option<u8> {
    msg.get(2).map(|b| b >> 3)
}

pub fn label(msg: &[u8], at: usize, len: usize) -> Option<&[u8]> {
    msg.get(at..at.checked_add(len)?)
}
