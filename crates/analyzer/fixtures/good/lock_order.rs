// Counterpart of bad/lock_order.rs: both paths honour one global
// acquisition order (table before stats), so no interleaving can leave
// two threads holding what the other needs.

struct Router {
    table: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Router {
    fn flush(&self) {
        let table = self.table.lock();
        let mut stats = self.stats.lock();
        *stats += table.len() as u64;
    }

    fn reroute(&self) {
        let table = self.table.lock();
        let mut stats = self.stats.lock();
        *stats += table.len() as u64;
    }
}
