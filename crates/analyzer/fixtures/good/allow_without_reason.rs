//! Counterpart: the adjacent comment records why the lint is silenced.

// Constructed via `include!` in generated code; rustc cannot see the use.
#[allow(dead_code)]
fn generated_hook() {}
