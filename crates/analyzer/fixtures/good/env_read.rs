//! Deterministic counterpart: configuration is passed in explicitly.

pub struct Config {
    pub archive_dir: std::path::PathBuf,
}

pub fn archive_dir(config: &Config) -> &std::path::Path {
    &config.archive_dir
}
