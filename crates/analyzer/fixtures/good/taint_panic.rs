// Checked counterpart of bad/taint_panic.rs: the same ingress root and
// call chain, but the leaf propagates an Option instead of unwrapping,
// so nothing reachable from the root can panic. The file-level drift
// waiver stands in for adding the file to the panic-safety scope (that
// rule has its own fixture pair).

// dps: allow-file(policy-drift, reason = "fixture: drift is exercised by its own pair")
// dps: ingress
fn pump(sock: &UdpSocket, buf: &mut [u8]) {
    let n = recv(sock, buf);
    dispatch(buf.get(..n).unwrap_or(&[]));
}

fn recv(sock: &UdpSocket, buf: &mut [u8]) -> usize {
    sock.recv_from(buf).map(|(n, _)| n).unwrap_or(0)
}

fn dispatch(frame: &[u8]) {
    let _ = decode_len(frame);
}

fn decode_len(frame: &[u8]) -> Option<u16> {
    let hi = frame.first().copied()?;
    let lo = frame.get(1).copied()?;
    Some(u16::from_be_bytes([hi, lo]))
}
