//! Counterpart: the waiver names a real rule and actually matches one.

pub fn lookup(v: &[u8], i: usize) -> u8 {
    // dps: allow(slice-index, reason = "demo fixture: index guaranteed in range by caller contract")
    v[i]
}
