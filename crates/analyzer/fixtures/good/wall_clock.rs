//! Deterministic counterpart: time arrives as data (the virtual clock),
//! never from the OS.

pub fn elapsed_ms(virtual_now_ms: u64, started_ms: u64) -> u64 {
    virtual_now_ms.saturating_sub(started_ms)
}
