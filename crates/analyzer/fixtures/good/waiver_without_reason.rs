//! Counterpart: the same waiver with a written reason suppresses the
//! finding it targets.

pub fn first(v: &[u8]) -> u8 {
    // dps: allow(unwrap-expect, reason = "demo fixture: caller guarantees non-empty input")
    v.first().copied().unwrap()
}
