//! Counterpart: a file-level waiver that is genuinely exercised.

// dps: allow-file(print-macro, reason = "demo fixture: dev-only diagnostic dump, never linked into release binaries")
pub fn debug_dump(lines: &[String]) {
    for l in lines {
        eprintln!("{l}");
    }
}
