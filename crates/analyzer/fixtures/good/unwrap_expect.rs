//! Panic-free counterpart: absence propagates as `Option`/`Result`.

pub fn header(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

pub fn magic(v: &[u8]) -> Result<&[u8], String> {
    v.get(..4).ok_or_else(|| "short buffer".to_string())
}
