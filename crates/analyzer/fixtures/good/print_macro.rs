//! Counterpart: libraries return strings; binaries decide where they go.

pub fn report(n: usize) -> String {
    format!("{n} findings")
}
