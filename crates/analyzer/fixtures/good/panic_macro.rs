//! Panic-free counterpart: malformed input becomes an `Err` value.

pub fn rcode(v: u8) -> Result<&'static str, String> {
    match v {
        0 => Ok("NOERROR"),
        2 => Ok("SERVFAIL"),
        3 => Ok("NXDOMAIN"),
        other => Err(format!("unhandled rcode {other}")),
    }
}
