//! Deterministic counterpart: ordered maps iterate the same way every run.

use std::collections::BTreeMap;

pub fn count(keys: &[u32]) -> Vec<(u32, u32)> {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
