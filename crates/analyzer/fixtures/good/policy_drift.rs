// Counterpart of bad/policy_drift.rs: the same checked code with no
// ingress marker and no reads inside a declared ingress surface. No
// root, no drift — a file only enters the derived surface through
// evidence, never by resemblance.

fn pump(frames: &[Vec<u8>]) {
    for frame in frames {
        let _ = parse(frame);
    }
}

fn parse(frame: &[u8]) -> Option<u8> {
    frame.first().copied()
}
