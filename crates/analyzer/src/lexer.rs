//! A small Rust lexer: just enough fidelity for lexical rule matching.
//!
//! The token stream keeps identifiers, literals and punctuation with line
//! numbers; comments are collected separately (rules need them for waiver
//! parsing and `#[allow]` justification checks) and never appear as
//! tokens. String/char literals, raw strings (any `#` depth) and nested
//! block comments are consumed correctly so their *contents* can never
//! confuse a rule — `"panic!"` inside a string is not a panic site.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Punctuation. `::` is merged into a single token; everything else
    /// is one character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (for `Punct`, the punctuation itself).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block), stripped of its delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` markers, untrimmed.
    pub text: String,
    /// True if no token precedes the comment on its starting line.
    pub own_line: bool,
}

/// Lexer output: tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unknown bytes are skipped; the lexer never fails, since a
/// file that does not parse will be rejected by rustc anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        last_token_line: 0,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
    /// Line of the most recently emitted token (for `own_line` comments).
    last_token_line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_token_line = line;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_prefix() => { /* consumed inside */ }
                '\'' => self.char_or_lifetime(line),
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push_token(TokKind::Punct, "::".to_owned(), line);
                }
                _ => {
                    self.bump();
                    self.push_token(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = self.last_token_line != line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let own_line = self.last_token_line != line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            own_line,
        });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokKind::Literal, String::new(), line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns true
    /// (and consumes the literal) if the cursor really is at one;
    /// otherwise leaves the cursor alone so `ident()` takes over.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let line = self.line;
        let mut ahead = 1usize; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        match self.peek(ahead) {
            Some('"') => {}
            Some('\'') if hashes == 0 && self.peek(0) == Some('b') => {
                // b'x' byte literal: consume prefix, then reuse char lexing.
                self.bump();
                self.char_or_lifetime(line);
                return true;
            }
            _ => return false,
        }
        let raw = self.peek(if self.peek(0) == Some('b') { 1 } else { 0 }) == Some('r')
            || self.peek(0) == Some('r');
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes and the opening quote
        }
        if raw {
            // Raw string: ends at `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            // Plain byte string with escapes.
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.push_token(TokKind::Literal, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    // Covers \u{…} and malformed tails conservatively.
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push_token(TokKind::Literal, String::new(), line);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: 'ident not followed by a closing quote.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push_token(TokKind::Lifetime, text, line);
            }
            Some(_) => {
                // 'x' char literal (or the degenerate `''`).
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push_token(TokKind::Literal, String::new(), line);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Consume a decimal point, but never a `..` range.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "panic!(unwrap)"; x.unwrap();"#);
        let names = idents(r#"let s = "panic!(unwrap)"; x.unwrap();"#);
        assert_eq!(names, ["let", "s", "x", "unwrap"]);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let names = idents(r####"let s = r#"a "quoted" unwrap"#; end"####);
        assert_eq!(names, ["let", "s", "end"]);
    }

    #[test]
    fn nested_block_comments_and_line_comments() {
        let l = lex("a /* outer /* inner */ still */ b // tail\nc");
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[1].text.contains("tail"));
        assert!(!l.comments[1].own_line);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn double_colon_merges_and_lines_count() {
        let l = lex("a::b\nc");
        assert!(l.tokens[1].is_punct("::"));
        assert_eq!(l.tokens[3].line, 2);
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let l = lex("x[0..4]");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["x", "[", "0", ".", ".", "4", "]"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let names = idents(r#"let m = b"DPSARCH1"; let c = b'x'; done"#);
        assert_eq!(names, ["let", "m", "let", "c", "done"]);
    }
}
