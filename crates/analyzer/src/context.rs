//! Structural context for a token stream: which tokens belong to test
//! code (`#[cfg(test)]` modules, `#[test]` functions) and therefore fall
//! outside every rule's scope.
//!
//! The scanner is AST-lite: it tracks brace depth and attribute spans
//! rather than building a real syntax tree. A test-marking attribute arms
//! a pending skip; the next `{` at the same depth opens the skipped
//! region, and a `;` at the same depth (e.g. `#[cfg(test)] use x;`)
//! cancels it.

use crate::lexer::{Lexed, TokKind};

/// Per-file structural context.
#[derive(Debug)]
pub struct Context {
    /// `skipped[i]` — token `i` is inside test-only code.
    pub skipped: Vec<bool>,
    /// 1-based inclusive line ranges covered by skipped regions (used to
    /// drop comments — and the waivers inside them — in test code).
    pub skipped_lines: Vec<(u32, u32)>,
}

impl Context {
    /// True if `line` falls inside any skipped region.
    pub fn line_skipped(&self, line: u32) -> bool {
        self.skipped_lines
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// True if the attribute body (tokens between `#[` and `]`) marks test
/// code: `test`, `cfg(test)`, `cfg(any(test, …))`, `tokio::test`, bench.
fn is_test_attr(body: &[String]) -> bool {
    match body.first().map(String::as_str) {
        Some("test") | Some("bench") => true,
        Some("cfg") | Some("cfg_attr") => body.iter().any(|t| t == "test"),
        Some("tokio") => body.iter().any(|t| t == "test"),
        _ => false,
    }
}

/// Scans the token stream once and classifies every token.
pub fn scan(lexed: &Lexed) -> Context {
    let toks = &lexed.tokens;
    let mut skipped = vec![false; toks.len()];
    let mut skipped_lines = Vec::new();
    let mut depth = 0i32;
    // Armed by a test attribute at a given depth, waiting for `{` or `;`.
    let mut pending_test: Option<i32> = None;
    // Depth at which an active skip region closes.
    let mut skip_until: Option<i32> = None;
    let mut region_start_line = 0u32;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let in_skip = skip_until.is_some();
        if in_skip {
            skipped[i] = true;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if !in_skip {
                        if let Some(d) = pending_test {
                            if depth == d + 1 {
                                skip_until = Some(d);
                                region_start_line = t.line;
                                pending_test = None;
                                skipped[i] = true;
                            }
                        }
                    }
                }
                "}" => {
                    depth -= 1;
                    if let Some(d) = skip_until {
                        if depth == d {
                            skip_until = None;
                            skipped_lines.push((region_start_line, t.line));
                        }
                    }
                }
                ";" if pending_test == Some(depth) => {
                    pending_test = None;
                }
                "#" if !in_skip => {
                    // Attribute: `#[…]` or `#![…]`. Collect ident tokens of
                    // the body up to the matching `]`.
                    let mut j = i + 1;
                    if j < toks.len() && toks[j].is_punct("!") {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].is_punct("[") {
                        let mut body = Vec::new();
                        let mut nest = 0i32;
                        let mut k = j;
                        while k < toks.len() {
                            let a = &toks[k];
                            if a.is_punct("[") {
                                nest += 1;
                            } else if a.is_punct("]") {
                                nest -= 1;
                                if nest == 0 {
                                    break;
                                }
                            } else if a.kind == TokKind::Ident {
                                body.push(a.text.clone());
                            }
                            k += 1;
                        }
                        if is_test_attr(&body) {
                            pending_test = Some(depth);
                        }
                        i = k + 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    if let Some(_d) = skip_until {
        // Unbalanced braces (file tail); close the region at EOF.
        let last = toks.last().map_or(region_start_line, |t| t.line);
        skipped_lines.push((region_start_line, last));
    }
    Context {
        skipped,
        skipped_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn skipped_idents(src: &str) -> Vec<String> {
        let l = lex(src);
        let ctx = scan(&l);
        l.tokens
            .iter()
            .zip(&ctx.skipped)
            .filter(|(t, &s)| s && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_module_is_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\nfn after() {}";
        let s = skipped_idents(src);
        assert!(s.contains(&"helper".to_owned()));
        assert!(!s.contains(&"live".to_owned()));
        assert!(!s.contains(&"after".to_owned()));
    }

    #[test]
    fn test_fn_is_skipped() {
        let src = "#[test]\nfn check() { body(); }\nfn live() {}";
        let s = skipped_idents(src);
        assert!(s.contains(&"body".to_owned()));
        assert!(!s.contains(&"live".to_owned()));
    }

    #[test]
    fn cfg_test_use_does_not_arm_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }";
        let s = skipped_idents(src);
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn non_test_attr_is_inert() {
        let src = "#[derive(Debug)]\nstruct S { f: u8 }\nfn live() { g(); }";
        assert!(skipped_idents(src).is_empty());
    }

    #[test]
    fn skipped_line_ranges_cover_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t {\n  fn b() {}\n}\nfn c() {}";
        let l = lex(src);
        let ctx = scan(&l);
        assert!(ctx.line_skipped(4));
        assert!(!ctx.line_skipped(1));
        assert!(!ctx.line_skipped(6));
    }
}
