//! Workspace call graph over [`crate::symbols`] output.
//!
//! Resolution is deliberately conservative: a call edge is added to
//! every function the call site *could* mean. Method calls (`x.m(…)`)
//! resolve to every impl/trait method named `m` anywhere in the
//! workspace — the over-approximation that keeps dynamic dispatch and
//! unknown receiver types sound for reachability. Path calls
//! (`a::b::f(…)`) resolve by suffix-matching the written qualifier
//! against each candidate's canonical path (crate, file modules, inline
//! modules, owner type). Calls into external crates resolve to nothing
//! and simply terminate propagation.
//!
//! Two edge sets come out of one resolution pass. [`Graph::edges`] is
//! the full over-approximation above, which reachability (taint) wants:
//! a missed path is a missed panic. [`Graph::edges_precise`] keeps only
//! the edges with positive evidence — path-qualified calls, unqualified
//! free calls, and method calls whose name has exactly one impl in the
//! workspace and does not shadow a std method (see [`STD_SHADOWED`]).
//! The lock lattice runs on the precise set: a spurious edge
//! there doesn't merely widen a report, it *manufactures* deadlock
//! cycles and I/O taints (every `.insert(…)` would alias every `insert`
//! impl in the workspace), so precision is the sound default for it.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{FileSymbols, FnSym};

/// A function's position in the workspace: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// Method names shadowed by std prelude/collection/iterator methods. A
/// call like `.sum()` or `.insert(…)` is overwhelmingly more likely to
/// mean the std method than a workspace impl that happens to share the
/// name, so such a match is never *positive evidence* — the edge stays
/// in the over-approximate set but out of the precise one.
const STD_SHADOWED: &[&str] = &[
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "chain",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "count",
    "drain",
    "ends_with",
    "extend",
    "filter",
    "find",
    "first",
    "flush",
    "fold",
    "from",
    "get",
    "get_mut",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "peek",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "rev",
    "seek",
    "skip",
    "sort",
    "sort_by",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "write",
    "zip",
];

/// The workspace symbol index plus the resolved call graph.
pub struct Graph<'a> {
    /// `(relative path, symbols)` per file, in the order given.
    pub files: &'a [(String, FileSymbols)],
    /// Flat function list.
    pub fns: Vec<FnId>,
    /// `edges[i]` — indices into `fns` that function `i` may call.
    pub edges: Vec<Vec<usize>>,
    /// Subset of `edges[i]` resolved with positive evidence: path calls
    /// and method calls with a unique workspace candidate.
    pub edges_precise: Vec<Vec<usize>>,
    /// Reverse lookup: `FnId` → index into `fns`.
    index: BTreeMap<FnId, usize>,
}

/// Canonical path of a function: crate and module segments from the
/// file path, inline `mod`s, then the owner type if any. The bare fn
/// name is kept separate.
fn canonical_qualifier(rel: &str, f: &FnSym) -> Vec<String> {
    let mut q = module_path(rel);
    q.extend(f.mods.iter().cloned());
    if let Some(owner) = &f.owner {
        q.push(owner.clone());
    }
    q
}

/// Derives the module path of a file from its workspace-relative path.
/// `crates/dns/src/wire.rs` → `["dps_dns", "wire"]` (crate names carry
/// a `dps-` prefix on disk; both the prefixed and bare forms are kept
/// usable by pushing the directory name too when they differ).
pub fn module_path(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut out = Vec::new();
    // crates/<name>/src/…
    let rest = match parts.as_slice() {
        ["crates", name, "src", rest @ ..] => {
            out.push(format!("dps_{}", name.replace('-', "_")));
            rest
        }
        _ => {
            // Anything else (fixtures, tools): stem-per-directory.
            &parts[..]
        }
    };
    for (i, part) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.to_owned());
            }
        } else if *part != "bin" {
            out.push((*part).to_owned());
        }
    }
    out
}

impl<'a> Graph<'a> {
    /// Builds the call graph for a set of analyzed files.
    pub fn build(files: &'a [(String, FileSymbols)]) -> Self {
        let mut fns = Vec::new();
        let mut index = BTreeMap::new();
        for (fi, (_, syms)) in files.iter().enumerate() {
            for (si, _) in syms.fns.iter().enumerate() {
                index.insert((fi, si), fns.len());
                fns.push((fi, si));
            }
        }

        // Name-based candidate indexes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (gi, &(fi, si)) in fns.iter().enumerate() {
            let f = &files[fi].1.fns[si];
            by_name.entry(f.name.as_str()).or_default().push(gi);
            if f.owner.is_some() {
                methods.entry(f.name.as_str()).or_default().push(gi);
            }
        }

        let mut edges = vec![Vec::new(); fns.len()];
        let mut edges_precise = vec![Vec::new(); fns.len()];
        for (gi, &(fi, si)) in fns.iter().enumerate() {
            let caller = &files[fi].1.fns[si];
            let caller_qual = canonical_qualifier(&files[fi].0, caller);
            let caller_crate = module_path(&files[fi].0).first().cloned();
            let mut out = BTreeSet::new();
            let mut out_precise = BTreeSet::new();
            for call in &caller.calls {
                let Some(name) = call.path.last() else {
                    continue;
                };
                if call.method {
                    if let Some(cands) = methods.get(name.as_str()) {
                        let them: Vec<usize> = cands.iter().copied().filter(|&c| c != gi).collect();
                        if them.len() == 1 && !STD_SHADOWED.contains(&name.as_str()) {
                            out_precise.insert(them[0]);
                        }
                        out.extend(them);
                    }
                    continue;
                }
                let Some(cands) = by_name.get(name.as_str()) else {
                    continue;
                };
                // Normalise the written qualifier: drop `super`/`self`,
                // rewrite `crate`/`Self` to the caller's own position.
                let mut qual: Vec<String> = Vec::new();
                for seg in &call.path[..call.path.len() - 1] {
                    match seg.as_str() {
                        "super" | "self" => {}
                        "crate" => {
                            if let Some(c) = &caller_crate {
                                qual.push(c.clone());
                            }
                        }
                        "Self" => {
                            if let Some(owner) = &caller.owner {
                                qual.push(owner.clone());
                            }
                        }
                        s => qual.push(s.to_owned()),
                    }
                }
                for &c in cands {
                    if c == gi {
                        continue;
                    }
                    let (cfi, csi) = fns[c];
                    let cand = &files[cfi].1.fns[csi];
                    let cand_qual = canonical_qualifier(&files[cfi].0, cand);
                    if qual.is_empty() {
                        // Unqualified free call: same module first, else
                        // a same-crate free fn. Never a cross-crate or
                        // method match — that would drown the graph.
                        let same_module = cand.owner.is_none() && cand_qual == caller_qual;
                        let same_crate = cand.owner.is_none()
                            && cand_qual.first() == caller_qual.first()
                            && !caller_qual.is_empty();
                        if same_module || same_crate {
                            out.insert(c);
                            out_precise.insert(c);
                        }
                    } else if is_suffix(&qual, &cand_qual) {
                        out.insert(c);
                        out_precise.insert(c);
                    }
                }
            }
            edges[gi] = out.into_iter().collect();
            edges_precise[gi] = out_precise.into_iter().collect();
        }

        Graph {
            files,
            fns,
            edges,
            edges_precise,
            index,
        }
    }

    /// Global index of a function, if it exists.
    pub fn id(&self, fid: FnId) -> Option<usize> {
        self.index.get(&fid).copied()
    }

    /// The function symbol behind global index `gi`.
    pub fn sym(&self, gi: usize) -> &FnSym {
        let (fi, si) = self.fns[gi];
        &self.files[fi].1.fns[si]
    }

    /// The relative path of the file containing global index `gi`.
    pub fn path(&self, gi: usize) -> &str {
        self.fns
            .get(gi)
            .and_then(|&(fi, _)| self.files.get(fi))
            .map_or("<unknown>", |(rel, _)| rel.as_str())
    }

    /// Forward BFS from a root set; returns, per function, the global
    /// index of the predecessor it was first reached through (roots map
    /// to themselves). Unreached functions are absent.
    pub fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        pred
    }
}

/// True if `qual` is a suffix of `cand_qual` — matching how Rust paths
/// are written relative to some enclosing scope. A single-segment
/// qualifier may also match the *crate* head (`wire::decode` written
/// from a sibling crate's `use dps_dns::wire`).
fn is_suffix(qual: &[String], cand_qual: &[String]) -> bool {
    if qual.len() > cand_qual.len() {
        return false;
    }
    cand_qual.ends_with(qual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;
    use crate::symbols;

    fn build_files(files: &[(&str, &str)]) -> Vec<(String, FileSymbols)> {
        files
            .iter()
            .map(|(rel, src)| {
                let l = lex(src);
                let ctx = context::scan(&l);
                ((*rel).to_owned(), symbols::extract(&l, &ctx))
            })
            .collect()
    }

    /// Resolved callee names (path:fn) for the named caller.
    fn callees(files: &[(String, FileSymbols)], caller: &str) -> Vec<String> {
        let g = Graph::build(files);
        let gi = (0..g.fns.len())
            .find(|&i| g.sym(i).name == caller)
            .unwrap_or_else(|| panic!("no fn {caller}"));
        g.edges[gi]
            .iter()
            .map(|&c| format!("{}:{}", g.path(c), g.sym(c).name))
            .collect()
    }

    #[test]
    fn module_paths_from_rel() {
        assert_eq!(module_path("crates/dns/src/lib.rs"), ["dps_dns"]);
        assert_eq!(module_path("crates/dns/src/wire.rs"), ["dps_dns", "wire"]);
        assert_eq!(
            module_path("crates/ecosystem/src/bin/dpscope.rs"),
            ["dps_ecosystem", "dpscope"]
        );
    }

    #[test]
    fn cross_module_path_call() {
        let files = build_files(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { wire::decode(b); other::decode(b); }",
            ),
            ("crates/a/src/wire.rs", "pub fn decode(b: &[u8]) {}"),
            ("crates/b/src/wire.rs", "pub fn decode(b: &[u8]) {}"),
        ]);
        // `wire::decode` is ambiguous between both crates' `wire`
        // modules — conservatively resolves to both.
        assert_eq!(
            callees(&files, "entry"),
            ["crates/a/src/wire.rs:decode", "crates/b/src/wire.rs:decode"]
        );
    }

    #[test]
    fn crate_qualified_call_resolves_within_crate() {
        let files = build_files(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { crate::wire::decode(b); }",
            ),
            ("crates/a/src/wire.rs", "pub fn decode(b: &[u8]) {}"),
            ("crates/b/src/wire.rs", "pub fn decode(b: &[u8]) {}"),
        ]);
        assert_eq!(callees(&files, "entry"), ["crates/a/src/wire.rs:decode"]);
    }

    #[test]
    fn unqualified_free_call_stays_in_crate() {
        let files = build_files(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); }"),
            ("crates/a/src/util.rs", "pub fn helper() {}"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        assert_eq!(callees(&files, "entry"), ["crates/a/src/util.rs:helper"]);
    }

    #[test]
    fn method_calls_over_approximate() {
        let files = build_files(&[
            ("crates/a/src/lib.rs", "fn entry(x: &dyn T) { x.parse(); }"),
            (
                "crates/a/src/m.rs",
                "impl A { fn parse(&self) {} }\nfn parse_free() {}",
            ),
            ("crates/b/src/m.rs", "impl B { fn parse(&self) {} }"),
        ]);
        // Every impl method named `parse`, in any crate; never the free fn.
        assert_eq!(
            callees(&files, "entry"),
            ["crates/a/src/m.rs:parse", "crates/b/src/m.rs:parse"]
        );
    }

    #[test]
    fn self_and_type_qualified_calls() {
        let files = build_files(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n fn a(&self) { Self::b(); S::c(); }\n fn b() {}\n fn c() {}\n}",
        )]);
        assert_eq!(
            callees(&files, "a"),
            ["crates/a/src/lib.rs:b", "crates/a/src/lib.rs:c"]
        );
    }

    #[test]
    fn shadowed_names_prefer_exact_qualifier() {
        let files = build_files(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { zonefile::parse(z); }\nfn parse() {}",
            ),
            ("crates/a/src/zonefile.rs", "pub fn parse(z: &str) {}"),
        ]);
        // Qualified call must not resolve to the same-module free `parse`.
        assert_eq!(callees(&files, "entry"), ["crates/a/src/zonefile.rs:parse"]);
    }

    #[test]
    fn precise_edges_drop_ambiguous_method_calls() {
        let files = build_files(&[
            (
                "crates/a/src/lib.rs",
                "fn entry(x: &dyn T) { x.decode(); x.solo(); x.sum(); helper(); }\nfn helper() {}",
            ),
            (
                "crates/a/src/m.rs",
                "impl A { fn decode(&self) {} fn solo(&self) {} fn sum(&self) {} }",
            ),
            ("crates/b/src/m.rs", "impl B { fn decode(&self) {} }"),
        ]);
        let g = Graph::build(&files);
        let gi = (0..g.fns.len())
            .find(|&i| g.sym(i).name == "entry")
            .unwrap();
        let names = |edges: &[usize]| -> Vec<String> {
            edges.iter().map(|&c| g.sym(c).name.clone()).collect()
        };
        // Full set: both `decode` impls, `solo`, the std-shadowed `sum`,
        // the free helper.
        assert_eq!(
            names(&g.edges[gi]),
            ["helper", "decode", "solo", "sum", "decode"]
        );
        // Precise set: ambiguous `decode` and std-shadowed `sum` are
        // gone; only the unique non-shadowed `solo` and the free call
        // carry positive evidence.
        assert_eq!(names(&g.edges_precise[gi]), ["helper", "solo"]);
    }

    #[test]
    fn external_calls_terminate() {
        let files = build_files(&[(
            "crates/a/src/lib.rs",
            "fn entry() { std::fs::read(p); serde_json::to_string(x); }",
        )]);
        assert_eq!(callees(&files, "entry"), Vec::<String>::new());
    }

    #[test]
    fn reach_is_transitive_and_records_predecessors() {
        let files = build_files(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let g = Graph::build(&files);
        let root = (0..g.fns.len()).find(|&i| g.sym(i).name == "root").unwrap();
        let pred = g.reach(&[root]);
        let names: Vec<_> = pred.keys().map(|&k| g.sym(k).name.clone()).collect();
        assert_eq!(names, ["root", "mid", "leaf"]);
        let leaf = (0..g.fns.len()).find(|&i| g.sym(i).name == "leaf").unwrap();
        assert_eq!(g.sym(pred[&leaf]).name, "mid");
    }

    #[test]
    fn trait_impls_resolve_from_method_call() {
        let files = build_files(&[
            (
                "crates/a/src/lib.rs",
                "trait Codec { fn decode(&self, b: &[u8]); }\nfn entry(c: &dyn Codec) { c.decode(b); }",
            ),
            (
                "crates/a/src/imp.rs",
                "impl Codec for Wire { fn decode(&self, b: &[u8]) { inner(); } }\nfn inner() {}",
            ),
        ]);
        assert_eq!(callees(&files, "entry"), ["crates/a/src/imp.rs:decode"]);
        assert_eq!(callees(&files, "decode"), ["crates/a/src/imp.rs:inner"]);
    }
}
