//! # dps-analyzer — workspace-native static analysis
//!
//! Repo-specific lints generic clippy cannot express, enforcing the two
//! invariants the whole reproduction rests on:
//!
//! 1. **Determinism** — same-seed runs must be byte-identical (the chaos
//!    smoke gate `cmp`s two archives). Nothing on the persistence or
//!    simulation path may read wall clocks, ambient randomness, or the
//!    environment, or iterate a `HashMap`/`HashSet`.
//! 2. **Panic-safety** — every decoder touching wire/archive bytes must
//!    propagate errors, never panic: no `unwrap`/`expect`/`panic!`/direct
//!    indexing in the designated untrusted-input modules.
//!
//! Plus hygiene: no stray printing outside binaries/benches, and no
//! `#[allow(…)]` without a written justification.
//!
//! Since PR 9 the analyzer is inter-procedural: a workspace symbol index
//! (`symbols`) and conservative call graph (`callgraph`) feed an ingress
//! taint pass (`taint` — which functions can see hostile socket/file
//! bytes, and do any of them panic?) and a lock-order deadlock lint
//! (`locks`). The taint pass also *derives* the untrusted-input surface
//! and reports `policy-drift` where the hand-written panic-safety scope
//! has fallen behind it.
//!
//! Violations are waived inline, and only with a reason:
//!
//! ```text
//! // dps: allow(unordered-collection, reason = "keyed lookup only; never iterated")
//! // dps: allow-file(slice-index, reason = "offsets bounds-checked by header parse")
//! ```
//!
//! See `policy` for the module → rule-family map and `rules::RULES` for
//! the full rule table. The `dps-analyzer` binary drives it all; CI runs
//! `./ci.sh analyze` (workspace must be clean) and `./ci.sh
//! analyze-fixtures` (the known-bad corpus must still fail).

pub mod callgraph;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod locks;
pub mod policy;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod waiver;

pub use engine::{analyze_source, analyze_sources, analyze_workspace, ingress_surface, Finding};
pub use policy::Mode;
pub use rules::{Family, Severity, RULES};
