//! The analysis engine: walks sources, runs rules, resolves waivers.
//!
//! Since PR 9 the engine is multi-file at its core: [`analyze_sources`]
//! lexes every file, runs the per-file lexical rules, then builds the
//! workspace symbol index and call graph and runs the inter-procedural
//! flow passes (ingress taint, lock order). Flow findings are attributed
//! back to their file and resolved against that file's waivers exactly
//! like lexical ones. [`analyze_source`] is the single-file special
//! case — with no ingress roots in sight the flow passes are silent, so
//! per-file behaviour is unchanged.

use crate::callgraph::Graph;
use crate::context;
use crate::lexer;
use crate::policy::{self, Mode};
use crate::rules::{self, Family, RawViolation, Severity};
use crate::symbols::{self, FileSymbols};
use crate::waiver::{parse_waivers, Waiver};
use crate::{locks, taint};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// One reported finding, after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Human message.
    pub message: String,
}

/// Per-file intermediate state between the lexical and flow passes.
struct Prep {
    rel: String,
    waivers: Vec<Waiver>,
    /// Lexical violations under the file's policy, plus flow violations
    /// attributed to this file.
    raw: Vec<RawViolation>,
    /// Scope-blind panic-safety sites, input to the taint pass.
    panic_sites: Vec<RawViolation>,
}

fn prep_file(rel: &str, src: &str, mode: Mode) -> (Prep, FileSymbols) {
    let file_policy = policy::for_path(rel, mode);
    let lexed = lexer::lex(src);
    let ctx = context::scan(&lexed);

    // Comments inside test-only regions carry no weight: rules are off
    // there, so waivers there could only ever be stale.
    let live_comments: Vec<_> = lexed
        .comments
        .iter()
        .filter(|c| !ctx.line_skipped(c.line))
        .cloned()
        .collect();
    let waivers = parse_waivers(&live_comments);

    let raw = rules::check(
        &lexed,
        &ctx,
        &file_policy.families,
        file_policy.print_allowed,
    );
    let panic_sites = if file_policy.families.contains(&Family::PanicSafety) {
        raw.iter()
            .filter(|v| rules::rule(v.rule).is_some_and(|r| r.family == Family::PanicSafety))
            .cloned()
            .collect()
    } else {
        rules::check(&lexed, &ctx, &[Family::PanicSafety], true)
    };
    let syms = symbols::extract(&lexed, &ctx);
    (
        Prep {
            rel: rel.to_owned(),
            waivers,
            raw,
            panic_sites,
        },
        syms,
    )
}

/// Analyses a set of files together: per-file lexical rules, then the
/// inter-procedural flow passes over the combined call graph, then
/// waiver resolution per file.
pub fn analyze_sources(files: &[(String, String)], mode: Mode) -> Vec<Finding> {
    let mut preps = Vec::with_capacity(files.len());
    let mut symfiles: Vec<(String, FileSymbols)> = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let (p, syms) = prep_file(rel, src, mode);
        symfiles.push((rel.clone(), syms));
        preps.push(p);
    }

    let graph = Graph::build(&symfiles);
    let panic_sites: Vec<Vec<RawViolation>> = preps.iter().map(|p| p.panic_sites.clone()).collect();
    let tainted = taint::run(&graph, &panic_sites);
    let lock_findings = locks::run(&graph, &tainted.roots);
    for (fi, v) in tainted.findings.into_iter().chain(lock_findings) {
        preps[fi].raw.push(v);
    }

    let mut findings = Vec::new();
    for p in &preps {
        resolve(p, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Waiver resolution and bookkeeping for one prepared file.
fn resolve(p: &Prep, findings: &mut Vec<Finding>) {
    let mut used = vec![false; p.waivers.len()];
    for v in &p.raw {
        let waived = p.waivers.iter().enumerate().any(|(i, w)| {
            if !applies(w, v.rule, v.line) {
                return false;
            }
            used[i] = true;
            true
        });
        if waived {
            continue;
        }
        let severity = rules::rule(v.rule).map_or(Severity::Deny, |r| r.severity);
        findings.push(Finding {
            path: p.rel.clone(),
            line: v.line,
            rule: v.rule,
            severity,
            message: v.message.clone(),
        });
    }

    // Waiver bookkeeping: missing reasons, unknown rules, stale waivers.
    for (i, w) in p.waivers.iter().enumerate() {
        if rules::rule(&w.rule).is_none() {
            findings.push(Finding {
                path: p.rel.clone(),
                line: w.line,
                rule: "unknown-rule",
                severity: Severity::Deny,
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
            continue;
        }
        if w.reason.is_none() {
            findings.push(Finding {
                path: p.rel.clone(),
                line: w.line,
                rule: "waiver-without-reason",
                severity: Severity::Deny,
                message: format!(
                    "waiver for `{}` is missing its reason = \"…\" string and suppresses nothing",
                    w.rule
                ),
            });
            continue;
        }
        if !used[i] {
            findings.push(Finding {
                path: p.rel.clone(),
                line: w.line,
                rule: "unused-waiver",
                severity: Severity::Warn,
                message: format!("waiver for `{}` matched no violation; delete it", w.rule),
            });
        }
    }
}

/// Analyses one file's source text under the given mode. Flow passes run
/// over the single-file graph — silent unless the file itself contains
/// ingress roots.
pub fn analyze_source(rel_path: &str, src: &str, mode: Mode) -> Vec<Finding> {
    analyze_sources(&[(rel_path.to_owned(), src.to_owned())], mode)
}

/// The ingress surface of a file set: workspace-relative paths holding
/// at least one taint-reached function. Used by tests and tooling to
/// compare the *derived* surface against the hand-written scope.
pub fn ingress_surface(files: &[(String, String)]) -> BTreeSet<String> {
    let symfiles: Vec<(String, FileSymbols)> = files
        .iter()
        .map(|(rel, src)| {
            let lexed = lexer::lex(src);
            let ctx = context::scan(&lexed);
            (rel.clone(), symbols::extract(&lexed, &ctx))
        })
        .collect();
    let graph = Graph::build(&symfiles);
    let panic_sites = vec![Vec::new(); symfiles.len()];
    let tainted = taint::run(&graph, &panic_sites);
    tainted
        .reached_files
        .into_iter()
        .map(|fi| symfiles[fi].0.clone())
        .collect()
}

/// A waiver only suppresses when it is fully formed (known rule + reason)
/// and its scope covers the violation.
fn applies(w: &Waiver, rule: &str, line: u32) -> bool {
    if w.reason.is_none() || rules::rule(&w.rule).is_none() || w.rule != rule {
        return false;
    }
    w.file_level || w.target_line == line || w.line == line
}

/// Recursively collects `.rs` files under `root`, excluding build
/// artefacts, vendored crates and the analyzer's own fixture corpus.
/// Paths come back sorted so reports (and JSON output) are stable.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if policy::excluded(&rel) {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with `/` separators.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for part in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&part.as_os_str().to_string_lossy());
    }
    s
}

/// Reads every source under `root` as `(relative path, text)` pairs.
pub fn read_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in collect_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        out.push((rel_path(root, &path), src));
    }
    Ok(out)
}

/// Analyses every source under `root` with the workspace policy,
/// including the inter-procedural flow passes over the whole tree.
pub fn analyze_workspace(root: &Path, mode: Mode) -> io::Result<Vec<Finding>> {
    Ok(analyze_sources(&read_sources(root)?, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(src: &str) -> Vec<Finding> {
        analyze_source("crates/store/src/x.rs", src, Mode::AllRules)
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "// dps: allow(unordered-collection, reason = \"keyed lookup only\")\n\
                   use std::collections::HashMap;\nfn f() {}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn waiver_without_reason_reports_both() {
        let src = "// dps: allow(unordered-collection)\n\
                   use std::collections::HashMap;\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unordered-collection"), "{rules:?}");
        assert!(rules.contains(&"waiver-without-reason"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_waiver_flagged() {
        let src = "// dps: allow(made-up, reason = \"x\")\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unknown-rule"]);
    }

    #[test]
    fn unused_waiver_flagged() {
        let src = "// dps: allow(wall-clock, reason = \"simulated clock only\")\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unused-waiver"]);
    }

    #[test]
    fn file_level_waiver_covers_every_line() {
        let src = "// dps: allow-file(unordered-collection, reason = \"keyed lookup only\")\n\
                   use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let src = "fn f(b: &[u8]) -> u8 {\n\
                   b[0] // dps: allow(slice-index, reason = \"caller checked len\")\n}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn waivers_in_test_code_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   // dps: allow(wall-clock, reason = \"would be unused\")\n\
                   fn f() {}\n}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn workspace_mode_scopes_families() {
        let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); x.unwrap(); }";
        // store/src: determinism applies, panic-safety does not (not format.rs).
        let got = analyze_source("crates/store/src/cache.rs", src, Mode::Workspace);
        let rules: Vec<_> = got.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unordered-collection"));
        assert!(!rules.contains(&"unwrap-expect"));
        // core/src: neither family.
        let got = analyze_source("crates/core/src/flux.rs", src, Mode::Workspace);
        assert!(got.is_empty(), "{got:?}");
    }
}
