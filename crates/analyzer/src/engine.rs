//! The analysis engine: walks sources, runs rules, resolves waivers.

use crate::context;
use crate::lexer;
use crate::policy::{self, Mode};
use crate::rules::{self, Severity};
use crate::waiver::{parse_waivers, Waiver};
use std::io;
use std::path::{Path, PathBuf};

/// One reported finding, after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Human message.
    pub message: String,
}

/// Analyses one file's source text under the given mode.
pub fn analyze_source(rel_path: &str, src: &str, mode: Mode) -> Vec<Finding> {
    let file_policy = policy::for_path(rel_path, mode);
    let lexed = lexer::lex(src);
    let ctx = context::scan(&lexed);

    // Comments inside test-only regions carry no weight: rules are off
    // there, so waivers there could only ever be stale.
    let live_comments: Vec<_> = lexed
        .comments
        .iter()
        .filter(|c| !ctx.line_skipped(c.line))
        .cloned()
        .collect();
    let waivers = parse_waivers(&live_comments);

    let raw = rules::check(
        &lexed,
        &ctx,
        &file_policy.families,
        file_policy.print_allowed,
    );

    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();
    for v in raw {
        let waived = waivers.iter().enumerate().any(|(i, w)| {
            if !applies(w, v.rule, v.line) {
                return false;
            }
            used[i] = true;
            true
        });
        if waived {
            continue;
        }
        let severity = rules::rule(v.rule).map_or(Severity::Deny, |r| r.severity);
        findings.push(Finding {
            path: rel_path.to_owned(),
            line: v.line,
            rule: v.rule,
            severity,
            message: v.message,
        });
    }

    // Waiver bookkeeping: missing reasons, unknown rules, stale waivers.
    for (i, w) in waivers.iter().enumerate() {
        if rules::rule(&w.rule).is_none() {
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: w.line,
                rule: "unknown-rule",
                severity: Severity::Deny,
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
            continue;
        }
        if w.reason.is_none() {
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: w.line,
                rule: "waiver-without-reason",
                severity: Severity::Deny,
                message: format!(
                    "waiver for `{}` is missing its reason = \"…\" string and suppresses nothing",
                    w.rule
                ),
            });
            continue;
        }
        if !used[i] {
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: w.line,
                rule: "unused-waiver",
                severity: Severity::Warn,
                message: format!("waiver for `{}` matched no violation; delete it", w.rule),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// A waiver only suppresses when it is fully formed (known rule + reason)
/// and its scope covers the violation.
fn applies(w: &Waiver, rule: &str, line: u32) -> bool {
    if w.reason.is_none() || rules::rule(&w.rule).is_none() || w.rule != rule {
        return false;
    }
    w.file_level || w.target_line == line || w.line == line
}

/// Recursively collects `.rs` files under `root`, excluding build
/// artefacts, vendored crates and the analyzer's own fixture corpus.
/// Paths come back sorted so reports (and JSON output) are stable.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if policy::excluded(&rel) {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with `/` separators.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for part in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&part.as_os_str().to_string_lossy());
    }
    s
}

/// Analyses every source under `root` with the workspace policy.
pub fn analyze_workspace(root: &Path, mode: Mode) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        findings.extend(analyze_source(&rel_path(root, &path), &src, mode));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(src: &str) -> Vec<Finding> {
        analyze_source("crates/store/src/x.rs", src, Mode::AllRules)
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "// dps: allow(unordered-collection, reason = \"keyed lookup only\")\n\
                   use std::collections::HashMap;\nfn f() {}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn waiver_without_reason_reports_both() {
        let src = "// dps: allow(unordered-collection)\n\
                   use std::collections::HashMap;\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unordered-collection"), "{rules:?}");
        assert!(rules.contains(&"waiver-without-reason"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_waiver_flagged() {
        let src = "// dps: allow(made-up, reason = \"x\")\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unknown-rule"]);
    }

    #[test]
    fn unused_waiver_flagged() {
        let src = "// dps: allow(wall-clock, reason = \"simulated clock only\")\nfn f() {}";
        let rules: Vec<_> = find(src).iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unused-waiver"]);
    }

    #[test]
    fn file_level_waiver_covers_every_line() {
        let src = "// dps: allow-file(unordered-collection, reason = \"keyed lookup only\")\n\
                   use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let src = "fn f(b: &[u8]) -> u8 {\n\
                   b[0] // dps: allow(slice-index, reason = \"caller checked len\")\n}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn waivers_in_test_code_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   // dps: allow(wall-clock, reason = \"would be unused\")\n\
                   fn f() {}\n}";
        let got = find(src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn workspace_mode_scopes_families() {
        let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); x.unwrap(); }";
        // store/src: determinism applies, panic-safety does not (not format.rs).
        let got = analyze_source("crates/store/src/cache.rs", src, Mode::Workspace);
        let rules: Vec<_> = got.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unordered-collection"));
        assert!(!rules.contains(&"unwrap-expect"));
        // core/src: neither family.
        let got = analyze_source("crates/core/src/flux.rs", src, Mode::Workspace);
        assert!(got.is_empty(), "{got:?}");
    }
}
