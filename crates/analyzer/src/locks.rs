//! Lock-order deadlock lint plus lock-held-across-ingress hazards.
//!
//! Lock identities are textual but qualified: a `self.x` receiver
//! becomes `Crate::Owner::x`, anything else is prefixed with its crate
//! (`dps_telemetry::REGISTRY`). Per function, a *nested pair* `(a, b)`
//! is recorded when `b` is acquired while `a`'s guard region is still
//! open; pairs also propagate transitively — holding `a` across a call
//! whose callee (directly or transitively) acquires `b` yields `(a, b)`
//! too. Unlike the taint pass, everything transitive here walks
//! [`Graph::edges_precise`]: over-approximated method edges would make
//! every `.insert(…)` alias every `insert` impl in the workspace, and a
//! spurious edge in a cycle detector manufactures deadlock candidates
//! instead of merely widening a report.
//!
//! Two rules come out of the pair lattice:
//!
//! * `lock-order` — some pair of code paths acquires the same two locks
//!   in opposite orders (lock-ordering deadlock candidate). One finding
//!   per unordered pair, at the later-appearing direction's first site,
//!   citing the opposite site.
//! * `lock-across-ingress` — a guard is held across a call that
//!   (transitively) performs ingress I/O, or across a direct ingress
//!   read: hostile-paced bytes then control how long the lock is held.
//!
//! Self-pairs (`a` nested under `a`) are skipped: the per-key sharded
//! locks in the workspace make them overwhelmingly false positives, and
//! std mutexes self-deadlock loudly under test anyway.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::Graph;
use crate::policy;
use crate::rules::RawViolation;
use crate::symbols::FnSym;

/// One recorded ordered acquisition: lock `first` held while `second`
/// is (possibly transitively) acquired at `(file, line)`.
#[derive(Debug)]
struct Pair {
    first: String,
    second: String,
    file: usize,
    line: u32,
}

/// Runs both lock rules. `roots` are the ingress roots from the taint
/// pass (global fn indices).
pub fn run(graph: &Graph, roots: &[usize]) -> Vec<(usize, RawViolation)> {
    let n = graph.fns.len();

    // does_io[gi]: the function is an ingress root or can reach one —
    // reverse BFS from the roots.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, outs) in graph.edges_precise.iter().enumerate() {
        for &m in outs {
            rev[m].push(gi);
        }
    }
    let mut does_io = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !does_io[r] {
            does_io[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(x) = queue.pop_front() {
        for &p in &rev[x] {
            if !does_io[p] {
                does_io[p] = true;
                queue.push_back(p);
            }
        }
    }

    // acquires[gi]: every lock identity the function may take, directly
    // or through calls — forward fixpoint over the call graph.
    let mut acquires: Vec<BTreeSet<String>> = (0..n)
        .map(|gi| {
            graph
                .sym(gi)
                .locks
                .iter()
                .map(|l| identity(graph, gi, &l.receiver))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for gi in 0..n {
            let mut add: Vec<String> = Vec::new();
            for &callee in &graph.edges_precise[gi] {
                for id in &acquires[callee] {
                    if !acquires[gi].contains(id) {
                        add.push(id.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                acquires[gi].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    let mut pairs: Vec<Pair> = Vec::new();
    let mut ingress_hazards: Vec<(usize, RawViolation)> = Vec::new();

    for gi in 0..n {
        let (fi, _) = graph.fns[gi];
        let rel = graph.path(gi);
        if policy::flow_exempt(rel) {
            continue;
        }
        let f = graph.sym(gi);
        for (li, outer) in f.locks.iter().enumerate() {
            let outer_id = identity(graph, gi, &outer.receiver);
            // Direct nesting: a later acquisition inside the region.
            for inner in f.locks.iter().skip(li + 1) {
                if inner.line < outer.line || inner.line > outer.end_line {
                    continue;
                }
                let inner_id = identity(graph, gi, &inner.receiver);
                if inner_id != outer_id {
                    pairs.push(Pair {
                        first: outer_id.clone(),
                        second: inner_id,
                        file: fi,
                        line: inner.line,
                    });
                }
            }
            // Calls made while the guard is held: transitive acquires
            // and transitive ingress I/O. Call-site edges are matched by
            // callee name since graph edges are per-function.
            let mut cited: BTreeSet<(String, String)> = BTreeSet::new();
            for call in &f.calls {
                if call.line < outer.line || call.line > outer.end_line {
                    continue;
                }
                let Some(cname) = call.path.last() else {
                    continue;
                };
                for &callee in &graph.edges_precise[gi] {
                    if graph.sym(callee).name != *cname {
                        continue;
                    }
                    for id in &acquires[callee] {
                        if *id != outer_id {
                            pairs.push(Pair {
                                first: outer_id.clone(),
                                second: id.clone(),
                                file: fi,
                                line: call.line,
                            });
                        }
                    }
                    if does_io[callee] && cited.insert((outer_id.clone(), cname.clone())) {
                        ingress_hazards.push((
                            fi,
                            RawViolation {
                                rule: "lock-across-ingress",
                                line: call.line,
                                message: format!(
                                    "guard on `{}` (acquired line {}) is held across the \
                                     call to `{}`, which performs ingress I/O",
                                    outer_id, outer.line, cname
                                ),
                            },
                        ));
                    }
                }
            }
            // A direct ingress read while the guard is held.
            for (api, line) in &f.io_reads {
                if *line < outer.line || *line > outer.end_line || *line == outer.line {
                    continue;
                }
                if policy::in_ingress_scope(rel) || f.ingress_marked {
                    ingress_hazards.push((
                        fi,
                        RawViolation {
                            rule: "lock-across-ingress",
                            line: *line,
                            message: format!(
                                "guard on `{}` (acquired line {}) is held across the \
                                 ingress read `{}`",
                                outer_id, outer.line, api
                            ),
                        },
                    ));
                }
            }
        }
    }

    // Order conflicts: both (a, b) and (b, a) observed somewhere.
    let mut by_dir: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for p in &pairs {
        let key = (p.first.clone(), p.second.clone());
        let site = (p.file, p.line);
        by_dir
            .entry(key)
            .and_modify(|s| {
                if site < *s {
                    *s = site;
                }
            })
            .or_insert(site);
    }
    let mut findings = Vec::new();
    for ((a, b), &fwd) in &by_dir {
        if a >= b {
            continue;
        }
        let Some(&bwd) = by_dir.get(&(b.clone(), a.clone())) else {
            continue;
        };
        // Report at the later-appearing direction's first site; cite the
        // earlier direction's first site.
        let (report, second, cite) = if fwd <= bwd {
            (bwd, a, fwd)
        } else {
            (fwd, b, bwd)
        };
        let other = if second == a { b } else { a };
        findings.push((
            report.0,
            RawViolation {
                rule: "lock-order",
                line: report.1,
                message: format!(
                    "inconsistent lock order: `{second}` is acquired while `{other}` is \
                     held here, but the opposite order is taken at {}:{} (deadlock candidate)",
                    graph.files[cite.0].0, cite.1
                ),
            },
        ));
    }
    findings.extend(ingress_hazards);
    findings
}

/// Qualifies a receiver into a workspace-unique-ish lock identity.
fn identity(graph: &Graph, gi: usize, receiver: &str) -> String {
    let rel = graph.path(gi);
    let crate_name = crate::callgraph::module_path(rel)
        .first()
        .cloned()
        .unwrap_or_else(|| "workspace".to_owned());
    let f: &FnSym = graph.sym(gi);
    if let Some(rest) = receiver.strip_prefix("self.") {
        match &f.owner {
            Some(o) => format!("{crate_name}::{o}::{rest}"),
            None => format!("{crate_name}::{rest}"),
        }
    } else {
        format!("{crate_name}::{receiver}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;
    use crate::symbols::{self, FileSymbols};
    use crate::taint;

    fn fired(files: &[(&str, &str)]) -> Vec<(String, &'static str, u32, String)> {
        let syms: Vec<(String, FileSymbols)> = files
            .iter()
            .map(|(rel, src)| {
                let l = lex(src);
                let ctx = context::scan(&l);
                ((*rel).to_owned(), symbols::extract(&l, &ctx))
            })
            .collect();
        let g = Graph::build(&syms);
        let roots = taint::roots(&g);
        run(&g, &roots)
            .into_iter()
            .map(|(fi, v)| (syms[fi].0.clone(), v.rule, v.line, v.message))
            .collect()
    }

    #[test]
    fn reversed_direct_nesting_is_flagged_once() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) {\nlet a = self.a.lock();\nlet b = self.b.lock();\nuse2(&a, &b);\n}\n\
                   fn ba(&self) {\nlet b = self.b.lock();\nlet a = self.a.lock();\nuse2(&a, &b);\n}\n}";
        let got = fired(&[("x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let (_, rule, line, msg) = &got[0];
        assert_eq!(*rule, "lock-order");
        // The a-then-b order appears first (line 5); the reversal is the
        // b-then-a nesting at line 10.
        assert_eq!(*line, 10);
        assert!(msg.contains("x.rs:5"), "{msg}");
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "struct S;\nimpl S {\n\
                   fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); use2(&a, &b); }\n\
                   fn g(&self) { let a = self.a.lock(); let b = self.b.lock(); use2(&a, &b); }\n}";
        assert!(fired(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn same_receiver_nesting_is_skipped() {
        let src = "struct S;\nimpl S {\n\
                   fn f(&self, k: u8, j: u8) { let a = self.shard(k).lock(); \
                   let b = self.shard(j).lock(); use2(&a, &b); }\n}";
        assert!(fired(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn transitive_reversal_across_calls() {
        let src = "struct S;\nimpl S {\n\
                   fn outer(&self) {\nlet a = self.a.lock();\nself.inner_b();\n}\n\
                   fn inner_b(&self) {\nlet b = self.b.lock();\nconsume(&b);\n}\n\
                   fn other(&self) {\nlet b = self.b.lock();\nlet a = self.a.lock();\nconsume(&a);\n}\n}";
        let got = fired(&[("x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].1, "lock-order");
    }

    #[test]
    fn owner_qualification_separates_same_field_names() {
        let files = [
            (
                "crates/a/src/x.rs",
                "struct A;\nimpl A { fn f(&self) { let a = self.inner.lock(); \
                 let b = self.outer.lock(); use2(&a, &b); } }",
            ),
            (
                "crates/b/src/y.rs",
                "struct B;\nimpl B { fn f(&self) { let b = self.outer.lock(); \
                 let a = self.inner.lock(); use2(&a, &b); } }",
            ),
        ];
        // A.inner/A.outer vs B.outer/B.inner: different identities, no
        // conflict.
        assert!(fired(&files).is_empty());
    }

    #[test]
    fn guard_held_across_ingress_call() {
        let src = "// dps: ingress\n\
                   fn pull(s: &UdpSocket, b: &mut [u8]) { let _ = s.recv_from(b); }\n\
                   struct S;\nimpl S {\n\
                   fn hot(&self, s: &UdpSocket, b: &mut [u8]) {\n\
                   let g = self.m.lock();\npull(s, b);\nconsume(&g);\n}\n}";
        let got = fired(&[("x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let (_, rule, line, msg) = &got[0];
        assert_eq!(*rule, "lock-across-ingress");
        assert_eq!(*line, 7);
        assert!(msg.contains("`pull`"), "{msg}");
    }

    #[test]
    fn guard_dropped_before_ingress_call_is_clean() {
        let src = "// dps: ingress\n\
                   fn pull(s: &UdpSocket, b: &mut [u8]) { let _ = s.recv_from(b); }\n\
                   struct S;\nimpl S {\n\
                   fn hot(&self, s: &UdpSocket, b: &mut [u8]) {\n\
                   let g = self.m.lock();\nconsume(&g);\ndrop(g);\npull(s, b);\n}\n}";
        let got = fired(&[("x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn direct_ingress_read_under_guard() {
        let src = "// dps: ingress\n\
                   fn pump(&self, s: &TcpStream, b: &mut [u8]) {\n\
                   let g = self.state.lock();\nlet _ = s.read_exact(b);\nconsume(&g);\n}";
        let got = fired(&[("x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].1, "lock-across-ingress");
        assert_eq!(got[0].2, 4);
    }

    #[test]
    fn operator_facing_paths_are_exempt() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); use2(&a, &b); }\n\
                   fn ba(&self) { let b = self.b.lock(); let a = self.a.lock(); use2(&a, &b); }\n}";
        assert!(fired(&[("crates/x/src/bin/tool.rs", src)]).is_empty());
    }
}
