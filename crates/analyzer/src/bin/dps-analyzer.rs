//! CLI driver for the workspace static analyzer.
//!
//! ```text
//! dps-analyzer [--root DIR] [--json] [--sarif FILE] [--deny] [--all-rules] [paths…]
//! dps-analyzer --check-fixtures DIR
//! dps-analyzer --list-rules
//! ```
//!
//! Exit codes: 0 clean (warn-only findings without `--deny` still exit
//! 0), 1 violations, 2 usage or I/O error.

use dps_analyzer::engine::{analyze_source, analyze_sources, collect_sources, rel_path};
use dps_analyzer::policy::Mode;
use dps_analyzer::{report, rules, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    sarif: Option<PathBuf>,
    deny: bool,
    all_rules: bool,
    check_fixtures: Option<PathBuf>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dps-analyzer [--root DIR] [--json] [--sarif FILE] [--deny] [--all-rules] [paths…]\n\
         \x20      dps-analyzer --check-fixtures DIR\n\
         \x20      dps-analyzer --list-rules"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        sarif: None,
        deny: false,
        all_rules: false,
        check_fixtures: None,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or_else(usage)?),
            "--json" => args.json = true,
            "--sarif" => args.sarif = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--deny" => args.deny = true,
            "--all-rules" => args.all_rules = true,
            "--check-fixtures" => {
                args.check_fixtures = Some(PathBuf::from(it.next().ok_or_else(usage)?))
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(usage()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    if args.list_rules {
        for r in rules::RULES {
            println!(
                "{:<22} {:?}/{:?}  {}",
                r.id, r.family, r.severity, r.describes
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(dir) = &args.check_fixtures {
        return check_fixtures(dir);
    }

    let mode = if args.all_rules {
        Mode::AllRules
    } else {
        Mode::Workspace
    };
    let files = if args.paths.is_empty() {
        match collect_sources(&args.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dps-analyzer: {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        args.paths.clone()
    };

    // Flow passes (taint, lock order) need the whole file set at once:
    // read everything, then analyze together.
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(s) => sources.push((rel_path(&args.root, path), s)),
            Err(e) => {
                eprintln!("dps-analyzer: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
    }
    let findings = analyze_sources(&sources, mode);

    if let Some(sarif_path) = &args.sarif {
        if let Err(e) = std::fs::write(sarif_path, report::sarif(&findings)) {
            eprintln!("dps-analyzer: {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", report::json(&findings));
    } else {
        print!("{}", report::human(&findings));
    }
    let fatal = findings
        .iter()
        .any(|f| f.severity == Severity::Deny || args.deny);
    if fatal {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Fixture mode: every `bad/*.rs` must fire each rule named by its
/// `// dps-expect: <rule>` annotations (and at least one of them); every
/// `good/*.rs` must be perfectly clean. This is the CI negative check
/// that proves the rules still bite.
fn check_fixtures(dir: &Path) -> ExitCode {
    let mut failures = 0usize;
    let mut checked = 0usize;

    for (sub, want_bad) in [("bad", true), ("good", false)] {
        let sub_dir = dir.join(sub);
        let mut entries: Vec<PathBuf> = match std::fs::read_dir(&sub_dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect(),
            Err(e) => {
                eprintln!("dps-analyzer: {}: {e}", sub_dir.display());
                return ExitCode::from(2);
            }
        };
        entries.sort();
        for path in entries {
            checked += 1;
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("dps-analyzer: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let findings = analyze_source(&path.display().to_string(), &src, Mode::AllRules);
            let fired: Vec<&str> = findings.iter().map(|f| f.rule).collect();
            let expected = expectations(&src);
            let name = path.display();
            if want_bad {
                if expected.is_empty() {
                    println!("FAIL {name}: bad fixture has no // dps-expect annotations");
                    failures += 1;
                    continue;
                }
                let missing: Vec<_> = expected
                    .iter()
                    .filter(|r| !fired.contains(&r.as_str()))
                    .collect();
                if findings.is_empty() || !missing.is_empty() {
                    println!("FAIL {name}: expected {expected:?}, fired {fired:?}");
                    failures += 1;
                } else {
                    println!("ok   {name}: fired {fired:?}");
                }
            } else if findings.is_empty() {
                println!("ok   {name}: clean");
            } else {
                println!("FAIL {name}: expected clean, fired {fired:?}");
                for f in &findings {
                    println!("     {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
                }
                failures += 1;
            }
        }
    }

    println!("dps-analyzer fixtures: {checked} checked, {failures} failing");
    if failures > 0 || checked == 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads `// dps-expect: <rule>` annotations from fixture source.
fn expectations(src: &str) -> Vec<String> {
    src.lines()
        .filter_map(|l| l.trim().strip_prefix("// dps-expect:"))
        .map(|r| r.trim().to_owned())
        .collect()
}
