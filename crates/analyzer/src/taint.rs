//! Ingress taint/reachability: which functions can see hostile bytes,
//! and do any of them panic?
//!
//! Roots are *derived*, not enumerated: any function performing a
//! read-style call (`recv_from`, `accept`, `read_to_string`, …) inside
//! a file the policy lists as an ingress surface
//! ([`crate::policy::INGRESS_SCOPE`]), plus any function annotated with
//! an own-line `// dps: ingress` marker (fuzz targets whose entry
//! points are reached through function values the call graph cannot
//! see, and fixtures). Taint propagates forward along the
//! conservatively over-approximated call graph; two rules report on the
//! reached set:
//!
//! * `taint-panic` — a lexical panic-safety violation (unwrap/expect,
//!   panic-family macro, unchecked indexing) inside a reached function,
//!   in a file the hand-written panic-safety scope does **not** cover
//!   (covered files are already policed by the lexical family).
//! * `policy-drift` — a file that *contains an ingress root* but is
//!   absent from the panic-safety scope: the strongest possible
//!   evidence (no call-graph approximation involved) that the declared
//!   scope has drifted from the real untrusted-input surface.
//!
//! Operator-facing code (binaries, benches, examples, integration
//! tests) is exempt: panics there abort a tool run, not a server.

use std::collections::BTreeSet;

use crate::callgraph::Graph;
use crate::policy;
use crate::rules::RawViolation;

/// Result of the taint pass.
pub struct TaintOutcome {
    /// `(file index, violation)` pairs, unsorted.
    pub findings: Vec<(usize, RawViolation)>,
    /// Global fn indices of the ingress roots.
    pub roots: Vec<usize>,
    /// File indices containing at least one taint-reached function.
    pub reached_files: BTreeSet<usize>,
}

/// How many call-chain hops a finding message spells out.
const TRACE_CAP: usize = 6;

/// Collects the derived ingress roots of a graph.
pub fn roots(graph: &Graph) -> Vec<usize> {
    let mut out = Vec::new();
    for gi in 0..graph.fns.len() {
        let rel = graph.path(gi);
        if policy::flow_exempt(rel) {
            continue;
        }
        let f = graph.sym(gi);
        if f.ingress_marked || (!f.io_reads.is_empty() && policy::in_ingress_scope(rel)) {
            out.push(gi);
        }
    }
    out
}

/// Runs the taint pass. `panic_sites[i]` holds the lexical panic-safety
/// violations of file `i` (computed scope-blind — that is the point).
pub fn run(graph: &Graph, panic_sites: &[Vec<RawViolation>]) -> TaintOutcome {
    let roots = roots(graph);
    let pred = graph.reach(&roots);

    let mut reached_files = BTreeSet::new();
    for &gi in pred.keys() {
        reached_files.insert(graph.fns[gi].0);
    }

    let mut findings = Vec::new();

    // taint-panic: reached function + lexical panic site, outside the
    // scope the lexical family already polices.
    for (fi, (rel, syms)) in graph.files.iter().enumerate() {
        if policy::flow_exempt(rel) || policy::in_panic_safety_scope(rel) {
            continue;
        }
        for site in &panic_sites[fi] {
            let Some(si) = syms.fn_at_line(site.line) else {
                continue;
            };
            let Some(gi) = graph.id((fi, si)) else {
                continue;
            };
            if !pred.contains_key(&gi) {
                continue;
            }
            findings.push((
                fi,
                RawViolation {
                    rule: "taint-panic",
                    line: site.line,
                    message: format!("{} — {}", site.message, trace(graph, &pred, gi)),
                },
            ));
        }
    }

    // policy-drift: a root-bearing file the panic-safety scope missed.
    let mut drifted = BTreeSet::new();
    for &gi in &roots {
        let (fi, _) = graph.fns[gi];
        let rel = graph.path(gi);
        if policy::in_panic_safety_scope(rel) || !drifted.insert(fi) {
            continue;
        }
        let f = graph.sym(gi);
        findings.push((
            fi,
            RawViolation {
                rule: "policy-drift",
                line: f.line,
                message: format!(
                    "`{}` is an ingress root (reads untrusted bytes) but `{}` is \
                     not in the panic-safety scope; add it or waive with a reason",
                    f.name, rel
                ),
            },
        ));
    }

    TaintOutcome {
        findings,
        roots,
        reached_files,
    }
}

/// Renders the call chain from the root that first reached `gi`.
fn trace(graph: &Graph, pred: &std::collections::BTreeMap<usize, usize>, gi: usize) -> String {
    let mut chain = vec![gi];
    let mut cur = gi;
    while let Some(&p) = pred.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let root = chain.first().copied().unwrap_or(gi);
    let shown: Vec<String> = if chain.len() > TRACE_CAP {
        let mut v: Vec<String> = chain[..2].iter().map(|&c| name(graph, c)).collect();
        v.push("…".to_owned());
        v.extend(chain[chain.len() - 2..].iter().map(|&c| name(graph, c)));
        v
    } else {
        chain.iter().map(|&c| name(graph, c)).collect()
    };
    format!(
        "reachable from ingress root `{}` ({}) via {}",
        name(graph, root),
        graph.path(root),
        shown.join(" → ")
    )
}

fn name(graph: &Graph, gi: usize) -> String {
    let f = graph.sym(gi);
    match &f.owner {
        Some(o) => format!("{}::{}", o, f.name),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;
    use crate::rules::{self, Family};
    use crate::symbols::{self, FileSymbols};

    fn prep(files: &[(&str, &str)]) -> (Vec<(String, FileSymbols)>, Vec<Vec<RawViolation>>) {
        let mut syms = Vec::new();
        let mut sites = Vec::new();
        for (rel, src) in files {
            let l = lex(src);
            let ctx = context::scan(&l);
            sites.push(rules::check(&l, &ctx, &[Family::PanicSafety], true));
            syms.push(((*rel).to_owned(), symbols::extract(&l, &ctx)));
        }
        (syms, sites)
    }

    fn rules_fired(files: &[(&str, &str)]) -> Vec<(String, &'static str, u32)> {
        let (syms, sites) = prep(files);
        let g = Graph::build(&syms);
        let out = run(&g, &sites);
        out.findings
            .iter()
            .map(|(fi, v)| (syms[*fi].0.clone(), v.rule, v.line))
            .collect()
    }

    #[test]
    fn marked_root_taints_transitively() {
        let fired = rules_fired(&[(
            "x.rs",
            "// dps: ingress\nfn root(b: &[u8]) { mid(b); }\n\
             fn mid(b: &[u8]) { leaf(b); }\n\
             fn leaf(b: &[u8]) -> u8 { b[0] }\n\
             fn island(b: &[u8]) -> u8 { b[1] }",
        )]);
        // leaf's indexing is reached; island's is not. Plus drift for the
        // root-bearing unscoped file.
        assert_eq!(
            fired,
            [
                ("x.rs".to_owned(), "taint-panic", 4),
                ("x.rs".to_owned(), "policy-drift", 2)
            ]
        );
    }

    #[test]
    fn ingress_scope_reads_make_roots_without_markers() {
        let fired = rules_fired(&[
            (
                "crates/serve/src/sockets.rs",
                "fn pump(s: &UdpSocket, b: &mut [u8]) { let _ = s.recv_from(b); decode(b); }",
            ),
            (
                "crates/serve/src/other.rs",
                "pub fn decode(b: &[u8]) -> u8 { b.first().copied().unwrap() }",
            ),
        ]);
        let rules: Vec<_> = fired.iter().map(|(p, r, _)| (p.as_str(), *r)).collect();
        assert!(rules.contains(&("crates/serve/src/other.rs", "taint-panic")));
    }

    #[test]
    fn reads_outside_ingress_scope_are_not_roots() {
        let fired = rules_fired(&[(
            "crates/core/src/growth.rs",
            "fn local(p: &Path) { let s = read_to_string(p); s.bytes().next().unwrap(); }",
        )]);
        assert!(fired.is_empty(), "{fired:?}");
    }

    #[test]
    fn scoped_files_are_left_to_the_lexical_family() {
        let fired = rules_fired(&[(
            "crates/dns/src/wire.rs",
            "// dps: ingress\nfn root(b: &[u8]) -> u8 { b[0] }",
        )]);
        assert!(fired.is_empty(), "{fired:?}");
    }

    #[test]
    fn operator_facing_paths_are_exempt() {
        let fired = rules_fired(&[(
            "crates/ecosystem/src/bin/dpscope.rs",
            "// dps: ingress\nfn root(b: &[u8]) -> u8 { b[0] }",
        )]);
        assert!(fired.is_empty(), "{fired:?}");
    }

    #[test]
    fn trace_names_the_chain() {
        let (syms, sites) = prep(&[(
            "x.rs",
            "// dps: ingress\nfn root(b: &[u8]) { mid(b); }\n\
             fn mid(b: &[u8]) { leaf(b); }\n\
             fn leaf(b: &[u8]) -> u8 { b[0] }",
        )]);
        let g = Graph::build(&syms);
        let out = run(&g, &sites);
        let msg = &out.findings[0].1.message;
        assert!(msg.contains("root` (x.rs) via root → mid → leaf"), "{msg}");
    }

    #[test]
    fn reached_files_cover_the_surface() {
        let (syms, sites) = prep(&[
            (
                "a.rs",
                "// dps: ingress\nfn root(b: &[u8]) { helper::h(b); }",
            ),
            ("b.rs", "mod helper { pub fn h(b: &[u8]) {} }"),
            ("c.rs", "fn unrelated() {}"),
        ]);
        let g = Graph::build(&syms);
        let out = run(&g, &sites);
        assert_eq!(out.reached_files.into_iter().collect::<Vec<_>>(), [0, 1]);
    }
}
