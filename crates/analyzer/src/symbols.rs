//! Per-file symbol extraction: the function items, call sites, lock
//! acquisitions and ingress I/O reads the inter-procedural passes work
//! on.
//!
//! This stays deliberately AST-lite, like [`crate::context`]: a single
//! forward walk over the token stream tracking brace depth, an
//! impl/trait owner stack, and a pending-`fn` latch. It is a lexical
//! over-approximation — good enough to build a conservative call graph,
//! never precise enough to prove absence. Test-only code (per
//! [`crate::context::Context`]) contributes no symbols and no call
//! sites.

use crate::context::Context;
use crate::lexer::{Comment, Lexed, TokKind, Token};

/// How a lock guard was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` — `Mutex` (std or parking_lot, or a wrapper method).
    Mutex,
    /// `.read()` with no arguments — `RwLock` shared guard.
    Read,
    /// `.write()` with no arguments — `RwLock` exclusive guard.
    Write,
}

impl LockKind {
    /// The method name this kind was recognised from.
    pub fn method(self) -> &'static str {
        match self {
            LockKind::Mutex => "lock",
            LockKind::Read => "read",
            LockKind::Write => "write",
        }
    }
}

/// One lock acquisition and the region its guard is (approximately)
/// held over.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver text, e.g. `self.rrl` or `self.shard()` — the lock's
    /// identity for order comparison (the lock pass qualifies `self.`
    /// receivers by the owning type).
    pub receiver: String,
    /// Mutex vs RwLock read/write.
    pub kind: LockKind,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Last line the guard is considered held on. A `let`-bound guard
    /// runs to the end of its enclosing block (or an explicit
    /// `drop(guard)`); a temporary guard runs to the end of its
    /// statement.
    pub end_line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments as written: `["zonefile", "parse_zone"]`,
    /// `["Message", "parse"]`, or just `["handle"]`.
    pub path: Vec<String>,
    /// True for `.name(…)` method-call syntax (resolved by name across
    /// every impl in the workspace — the dynamic-dispatch
    /// over-approximation).
    pub method: bool,
    /// 1-based line of the call.
    pub line: u32,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Inline (non-test) `mod` path inside the file, outermost first.
    pub mods: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Calls made from the body.
    pub calls: Vec<Call>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockSite>,
    /// Lines performing ingress-style I/O reads (socket/file), with the
    /// API name that matched.
    pub io_reads: Vec<(String, u32)>,
    /// True if a `// dps: ingress` marker comment targets this fn.
    pub ingress_marked: bool,
}

/// All symbols of one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Function items in source order (test-only fns excluded).
    pub fns: Vec<FnSym>,
}

impl FileSymbols {
    /// The function whose body span contains `line`, innermost first.
    pub fn fn_at_line(&self, line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.line <= line && line <= f.end_line {
                let tighter = best.map_or(true, |b| {
                    let prev = &self.fns[b];
                    f.end_line - f.line <= prev.end_line - prev.line
                });
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Read-style APIs that mark a function as touching ingress bytes when
/// called with arguments (`.read()` with none is an `RwLock` guard, not
/// I/O). `accept` yields a hostile-peer stream, so it counts too.
const INGRESS_READ_APIS: &[&str] = &[
    "recv_from",
    "recv",
    "accept",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_dir",
    "read_line",
];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "unsafe", "where",
    "box", "yield", "let", "else",
];

/// Item positions where an `impl`/`trait`/`mod` keyword can start an
/// item (vs. `-> impl Trait` in a return type).
fn item_position(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(t) if t.kind == TokKind::Punct => matches!(t.text.as_str(), "{" | "}" | ";" | "]"),
        Some(t) => t.is_ident("unsafe") || t.is_ident("pub"),
    }
}

#[derive(Debug)]
enum ScopeKind {
    /// An `impl Type` / `trait Type` body; the owner name.
    Owner(String),
    /// A function body: index into `fns`, or `None` for a test fn whose
    /// symbol is discarded.
    Fn(Option<usize>),
    /// An inline `mod name { … }`.
    Mod,
    /// Any other brace pair.
    Other,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth *before* this scope's `{` was entered.
    open_depth: i32,
}

/// A lock guard whose held region has not closed yet.
struct OpenGuard {
    fn_idx: usize,
    lock_idx: usize,
    /// Depth just after the acquisition (a bound guard dies when depth
    /// drops below this; a temporary dies at the next `;` at exactly
    /// this depth).
    depth: i32,
    /// `Some(name)` when `let name = …` bound the guard.
    bound: Option<String>,
}

/// Extracts the symbols of one lexed file.
pub fn extract(lexed: &Lexed, ctx: &Context) -> FileSymbols {
    Extractor {
        toks: &lexed.tokens,
        ctx,
        fns: Vec::new(),
        scopes: Vec::new(),
        mods: Vec::new(),
        depth: 0,
        pending_fn: None,
        pending_owner: None,
        guards: Vec::new(),
    }
    .run(&lexed.comments)
}

struct Extractor<'a> {
    toks: &'a [Token],
    ctx: &'a Context,
    fns: Vec<FnSym>,
    scopes: Vec<Scope>,
    mods: Vec<String>,
    depth: i32,
    /// Armed by `fn name` while scanning the header; attached at the
    /// next `{`, cancelled by a `;` (trait method declaration).
    pending_fn: Option<(String, u32)>,
    /// Armed by an `impl`/`trait` header; attached at the next `{`.
    pending_owner: Option<String>,
    guards: Vec<OpenGuard>,
}

impl<'a> Extractor<'a> {
    fn live(&self, i: usize) -> Option<&'a Token> {
        let t = self.toks.get(i)?;
        if *self.ctx.skipped.get(i)? {
            None
        } else {
            Some(t)
        }
    }

    /// Nearest enclosing owner name, if inside an impl/trait body.
    fn current_owner(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Owner(name) => Some(name.clone()),
            _ => None,
        })
    }

    /// Innermost live function body, if any.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(idx) => idx,
            _ => None,
        })
    }

    /// Skips a balanced `<…>` generics group starting at `i` (which must
    /// be `<`); returns the index just past the closing `>`. `->` arrows
    /// inside bounds do not count as closers.
    fn skip_generics(&self, mut i: usize) -> usize {
        let mut depth = 0i32;
        while let Some(t) = self.toks.get(i) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                let arrow = i > 0 && self.toks.get(i - 1).is_some_and(|p| p.is_punct("-"));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            } else if t.is_punct("{") || t.is_punct(";") {
                return i; // malformed header; bail before the body
            }
            i += 1;
        }
        i
    }

    /// Parses an `impl`/`trait` header starting just past the keyword;
    /// returns the self-type name (last path segment, `for` target
    /// preferred).
    fn parse_owner(&self, mut i: usize) -> Option<String> {
        let mut name: Option<String> = None;
        while let Some(t) = self.toks.get(i) {
            if t.is_punct("<") {
                i = self.skip_generics(i);
                continue;
            }
            if t.is_punct("{") || t.is_ident("where") || t.is_punct(";") {
                break;
            }
            if t.is_ident("for") {
                name = None; // the real self type follows
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
            }
            i += 1;
        }
        name
    }

    /// Walks backwards from the `.` before a lock method to render the
    /// receiver chain, e.g. `self.rrl` or `shard()`. Call arguments are
    /// collapsed to `()` so per-key shards share one identity.
    fn receiver_chain(&self, dot: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut i = dot; // index of the `.` token
        while let Some(prev) = i.checked_sub(1) {
            let t = &self.toks[prev];
            if t.is_punct(")") {
                // Collapse the balanced (…) group.
                let mut depth = 0i32;
                let mut j = prev;
                loop {
                    let tok = &self.toks[j];
                    if tok.is_punct(")") {
                        depth += 1;
                    } else if tok.is_punct("(") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(next) = j.checked_sub(1) else { break };
                    j = next;
                }
                parts.push("()".to_owned());
                i = j;
                continue;
            }
            if t.kind == TokKind::Ident {
                parts.push(t.text.clone());
                // Keep walking over a preceding `.` or `::`.
                let Some(pp) = prev.checked_sub(1) else {
                    break;
                };
                let link = &self.toks[pp];
                if link.is_punct(".") || link.is_punct("::") {
                    parts.push(link.text.clone());
                    i = pp;
                    continue;
                }
                break;
            }
            break;
        }
        parts.reverse();
        let mut out = String::new();
        for p in &parts {
            if p == "." || p == "::" {
                out.push('.');
            } else if p == "()" {
                out.push_str("()");
            } else {
                if !out.is_empty() && !out.ends_with('.') {
                    break; // two idents without a link: start over
                }
                out.push_str(p);
            }
        }
        if out.is_empty() {
            "<expr>".to_owned()
        } else {
            out
        }
    }

    /// True if the statement containing token `i` started with `let`;
    /// returns the bound name. Scans back to the previous `;`/`{`/`}`.
    fn let_binding(&self, i: usize) -> Option<String> {
        let mut j = i;
        while let Some(prev) = j.checked_sub(1) {
            let t = &self.toks[prev];
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                return None;
            }
            if t.is_ident("let") {
                // `let [mut] name`
                let mut k = prev + 1;
                if self.toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                return self
                    .toks
                    .get(k)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            j = prev;
        }
        None
    }

    /// Closes every open guard whose region ends at this token.
    fn close_guards(&mut self, line: u32, at_semi: bool) {
        let depth = self.depth;
        let mut keep = Vec::new();
        for g in self.guards.drain(..) {
            let dies = if g.bound.is_some() {
                depth < g.depth
            } else {
                (at_semi && depth == g.depth) || depth < g.depth
            };
            if dies {
                if let Some(f) = self.fns.get_mut(g.fn_idx) {
                    if let Some(l) = f.locks.get_mut(g.lock_idx) {
                        l.end_line = line;
                    }
                }
            } else {
                keep.push(g);
            }
        }
        self.guards = keep;
    }

    /// Handles an explicit `drop(guard)` call, ending that guard's
    /// region early.
    fn handle_drop(&mut self, i: usize, line: u32) {
        let name = match (self.live(i + 1), self.live(i + 2), self.live(i + 3)) {
            (Some(open), Some(arg), Some(close))
                if open.is_punct("(") && arg.kind == TokKind::Ident && close.is_punct(")") =>
            {
                arg.text.clone()
            }
            _ => return,
        };
        let mut keep = Vec::new();
        for g in self.guards.drain(..) {
            if g.bound.as_deref() == Some(name.as_str()) {
                if let Some(f) = self.fns.get_mut(g.fn_idx) {
                    if let Some(l) = f.locks.get_mut(g.lock_idx) {
                        l.end_line = line;
                    }
                }
            } else {
                keep.push(g);
            }
        }
        self.guards = keep;
    }

    fn run(mut self, comments: &[Comment]) -> FileSymbols {
        let mut i = 0usize;
        while i < self.toks.len() {
            let t = &self.toks[i];
            let line = t.line;
            let live = !self.ctx.skipped.get(i).copied().unwrap_or(false);

            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        let open_depth = self.depth;
                        self.depth += 1;
                        let kind = if let Some((name, fn_line)) = self.pending_fn.take() {
                            if live {
                                self.fns.push(FnSym {
                                    name,
                                    owner: self.current_owner(),
                                    mods: self.mods.clone(),
                                    line: fn_line,
                                    end_line: fn_line,
                                    calls: Vec::new(),
                                    locks: Vec::new(),
                                    io_reads: Vec::new(),
                                    ingress_marked: false,
                                });
                                ScopeKind::Fn(Some(self.fns.len() - 1))
                            } else {
                                ScopeKind::Fn(None) // test fn: walk, don't record
                            }
                        } else if let Some(name) = self.pending_owner.take() {
                            ScopeKind::Owner(name)
                        } else {
                            ScopeKind::Other
                        };
                        self.scopes.push(Scope { kind, open_depth });
                    }
                    "}" => {
                        self.depth -= 1;
                        self.close_guards(line, false);
                        if self
                            .scopes
                            .last()
                            .is_some_and(|s| s.open_depth == self.depth)
                        {
                            if let Some(s) = self.scopes.pop() {
                                match s.kind {
                                    ScopeKind::Fn(Some(idx)) => {
                                        if let Some(f) = self.fns.get_mut(idx) {
                                            f.end_line = line;
                                        }
                                    }
                                    ScopeKind::Mod => {
                                        self.mods.pop();
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    ";" => {
                        self.pending_fn = None; // trait method declaration
                        self.close_guards(line, true);
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }

            if t.kind != TokKind::Ident || !live {
                i += 1;
                continue;
            }

            let prev_live = i.checked_sub(1).and_then(|p| self.live(p));
            match t.text.as_str() {
                "fn" => {
                    if let Some(name) = self.live(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        self.pending_fn = Some((name.text.clone(), line));
                        i += 2;
                        continue;
                    }
                }
                "impl" if item_position(prev_live) => {
                    self.pending_owner = self.parse_owner(i + 1);
                }
                "trait" if item_position(prev_live) => {
                    self.pending_owner = self
                        .live(i + 1)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                }
                "mod" if item_position(prev_live) => {
                    if let Some(name) = self.live(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        // Only inline bodies open a scope; `mod x;` is
                        // cancelled by the `;` arm via pending_owner=None.
                        if self.live(i + 2).is_some_and(|b| b.is_punct("{")) {
                            self.mods.push(name.text.clone());
                            self.scopes.push(Scope {
                                kind: ScopeKind::Mod,
                                open_depth: self.depth,
                            });
                            self.depth += 1;
                            i += 3;
                            continue;
                        }
                    }
                }
                "drop" if self.current_fn().is_some() => {
                    self.handle_drop(i, line);
                }
                _ => {}
            }

            // Call / lock / io-read detection, inside live fn bodies only.
            if let Some(fn_idx) = self.current_fn() {
                let called = self.live(i + 1).is_some_and(|n| n.is_punct("("));
                if called && !CALL_KEYWORDS.contains(&t.text.as_str()) {
                    let after_dot = prev_live.is_some_and(|p| p.is_punct("."));
                    let zero_arg = self.live(i + 2).is_some_and(|n| n.is_punct(")"));
                    let lock_kind = match t.text.as_str() {
                        "lock" if after_dot && zero_arg => Some(LockKind::Mutex),
                        "read" if after_dot && zero_arg => Some(LockKind::Read),
                        "write" if after_dot && zero_arg => Some(LockKind::Write),
                        _ => None,
                    };
                    if let Some(kind) = lock_kind {
                        let receiver = self.receiver_chain(i - 1);
                        let bound = self.let_binding(i);
                        self.fns[fn_idx].locks.push(LockSite {
                            receiver,
                            kind,
                            line,
                            end_line: line,
                        });
                        self.guards.push(OpenGuard {
                            fn_idx,
                            lock_idx: self.fns[fn_idx].locks.len() - 1,
                            depth: self.depth,
                            bound,
                        });
                    } else {
                        if INGRESS_READ_APIS.contains(&t.text.as_str()) && !zero_arg {
                            self.fns[fn_idx].io_reads.push((t.text.clone(), line));
                        }
                        if after_dot {
                            self.fns[fn_idx].calls.push(Call {
                                path: vec![t.text.clone()],
                                method: true,
                                line,
                            });
                        } else {
                            let mut path = vec![t.text.clone()];
                            let mut j = i;
                            while j >= 2
                                && self.live(j - 1).is_some_and(|p| p.is_punct("::"))
                                && self.live(j - 2).is_some_and(|p| p.kind == TokKind::Ident)
                            {
                                path.insert(0, self.toks[j - 2].text.clone());
                                j -= 2;
                            }
                            self.fns[fn_idx].calls.push(Call {
                                path,
                                method: false,
                                line,
                            });
                        }
                    }
                }
            }
            i += 1;
        }

        // Any guard still open at EOF: held to the end of its function.
        let guards = std::mem::take(&mut self.guards);
        for g in guards {
            if let Some(f) = self.fns.get(g.fn_idx) {
                let end = f.end_line;
                if let Some(l) = self.fns[g.fn_idx].locks.get_mut(g.lock_idx) {
                    l.end_line = end;
                }
            }
        }

        // `// dps: ingress` markers: own-line comment directly above the
        // fn, or trailing on the fn's own line.
        let mut out = FileSymbols { fns: self.fns };
        for c in comments {
            if self.ctx.line_skipped(c.line) {
                continue;
            }
            let text = c.text.trim().trim_start_matches('/').trim_start();
            if !text.starts_with("dps: ingress") {
                continue;
            }
            let target = if c.own_line { c.end_line + 1 } else { c.line };
            for f in &mut out.fns {
                if f.line == target {
                    f.ingress_marked = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;

    fn extract_src(src: &str) -> FileSymbols {
        let l = lex(src);
        let ctx = context::scan(&l);
        extract(&l, &ctx)
    }

    #[test]
    fn free_fns_and_impl_methods() {
        let src = "fn top() { helper(1); }\n\
                   struct S;\n\
                   impl S { fn m(&self) { self.n(); } fn n(&self) {} }\n\
                   impl Iterator for S { fn next(&mut self) -> Option<u8> { None } }";
        let s = extract_src(src);
        let names: Vec<_> = s
            .fns
            .iter()
            .map(|f| (f.owner.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            names,
            [
                (None, "top".to_owned()),
                (Some("S".to_owned()), "m".to_owned()),
                (Some("S".to_owned()), "n".to_owned()),
                (Some("S".to_owned()), "next".to_owned()),
            ]
        );
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].path, ["helper"]);
        assert!(s.fns[1].calls[0].method);
    }

    #[test]
    fn impl_generics_and_for_target() {
        let src = "impl<'a, F: Fn(u8) -> bool> Visitor<F> for Walker<'a> { fn visit(&self) {} }";
        let s = extract_src(src);
        assert_eq!(s.fns[0].owner.as_deref(), Some("Walker"));
    }

    #[test]
    fn trait_decl_methods_and_declarations() {
        let src = "trait T { fn has_body(&self) { base(); } fn decl_only(&self); }\nfn after() {}";
        let s = extract_src(src);
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["has_body", "after"]);
        assert_eq!(s.fns[0].owner.as_deref(), Some("T"));
    }

    #[test]
    fn path_calls_collect_segments() {
        let src = "fn f() { zonefile::parse_zone(x); dps_dns::Message::parse(b); g(); }";
        let s = extract_src(src);
        let paths: Vec<_> = s.fns[0].calls.iter().map(|c| c.path.clone()).collect();
        assert_eq!(
            paths,
            [
                vec!["zonefile".to_owned(), "parse_zone".to_owned()],
                vec![
                    "dps_dns".to_owned(),
                    "Message".to_owned(),
                    "parse".to_owned()
                ],
                vec!["g".to_owned()],
            ]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f() { println!(\"x\"); if (a) { return (b); } vec![1]; }";
        let s = extract_src(src);
        assert!(s.fns[0].calls.is_empty(), "{:?}", s.fns[0].calls);
    }

    #[test]
    fn test_code_contributes_nothing() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { target(); }\n  #[test]\n  fn t() { helper(); }\n}";
        let s = extract_src(src);
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn lock_sites_and_held_regions() {
        let src = "fn f(&self) {\n\
                   let g = self.state.lock();\n\
                   self.other.lock();\n\
                   use_it(&g);\n\
                   }\n\
                   fn h(&self) { self.map.read(); stream.read(&mut buf); }";
        let s = extract_src(src);
        let f = &s.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].receiver, "self.state");
        assert_eq!(f.locks[0].kind, LockKind::Mutex);
        // let-bound: held to the closing brace (line 5).
        assert_eq!(f.locks[0].end_line, 5);
        // temporary: dies on its own statement.
        assert_eq!(f.locks[1].receiver, "self.other");
        assert_eq!(f.locks[1].end_line, 3);
        let h = &s.fns[1];
        assert_eq!(h.locks.len(), 1);
        assert_eq!(h.locks[0].kind, LockKind::Read);
        // read with args is I/O, not a lock.
        assert_eq!(h.io_reads.len(), 1);
        assert_eq!(h.io_reads[0].0, "read");
    }

    #[test]
    fn explicit_drop_ends_the_region() {
        let src = "fn f(&self) {\n\
                   let g = self.state.lock();\n\
                   use_it(&g);\n\
                   drop(g);\n\
                   more();\n\
                   }";
        let s = extract_src(src);
        assert_eq!(s.fns[0].locks[0].end_line, 4);
    }

    #[test]
    fn ingress_markers_and_io_reads() {
        let src = "// dps: ingress\n\
                   fn root(sock: &UdpSocket) { sock.recv_from(&mut buf); }\n\
                   fn not_root() {}";
        let s = extract_src(src);
        assert!(s.fns[0].ingress_marked);
        assert_eq!(s.fns[0].io_reads[0].0, "recv_from");
        assert!(!s.fns[1].ingress_marked);
    }

    #[test]
    fn receiver_chain_collapses_args() {
        let src = "fn f(&self) { self.shard(key).lock(); }";
        let s = extract_src(src);
        assert_eq!(s.fns[0].locks[0].receiver, "self.shard()");
    }

    #[test]
    fn inline_mods_qualify() {
        let src = "mod inner { fn f() {} }\nfn outer() {}";
        let s = extract_src(src);
        assert_eq!(s.fns[0].mods, ["inner"]);
        assert!(s.fns[1].mods.is_empty());
    }

    #[test]
    fn fn_at_line_picks_innermost() {
        let src = "fn outer() {\n  fn inner() {\n    x();\n  }\n  y();\n}";
        let s = extract_src(src);
        let idx = s.fn_at_line(3).unwrap();
        assert_eq!(s.fns[idx].name, "inner");
        let idx = s.fn_at_line(5).unwrap();
        assert_eq!(s.fns[idx].name, "outer");
    }
}
