//! Inline waivers: `// dps: allow(<rule>, reason = "…")`.
//!
//! A waiver suppresses one rule at one site — the line the comment sits
//! on, or, for a comment alone on its line, the line directly below it.
//! `// dps: allow-file(<rule>, reason = "…")` waives the rule for the
//! whole file (for e.g. a keyed-lookup `HashMap` used on many lines).
//!
//! The reason string is mandatory and must be non-empty: a waiver without
//! one is itself a violation (`waiver-without-reason`), and it does *not*
//! suppress anything. Waivers naming a rule the analyzer does not ship
//! are `unknown-rule` violations; waivers that match no violation are
//! reported as `unused-waiver` so stale ones cannot linger.

use crate::lexer::Comment;

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver names.
    pub rule: String,
    /// True for `allow-file`, false for line-scoped `allow`.
    pub file_level: bool,
    /// Line of the waiver comment.
    pub line: u32,
    /// Line the waiver applies to (same line, or the one below for an
    /// own-line comment). Ignored for file-level waivers.
    pub target_line: u32,
    /// The reason string, if present and non-empty.
    pub reason: Option<String>,
}

/// Extracts waivers from a file's comments. Comments inside skipped
/// (test-only) line ranges must already be filtered out by the caller.
pub fn parse_waivers(comments: &[Comment]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        // Tolerate doc-comment leaders (`/// dps: …` lexes with a leading `/`).
        let text = text.trim_start_matches('/').trim_start();
        let Some(rest) = text.strip_prefix("dps:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|i| &r[..i]))
        else {
            // `dps: allow` without a parenthesised body: treat as a waiver
            // with no rule so it surfaces as unknown-rule rather than
            // silently doing nothing.
            out.push(Waiver {
                rule: String::new(),
                file_level,
                line: c.line,
                target_line: target_line(c),
                reason: None,
            });
            continue;
        };
        let (rule_part, reason) = match inner.find(',') {
            Some(i) => (&inner[..i], parse_reason(&inner[i + 1..])),
            None => (inner, None),
        };
        out.push(Waiver {
            rule: rule_part.trim().to_owned(),
            file_level,
            line: c.line,
            target_line: target_line(c),
            reason,
        });
    }
    out
}

fn target_line(c: &Comment) -> u32 {
    if c.own_line {
        c.end_line + 1
    } else {
        c.line
    }
}

/// Parses `reason = "…"`; `None` unless the string is present and
/// non-empty after trimming.
fn parse_reason(s: &str) -> Option<String> {
    let s = s.trim();
    let s = s.strip_prefix("reason")?.trim_start();
    let s = s.strip_prefix('=')?.trim_start();
    let s = s.strip_prefix('"')?;
    let end = s.rfind('"')?;
    let reason = s[..end].trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, own_line: bool) -> Comment {
        Comment {
            line: 10,
            end_line: 10,
            text: text.to_owned(),
            own_line,
        }
    }

    #[test]
    fn parses_full_waiver() {
        let w = parse_waivers(&[comment(
            r#" dps: allow(unordered-collection, reason = "keyed lookup only")"#,
            true,
        )]);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rule, "unordered-collection");
        assert_eq!(w[0].reason.as_deref(), Some("keyed lookup only"));
        assert!(!w[0].file_level);
        assert_eq!(w[0].target_line, 11);
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let w = parse_waivers(&[comment(
            r#" dps: allow(unwrap-expect, reason = "x")"#,
            false,
        )]);
        assert_eq!(w[0].target_line, 10);
    }

    #[test]
    fn missing_or_empty_reason_is_none() {
        for text in [
            " dps: allow(unwrap-expect)",
            " dps: allow(unwrap-expect, reason = \"\")",
            " dps: allow(unwrap-expect, reason = \"  \")",
            " dps: allow(unwrap-expect, because = \"y\")",
        ] {
            let w = parse_waivers(&[comment(text, true)]);
            assert_eq!(w.len(), 1, "{text}");
            assert!(w[0].reason.is_none(), "{text}");
        }
    }

    #[test]
    fn file_level_flag() {
        let w = parse_waivers(&[comment(
            r#" dps: allow-file(print-macro, reason = "reporter")"#,
            true,
        )]);
        assert!(w[0].file_level);
    }

    #[test]
    fn unrelated_comments_ignored() {
        assert!(parse_waivers(&[comment(" just words", true)]).is_empty());
        assert!(parse_waivers(&[comment(" dps-expect: unwrap-expect", true)]).is_empty());
    }
}
