//! The rule set: lexical matchers over a classified token stream.
//!
//! Three families, mirroring the invariants the reproduction depends on:
//!
//! * **determinism** — same-seed runs must be byte-identical, so nothing
//!   on the persistence/simulation path may read wall clocks, ambient
//!   randomness, the process environment, or iterate unordered
//!   collections.
//! * **panic-safety** — decoders over wire/archive bytes must return
//!   `Result`, never panic, so no `unwrap`/`expect`/`panic!`/direct
//!   indexing in designated untrusted-input modules.
//! * **hygiene** — no stray stdout/stderr printing outside binaries and
//!   benches; no `#[allow(…)]` without an adjacent justification comment.

use crate::context::Context;
use crate::lexer::{Comment, Lexed, TokKind, Token};

/// Rule family, the unit of policy scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Byte-identical same-seed output.
    Determinism,
    /// Panic-free decoding of untrusted bytes.
    PanicSafety,
    /// Output and lint-attribute hygiene.
    Hygiene,
    /// Waiver bookkeeping; always in scope.
    Meta,
    /// Inter-procedural passes (ingress taint, lock order) over the
    /// workspace call graph; always run, scoped by their own root and
    /// exemption logic rather than the per-file family map.
    Flow,
}

/// Violation severity. `Deny` fails the build; `Warn` fails only under
/// `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Report, but exit 0 unless `--deny`.
    Warn,
    /// Always fails.
    Deny,
}

/// One rule the analyzer ships.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id, used in waivers and reports.
    pub id: &'static str,
    /// Scoping family.
    pub family: Family,
    /// Default severity.
    pub severity: Severity,
    /// One-line description for `--list-rules` and docs.
    pub describes: &'static str,
}

/// Every shipped rule. Waiver parsing validates rule names against this
/// table, so adding a rule here is all it takes to make it waivable.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        family: Family::Determinism,
        severity: Severity::Deny,
        describes: "SystemTime::now/Instant::now on the persistence/simulation path; \
                    use the simulated clock",
    },
    Rule {
        id: "ambient-rng",
        family: Family::Determinism,
        severity: Severity::Deny,
        describes: "thread_rng/from_entropy/OsRng/rand::random; seed every RNG explicitly",
    },
    Rule {
        id: "env-read",
        family: Family::Determinism,
        severity: Severity::Deny,
        describes: "std::env reads (var/vars/args) on the persistence/simulation path",
    },
    Rule {
        id: "unordered-collection",
        family: Family::Determinism,
        severity: Severity::Deny,
        describes: "HashMap/HashSet on the persistence/simulation path; use \
                    BTreeMap/BTreeSet or waive with a reason if never iterated",
    },
    Rule {
        id: "unwrap-expect",
        family: Family::PanicSafety,
        severity: Severity::Deny,
        describes: ".unwrap()/.expect() in an untrusted-input module; propagate a Result",
    },
    Rule {
        id: "panic-macro",
        family: Family::PanicSafety,
        severity: Severity::Deny,
        describes: "panic!/unreachable!/todo!/unimplemented! in an untrusted-input module",
    },
    Rule {
        id: "slice-index",
        family: Family::PanicSafety,
        severity: Severity::Deny,
        describes: "direct slice/array indexing in an untrusted-input module; use \
                    get()/split or waive with a bounds argument",
    },
    Rule {
        id: "print-macro",
        family: Family::Hygiene,
        severity: Severity::Warn,
        describes: "println!/eprintln!/print!/eprint!/dbg! outside src/bin, benches and \
                    the bench crate",
    },
    Rule {
        id: "allow-without-reason",
        family: Family::Hygiene,
        severity: Severity::Warn,
        describes: "#[allow(…)] with no adjacent justification comment",
    },
    Rule {
        id: "waiver-without-reason",
        family: Family::Meta,
        severity: Severity::Deny,
        describes: "dps: allow(…) waiver missing its reason = \"…\" string",
    },
    Rule {
        id: "unknown-rule",
        family: Family::Meta,
        severity: Severity::Deny,
        describes: "dps: allow(…) waiver naming a rule the analyzer does not ship",
    },
    Rule {
        id: "unused-waiver",
        family: Family::Meta,
        severity: Severity::Warn,
        describes: "waiver that suppressed nothing; delete it",
    },
    Rule {
        id: "taint-panic",
        family: Family::Flow,
        severity: Severity::Deny,
        describes: "panic-capable code (unwrap/expect, panic!, unchecked indexing) in a \
                    function reachable from an ingress root, outside the panic-safety scope",
    },
    Rule {
        id: "policy-drift",
        family: Family::Flow,
        severity: Severity::Warn,
        describes: "file containing an ingress root (reads untrusted socket/file bytes) \
                    that the hand-written panic-safety scope does not cover",
    },
    Rule {
        id: "lock-order",
        family: Family::Flow,
        severity: Severity::Deny,
        describes: "two locks acquired in opposite orders on different code paths \
                    (deadlock candidate), directly or transitively across calls",
    },
    Rule {
        id: "lock-across-ingress",
        family: Family::Flow,
        severity: Severity::Warn,
        describes: "lock guard held across a call or read that performs ingress I/O; \
                    hostile-paced bytes then control how long the lock is held",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// A rule match before waiver resolution.
#[derive(Debug, Clone)]
pub struct RawViolation {
    /// Rule id.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Site-specific message.
    pub message: String,
}

/// Keywords that may directly precede `[` without it being an index
/// expression (`&mut [u8]`, `return [0; 4]`, `in [a, b]` …).
const NONINDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "return", "in", "as", "dyn", "impl", "where", "else", "match", "if", "box",
    "move", "break", "continue", "const", "static", "let", "type", "use", "crate", "pub", "fn",
    "for", "while", "loop", "unsafe", "extern", "enum", "struct", "trait", "mod", "yield",
];

struct Scan<'a> {
    toks: &'a [Token],
    ctx: &'a Context,
}

impl<'a> Scan<'a> {
    fn live(&self, i: usize) -> Option<&'a Token> {
        let t = self.toks.get(i)?;
        if self.ctx.skipped[i] {
            None
        } else {
            Some(t)
        }
    }

    /// Runs `f` over every live token index.
    fn each(&self, mut f: impl FnMut(usize, &'a Token)) {
        for i in 0..self.toks.len() {
            if let Some(t) = self.live(i) {
                f(i, t);
            }
        }
    }
}

/// Runs every rule of the given families over a lexed, classified file.
pub fn check(
    lexed: &Lexed,
    ctx: &Context,
    families: &[Family],
    print_allowed: bool,
) -> Vec<RawViolation> {
    let scan = Scan {
        toks: &lexed.tokens,
        ctx,
    };
    let mut out = Vec::new();
    if families.contains(&Family::Determinism) {
        determinism(&scan, &mut out);
    }
    if families.contains(&Family::PanicSafety) {
        panic_safety(&scan, &mut out);
    }
    if families.contains(&Family::Hygiene) {
        hygiene(&scan, &lexed.comments, ctx, print_allowed, &mut out);
    }
    out
}

fn push(out: &mut Vec<RawViolation>, rule: &'static str, line: u32, message: String) {
    out.push(RawViolation {
        rule,
        line,
        message,
    });
}

fn determinism(s: &Scan, out: &mut Vec<RawViolation>) {
    s.each(|i, t| {
        if t.kind != TokKind::Ident {
            return;
        }
        match t.text.as_str() {
            "now" => {
                if let (Some(p2), Some(p1)) = (i.checked_sub(2), i.checked_sub(1)) {
                    if s.live(p1).is_some_and(|p| p.is_punct("::")) {
                        if let Some(owner) = s.live(p2) {
                            if owner.is_ident("SystemTime") || owner.is_ident("Instant") {
                                push(
                                    out,
                                    "wall-clock",
                                    t.line,
                                    format!("`{}::now` reads the wall clock", owner.text),
                                );
                            }
                        }
                    }
                }
            }
            "thread_rng" | "from_entropy" | "OsRng" => push(
                out,
                "ambient-rng",
                t.line,
                format!("`{}` draws ambient (unseeded) randomness", t.text),
            ),
            "random"
                if i >= 2
                    && s.live(i - 1).is_some_and(|p| p.is_punct("::"))
                    && s.live(i - 2).is_some_and(|p| p.is_ident("rand")) =>
            {
                push(
                    out,
                    "ambient-rng",
                    t.line,
                    "`rand::random` draws ambient randomness".to_owned(),
                );
            }
            "var" | "var_os" | "vars" | "vars_os" | "args" | "args_os"
                if i >= 2
                    && s.live(i - 1).is_some_and(|p| p.is_punct("::"))
                    && s.live(i - 2).is_some_and(|p| p.is_ident("env")) =>
            {
                push(
                    out,
                    "env-read",
                    t.line,
                    format!("`env::{}` reads the process environment", t.text),
                );
            }
            "HashMap" | "HashSet" => push(
                out,
                "unordered-collection",
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; use the BTree \
                     equivalent or sort before any write/hash",
                    t.text
                ),
            ),
            _ => {}
        }
    });
}

fn panic_safety(s: &Scan, out: &mut Vec<RawViolation>) {
    s.each(|i, t| {
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect" => {
                    let after_dot = i >= 1 && s.live(i - 1).is_some_and(|p| p.is_punct("."));
                    let called = s.live(i + 1).is_some_and(|n| n.is_punct("("));
                    if after_dot && called {
                        push(
                            out,
                            "unwrap-expect",
                            t.line,
                            format!("`.{}()` can panic on untrusted input", t.text),
                        );
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if s.live(i + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    push(
                        out,
                        "panic-macro",
                        t.line,
                        format!("`{}!` aborts on untrusted input", t.text),
                    );
                }
                _ => {}
            },
            TokKind::Punct if t.text == "[" => {
                let Some(prev) = i.checked_sub(1).and_then(|p| s.live(p)) else {
                    return;
                };
                let indexable = match prev.kind {
                    TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                // `#[attr]` and `#![attr]`: the `[` follows `#` or `!`.
                if indexable {
                    push(
                        out,
                        "slice-index",
                        t.line,
                        "direct indexing can panic; use get()/split/chunks".to_owned(),
                    );
                }
            }
            _ => {}
        }
    });
}

fn hygiene(
    s: &Scan,
    comments: &[Comment],
    ctx: &Context,
    print_allowed: bool,
    out: &mut Vec<RawViolation>,
) {
    s.each(|i, t| {
        if t.kind != TokKind::Ident {
            return;
        }
        match t.text.as_str() {
            "println" | "eprintln" | "print" | "eprint" | "dbg"
                if !print_allowed && s.live(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    out,
                    "print-macro",
                    t.line,
                    format!("`{}!` outside a binary/bench target", t.text),
                );
            }
            "allow" => {
                // `#[allow(…)]` / `#![allow(…)]`: look back over `[` and
                // optional `!` to the `#`.
                let mut j = i;
                let mut is_attr = false;
                if j >= 1 && s.live(j - 1).is_some_and(|p| p.is_punct("[")) {
                    j -= 1;
                    if j >= 1 && s.live(j - 1).is_some_and(|p| p.is_punct("!")) {
                        j -= 1;
                    }
                    is_attr = j >= 1 && s.live(j - 1).is_some_and(|p| p.is_punct("#"));
                }
                if is_attr {
                    let justified = comments.iter().any(|c| {
                        !ctx.line_skipped(c.line)
                            && (c.end_line + 1 == t.line || c.line == t.line)
                            && !c.text.trim().is_empty()
                    });
                    if !justified {
                        push(
                            out,
                            "allow-without-reason",
                            t.line,
                            "#[allow(…)] needs an adjacent justification comment".to_owned(),
                        );
                    }
                }
            }
            _ => {}
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;

    fn run(src: &str, families: &[Family]) -> Vec<RawViolation> {
        let l = lex(src);
        let ctx = context::scan(&l);
        check(&l, &ctx, families, false)
    }

    fn rules_of(v: &[RawViolation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn determinism_rules_fire() {
        let src = "fn f() { let t = SystemTime::now(); let r = thread_rng(); \
                   let v = std::env::var(\"X\"); let m: HashMap<u32, u32> = HashMap::new(); }";
        let got = rules_of(&run(src, &[Family::Determinism]));
        assert!(got.contains(&"wall-clock"));
        assert!(got.contains(&"ambient-rng"));
        assert!(got.contains(&"env-read"));
        assert!(got.contains(&"unordered-collection"));
    }

    #[test]
    fn elapsed_now_on_other_types_is_clean() {
        let src = "fn f(c: &Clock) { let t = c.now(); let u = Utc::now2(); }";
        assert!(run(src, &[Family::Determinism]).is_empty());
    }

    #[test]
    fn panic_safety_rules_fire() {
        let src = "fn f(b: &[u8]) -> u8 { let x = b.get(0).unwrap(); \
                   if x > 9 { panic!(\"no\"); } b[1] }";
        let got = rules_of(&run(src, &[Family::PanicSafety]));
        assert_eq!(got, vec!["unwrap-expect", "panic-macro", "slice-index"]);
    }

    #[test]
    fn unwrap_or_and_types_are_clean() {
        let src = "fn f(o: Option<u8>) -> u8 { let v: [u8; 4] = [0; 4]; \
                   let s: &mut [u8] = &mut []; o.unwrap_or(v.len() as u8) }";
        let got = run(src, &[Family::PanicSafety]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\n#![allow(dead_code)]\nstruct S;";
        let got = run(src, &[Family::PanicSafety]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); let m = HashMap::new(); \
                   println!(\"ok\"); } }";
        for fam in [Family::Determinism, Family::PanicSafety, Family::Hygiene] {
            assert!(run(src, &[fam]).is_empty());
        }
    }

    #[test]
    fn print_macros_flagged_unless_allowed() {
        let src = "fn f() { println!(\"x\"); }";
        assert_eq!(rules_of(&run(src, &[Family::Hygiene])), vec!["print-macro"]);
        let l = lex(src);
        let ctx = context::scan(&l);
        assert!(check(&l, &ctx, &[Family::Hygiene], true).is_empty());
    }

    #[test]
    fn allow_needs_adjacent_comment() {
        let bad = "#[allow(dead_code)]\nfn f() {}";
        assert_eq!(
            rules_of(&run(bad, &[Family::Hygiene])),
            vec!["allow-without-reason"]
        );
        let good = "// The field mirrors the wire layout.\n#[allow(dead_code)]\nfn f() {}";
        assert!(run(good, &[Family::Hygiene]).is_empty());
    }

    #[test]
    fn rule_table_is_consistent() {
        for r in RULES {
            assert!(rule(r.id).is_some());
        }
        assert!(rule("nope").is_none());
    }
}
