//! The module policy map: which rule families apply to which workspace
//! paths.
//!
//! Paths are workspace-relative with `/` separators. The map is code, not
//! config, on purpose: the policy *is* part of the invariant and should
//! change only through review, alongside the code it scopes. Fixture
//! checking and tests use [`Mode::AllRules`] to exercise every family
//! regardless of path.

use crate::rules::Family;

/// How to scope rules to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The workspace policy below.
    Workspace,
    /// Every family, print macros still denied (fixtures, tests).
    AllRules,
}

/// Crates whose non-test sources sit on the persistence or simulation
/// path: anything nondeterministic here can desynchronise same-seed runs
/// or the bytes they archive.
pub const DETERMINISM_SCOPE: &[&str] = &[
    "crates/store/src/",
    "crates/columnar/src/",
    "crates/measure/src/",
    "crates/netsim/src/",
    "crates/ecosystem/src/",
    "crates/telemetry/src/",
    "crates/cluster/src/",
    "crates/stream/src/",
    "crates/fuzz/src/",
];

/// Modules that decode untrusted wire/archive bytes and must be
/// panic-free end to end.
pub const PANIC_SAFETY_SCOPE: &[&str] = &[
    "crates/dns/src/wire.rs",
    "crates/dns/src/message.rs",
    "crates/authdns/src/zonefile.rs",
    "crates/store/src/format.rs",
    "crates/store/src/archive.rs",
    "crates/cluster/src/wire.rs",
    "crates/stream/src/page.rs",
    "crates/serve/src/edns.rs",
    "crates/serve/src/frontend.rs",
    "crates/serve/src/rrl.rs",
];

/// What applies to one file.
#[derive(Debug, Clone)]
pub struct FilePolicy {
    /// Families to run.
    pub families: Vec<Family>,
    /// True if print macros are fine here (binaries, benches, the bench
    /// crate, examples, integration tests).
    pub print_allowed: bool,
}

/// True for paths the analyzer must not scan at all.
pub fn excluded(rel: &str) -> bool {
    rel.starts_with("target/")
        || rel.starts_with("vendor/")
        || rel.starts_with(".git/")
        || rel.contains("/fixtures/")
        || rel.contains("/target/")
}

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// Resolves the policy for one workspace-relative path.
pub fn for_path(rel: &str, mode: Mode) -> FilePolicy {
    let print_allowed = rel.contains("/bin/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("crates/bench/")
        || rel.ends_with("/main.rs");
    if mode == Mode::AllRules {
        return FilePolicy {
            families: vec![
                Family::Determinism,
                Family::PanicSafety,
                Family::Hygiene,
                Family::Meta,
            ],
            print_allowed: false,
        };
    }
    let mut families = vec![Family::Meta];
    if in_scope(rel, DETERMINISM_SCOPE) {
        families.push(Family::Determinism);
    }
    if in_scope(rel, PANIC_SAFETY_SCOPE) {
        families.push(Family::PanicSafety);
    }
    // Hygiene applies to all first-party sources; integration tests,
    // benches and examples are covered too but may print.
    families.push(Family::Hygiene);
    FilePolicy {
        families,
        print_allowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_scopes_to_persistence_crates() {
        let p = for_path("crates/store/src/writer.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        let p = for_path("crates/telemetry/src/lib.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        let p = for_path("crates/dns/src/wire.rs", Mode::Workspace);
        assert!(!p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
    }

    #[test]
    fn cluster_crate_is_scoped() {
        // The whole crate sits on the archive-bytes path; its wire module
        // additionally decodes untrusted socket bytes.
        let p = for_path("crates/cluster/src/scheduler.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(!p.families.contains(&Family::PanicSafety));
        let p = for_path("crates/cluster/src/wire.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
    }

    #[test]
    fn stream_crate_is_scoped() {
        // Streamed analysis state feeds archived checkpoint bytes; its
        // page module additionally decodes those bytes back on resume.
        let p = for_path("crates/stream/src/engine.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(!p.families.contains(&Family::PanicSafety));
        let p = for_path("crates/stream/src/page.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
    }

    #[test]
    fn serve_and_fuzz_crates_are_scoped() {
        // Serve's wire-facing modules parse hostile socket bytes; its
        // socket plumbing is I/O glue and stays out of panic-safety.
        for rel in [
            "crates/serve/src/edns.rs",
            "crates/serve/src/frontend.rs",
            "crates/serve/src/rrl.rs",
        ] {
            let p = for_path(rel, Mode::Workspace);
            assert!(p.families.contains(&Family::PanicSafety), "{rel}");
        }
        let p = for_path("crates/serve/src/sockets.rs", Mode::Workspace);
        assert!(!p.families.contains(&Family::PanicSafety));
        // The fuzzer must be seed-deterministic to reproduce findings.
        let p = for_path("crates/fuzz/src/lib.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
    }

    #[test]
    fn binaries_and_bench_crate_may_print() {
        for rel in [
            "src/bin/dpscope.rs",
            "crates/bench/src/experiments.rs",
            "crates/bench/benches/store.rs",
            "examples/dig.rs",
            "tests/chaos_sweep.rs",
        ] {
            assert!(for_path(rel, Mode::Workspace).print_allowed, "{rel}");
        }
        assert!(!for_path("crates/measure/src/pipeline.rs", Mode::Workspace).print_allowed);
    }

    #[test]
    fn fixtures_and_vendor_excluded() {
        assert!(excluded("crates/analyzer/fixtures/bad/unwrap.rs"));
        assert!(excluded("vendor/rand/src/lib.rs"));
        assert!(excluded("target/debug/build.rs"));
        assert!(!excluded("crates/dns/src/wire.rs"));
    }
}
