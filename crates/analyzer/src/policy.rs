//! The module policy map: which rule families apply to which workspace
//! paths.
//!
//! Paths are workspace-relative with `/` separators. The map is code, not
//! config, on purpose: the policy *is* part of the invariant and should
//! change only through review, alongside the code it scopes. Fixture
//! checking and tests use [`Mode::AllRules`] to exercise every family
//! regardless of path.

use crate::rules::Family;

/// How to scope rules to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The workspace policy below.
    Workspace,
    /// Every family, print macros still denied (fixtures, tests).
    AllRules,
}

/// Crates whose non-test sources sit on the persistence or simulation
/// path: anything nondeterministic here can desynchronise same-seed runs
/// or the bytes they archive.
pub const DETERMINISM_SCOPE: &[&str] = &[
    "crates/store/src/",
    "crates/columnar/src/",
    "crates/measure/src/",
    "crates/netsim/src/",
    "crates/ecosystem/src/",
    "crates/telemetry/src/",
    "crates/cluster/src/",
    "crates/stream/src/",
    "crates/fuzz/src/",
];

/// Modules that decode untrusted wire/archive bytes and must be
/// panic-free end to end.
pub const PANIC_SAFETY_SCOPE: &[&str] = &[
    "crates/dns/src/wire.rs",
    "crates/dns/src/message.rs",
    "crates/authdns/src/zonefile.rs",
    "crates/store/src/format.rs",
    "crates/store/src/archive.rs",
    "crates/cluster/src/wire.rs",
    "crates/stream/src/page.rs",
    "crates/serve/src/edns.rs",
    "crates/serve/src/frontend.rs",
    "crates/serve/src/rrl.rs",
    "crates/serve/src/sockets.rs",
    "crates/cluster/src/transport.rs",
    "crates/store/src/writer.rs",
    "crates/measure/src/pipeline.rs",
    "crates/store/src/sharded.rs",
];

/// Files where a read-style call takes in *untrusted* bytes — real
/// sockets and on-disk archives/zones. A function here performing such
/// a read is an ingress root for the taint pass (`// dps: ingress`
/// markers add roots the call graph cannot see, e.g. fuzz targets
/// dispatched through function values).
pub const INGRESS_SCOPE: &[&str] = &[
    "crates/serve/src/sockets.rs",
    "crates/cluster/src/transport.rs",
    "crates/store/src/",
    "crates/authdns/src/zonefile.rs",
];

/// True if `rel` is a declared ingress surface (see [`INGRESS_SCOPE`]).
pub fn in_ingress_scope(rel: &str) -> bool {
    in_scope(rel, INGRESS_SCOPE)
}

/// True if `rel` is covered by the hand-written panic-safety scope.
pub fn in_panic_safety_scope(rel: &str) -> bool {
    in_scope(rel, PANIC_SAFETY_SCOPE)
}

/// True for operator-facing paths the flow passes (taint, locks) leave
/// alone: panics and lock stalls in binaries, benches, examples and
/// integration tests abort a tool run, not a server.
pub fn flow_exempt(rel: &str) -> bool {
    rel.contains("/bin/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("crates/bench/")
        || rel.ends_with("/main.rs")
        || rel.ends_with("build.rs")
}

/// What applies to one file.
#[derive(Debug, Clone)]
pub struct FilePolicy {
    /// Families to run.
    pub families: Vec<Family>,
    /// True if print macros are fine here (binaries, benches, the bench
    /// crate, examples, integration tests).
    pub print_allowed: bool,
}

/// True for paths the analyzer must not scan at all.
pub fn excluded(rel: &str) -> bool {
    rel.starts_with("target/")
        || rel.starts_with("vendor/")
        || rel.starts_with(".git/")
        || rel.contains("/fixtures/")
        || rel.contains("/target/")
}

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// Resolves the policy for one workspace-relative path.
pub fn for_path(rel: &str, mode: Mode) -> FilePolicy {
    let print_allowed = rel.contains("/bin/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("crates/bench/")
        || rel.ends_with("/main.rs");
    if mode == Mode::AllRules {
        return FilePolicy {
            families: vec![
                Family::Determinism,
                Family::PanicSafety,
                Family::Hygiene,
                Family::Meta,
            ],
            print_allowed: false,
        };
    }
    let mut families = vec![Family::Meta];
    if in_scope(rel, DETERMINISM_SCOPE) {
        families.push(Family::Determinism);
    }
    if in_scope(rel, PANIC_SAFETY_SCOPE) {
        families.push(Family::PanicSafety);
    }
    // Hygiene applies to all first-party sources; integration tests,
    // benches and examples are covered too but may print.
    families.push(Family::Hygiene);
    FilePolicy {
        families,
        print_allowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_scopes_to_persistence_crates() {
        let p = for_path("crates/store/src/writer.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        let p = for_path("crates/telemetry/src/lib.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        let p = for_path("crates/dns/src/wire.rs", Mode::Workspace);
        assert!(!p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
    }

    #[test]
    fn cluster_crate_is_scoped() {
        // The whole crate sits on the archive-bytes path; its wire module
        // additionally decodes untrusted socket bytes.
        let p = for_path("crates/cluster/src/scheduler.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(!p.families.contains(&Family::PanicSafety));
        let p = for_path("crates/cluster/src/wire.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
        // The transport frames untrusted socket bytes and the archive
        // writer re-reads on-disk bytes: both were flagged by the
        // policy-drift rule and folded into the scope (PR 9).
        for rel in [
            "crates/cluster/src/transport.rs",
            "crates/store/src/writer.rs",
        ] {
            let p = for_path(rel, Mode::Workspace);
            assert!(p.families.contains(&Family::PanicSafety), "{rel}");
        }
    }

    #[test]
    fn sharded_store_is_scoped() {
        // The sharded layer re-reads on-disk manifest/shard bytes on
        // resume (the taint pass flagged its resume path as an ingress
        // root), and trusts the manifest's meta page for shard counts.
        let p = for_path("crates/store/src/sharded.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::PanicSafety));
        assert!(in_ingress_scope("crates/store/src/sharded.rs"));
    }

    #[test]
    fn stream_crate_is_scoped() {
        // Streamed analysis state feeds archived checkpoint bytes; its
        // page module additionally decodes those bytes back on resume.
        let p = for_path("crates/stream/src/engine.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(!p.families.contains(&Family::PanicSafety));
        let p = for_path("crates/stream/src/page.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
        assert!(p.families.contains(&Family::PanicSafety));
    }

    #[test]
    fn serve_and_fuzz_crates_are_scoped() {
        // Serve's wire-facing modules parse hostile socket bytes, and the
        // socket plumbing frames them — the taint pass flagged it as an
        // ingress root, so it is scoped too (PR 9 policy-drift fix).
        for rel in [
            "crates/serve/src/edns.rs",
            "crates/serve/src/frontend.rs",
            "crates/serve/src/rrl.rs",
            "crates/serve/src/sockets.rs",
        ] {
            let p = for_path(rel, Mode::Workspace);
            assert!(p.families.contains(&Family::PanicSafety), "{rel}");
        }
        // The fuzzer must be seed-deterministic to reproduce findings.
        let p = for_path("crates/fuzz/src/lib.rs", Mode::Workspace);
        assert!(p.families.contains(&Family::Determinism));
    }

    #[test]
    fn ingress_scope_and_flow_exemptions() {
        assert!(in_ingress_scope("crates/serve/src/sockets.rs"));
        assert!(in_ingress_scope("crates/store/src/snapshot.rs"));
        assert!(!in_ingress_scope("crates/core/src/growth.rs"));
        assert!(flow_exempt("crates/ecosystem/src/bin/dpscope.rs"));
        assert!(flow_exempt("crates/measure/tests/determinism.rs"));
        assert!(flow_exempt("crates/bench/benches/telemetry.rs"));
        assert!(!flow_exempt("crates/serve/src/sockets.rs"));
    }

    #[test]
    fn binaries_and_bench_crate_may_print() {
        for rel in [
            "src/bin/dpscope.rs",
            "crates/bench/src/experiments.rs",
            "crates/bench/benches/store.rs",
            "examples/dig.rs",
            "tests/chaos_sweep.rs",
        ] {
            assert!(for_path(rel, Mode::Workspace).print_allowed, "{rel}");
        }
        assert!(!for_path("crates/measure/src/pipeline.rs", Mode::Workspace).print_allowed);
    }

    #[test]
    fn fixtures_and_vendor_excluded() {
        assert!(excluded("crates/analyzer/fixtures/bad/unwrap.rs"));
        assert!(excluded("vendor/rand/src/lib.rs"));
        assert!(excluded("target/debug/build.rs"));
        assert!(!excluded("crates/dns/src/wire.rs"));
    }
}
