//! Report rendering: human-readable and JSON. Pure string builders — the
//! binary decides where the text goes, keeping the library free of any
//! stdout/stderr writes.

use crate::engine::Finding;
use crate::rules::Severity;

/// Renders findings as `path:line: severity[rule] message` lines plus a
/// summary tail.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let sev = match f.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        out.push_str(&format!(
            "{}:{}: {}[{}] {}\n",
            f.path, f.line, sev, f.rule, f.message
        ));
    }
    let denies = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = findings.len() - denies;
    out.push_str(&format!(
        "dps-analyzer: {} finding(s) — {} deny, {} warn\n",
        findings.len(),
        denies,
        warns
    ));
    out
}

/// Renders findings as a JSON array (stable field order, sorted input).
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(match f.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            }),
            escape(&f.message)
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a minimal SARIF 2.1.0 log (one run, one artifact
/// location per finding) so CI systems can ingest the analyzer output as
/// a standard static-analysis artifact.
pub fn sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"dps-analyzer\",\"rules\":[",
    );
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            escape(r.id),
            escape(r.describes)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            escape(f.rule),
            escape(level),
            escape(&f.message),
            escape(&f.path),
            f.line
        ));
    }
    out.push_str("]}]}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            path: "crates/dns/src/wire.rs".into(),
            line: 42,
            rule: "slice-index",
            severity: Severity::Deny,
            message: "direct indexing \"quoted\"".into(),
        }]
    }

    #[test]
    fn human_lines_are_clickable() {
        let h = human(&sample());
        assert!(h.contains("crates/dns/src/wire.rs:42: deny[slice-index]"));
        assert!(h.contains("1 deny, 0 warn"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = json(&sample());
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.starts_with('['));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_report() {
        assert!(human(&[]).contains("0 finding(s)"));
        assert_eq!(json(&[]).trim_end(), "[]");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = sarif(&sample());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"dps-analyzer\""));
        // Every shipped rule is declared in the driver metadata.
        for r in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\":\"{}\"", r.id)), "{}", r.id);
        }
        assert!(s.contains("\"ruleId\":\"slice-index\""));
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\"startLine\":42"));
        assert!(s.contains("crates/dns/src/wire.rs"));
    }

    #[test]
    fn sarif_empty_is_valid_shape() {
        let s = sarif(&[]);
        assert!(s.contains("\"results\":[]"));
    }
}
