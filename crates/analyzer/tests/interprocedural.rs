//! The rediscovery gate for the inter-procedural passes, run against the
//! real workspace: the taint pass, starting only from *derived* ingress
//! roots (socket/file reads inside the declared ingress scope plus
//! `// dps: ingress` markers), must reach every file the hand-written
//! panic-safety scope lists — and more. If the derived surface ever
//! shrinks below the hand-written one, either the call graph lost edges
//! or the scope names a module ingress can no longer reach; both are
//! worth failing loudly over.

use std::path::Path;

use dps_analyzer::engine::{analyze_workspace, ingress_surface, read_sources};
use dps_analyzer::policy::PANIC_SAFETY_SCOPE;
use dps_analyzer::Mode;

fn workspace_root() -> &'static Path {
    // crates/analyzer -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn taint_rediscovers_the_panic_safety_scope() {
    let files = read_sources(workspace_root()).expect("workspace sources");
    let surface = ingress_surface(&files);

    // Every hand-listed module is reachable from a derived ingress root.
    for scoped in PANIC_SAFETY_SCOPE {
        assert!(
            surface.contains(*scoped),
            "panic-safety scope entry {scoped} is not on the derived ingress \
             surface; the call graph lost the path that justified scoping it"
        );
    }

    // And the derived surface is strictly larger: the pass sees modules
    // the hand-written list never named (this is what caught
    // serve::sockets, cluster::transport and store::writer in PR 9).
    let unlisted: Vec<&String> = surface
        .iter()
        .filter(|f| !PANIC_SAFETY_SCOPE.contains(&f.as_str()))
        .collect();
    assert!(
        !unlisted.is_empty(),
        "derived ingress surface adds nothing beyond the hand-written scope"
    );
}

#[test]
fn workspace_is_clean_under_workspace_policy() {
    let files = read_sources(workspace_root()).expect("workspace sources");
    let findings = analyze_workspace(workspace_root(), Mode::Workspace).expect("analyzable");
    assert!(
        !files.is_empty(),
        "read_sources found no files — looking at the wrong root?"
    );
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "workspace must analyze clean, found:\n{}",
        rendered.join("\n")
    );
}
