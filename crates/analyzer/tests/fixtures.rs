//! The fixture corpus as a test suite: every `bad/` fixture must fire each
//! rule named by its `// dps-expect:` annotations, every `good/` fixture
//! must come back clean, and every rule in the table must be covered by at
//! least one bad fixture — so a rule can never silently stop biting.

use dps_analyzer::{analyze_source, Mode, RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

/// `(file name, source text)` for every fixture under `sub`, sorted.
fn sources(sub: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(fixture_dir(sub))
        .expect("fixture dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let src = std::fs::read_to_string(&p).expect("readable fixture");
            (name, src)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no fixtures under {sub}/");
    out
}

fn expectations(src: &str) -> Vec<&str> {
    src.lines()
        .filter_map(|l| l.trim().strip_prefix("// dps-expect:"))
        .map(str::trim)
        .collect()
}

#[test]
fn bad_fixtures_fire_their_expected_rules() {
    for (name, src) in sources("bad") {
        let expected = expectations(&src);
        assert!(!expected.is_empty(), "{name}: no dps-expect annotations");
        let fired: Vec<&str> = analyze_source(&name, &src, Mode::AllRules)
            .iter()
            .map(|f| f.rule)
            .collect();
        assert!(!fired.is_empty(), "{name}: no findings at all");
        for rule in expected {
            assert!(
                fired.contains(&rule),
                "{name}: expected `{rule}` to fire, got {fired:?}"
            );
        }
    }
}

#[test]
fn good_fixtures_are_clean() {
    for (name, src) in sources("good") {
        let findings = analyze_source(&name, &src, Mode::AllRules);
        assert!(
            findings.is_empty(),
            "{name}: expected clean, got {findings:?}"
        );
    }
}

#[test]
fn every_rule_has_a_bad_fixture() {
    let covered: BTreeSet<String> = sources("bad")
        .iter()
        .flat_map(|(_, src)| {
            expectations(src)
                .into_iter()
                .map(str::to_owned)
                .collect::<Vec<_>>()
        })
        .collect();
    for rule in RULES {
        assert!(
            covered.contains(rule.id),
            "rule `{}` has no bad fixture exercising it",
            rule.id
        );
    }
}

/// The waiver grammar's teeth: omitting the reason string must not
/// suppress the underlying finding, and must itself be reported.
#[test]
fn waiver_without_reason_is_itself_a_violation() {
    let src = "fn f(v: &[u8]) -> u8 {\n\
               // dps: allow(slice-index)\n\
               v[0]\n}";
    let fired: Vec<&str> = analyze_source("inline.rs", src, Mode::AllRules)
        .iter()
        .map(|f| f.rule)
        .collect();
    assert!(fired.contains(&"slice-index"), "{fired:?}");
    assert!(fired.contains(&"waiver-without-reason"), "{fired:?}");
}
