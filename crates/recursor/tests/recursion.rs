//! End-to-end recursor behaviour over a materialized world: cache reuse
//! within a day, TTL expiry across days, packet accounting, coalescing and
//! the sweep scheduler.

use dps_dns::{Name, RrType};
use dps_ecosystem::{ScenarioParams, World};
use dps_netsim::{Day, Network};
use dps_recursor::{Recursor, RecursorConfig, SweepScheduler};
use std::net::IpAddr;

fn src() -> IpAddr {
    "172.16.5.1".parse().unwrap()
}

fn world() -> World {
    World::imc2016(ScenarioParams::tiny(41))
}

fn jobs_for(world: &World, take: usize) -> Vec<(Name, RrType)> {
    let mut jobs = Vec::new();
    for entry in world
        .zone_entries(dps_ecosystem::Tld::Com)
        .iter()
        .copied()
        .take(take)
    {
        let apex = world.entry_name(entry);
        let www = apex.prepend("www").unwrap();
        jobs.push((apex.clone(), RrType::A));
        jobs.push((www, RrType::A));
        jobs.push((apex.clone(), RrType::Aaaa));
        jobs.push((apex, RrType::Ns));
    }
    jobs
}

#[test]
fn repeat_queries_are_served_from_cache_without_packets() {
    let world = world();
    let net = Network::new(5);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);
    let first = worker.resolve(&apex, RrType::A).unwrap();
    let packets_after_first = net.stats().snapshot().sent;
    assert!(packets_after_first > 0);

    let second = worker.resolve(&apex, RrType::A).unwrap();
    assert_eq!(first, second, "cache replays the resolution verbatim");
    assert_eq!(
        net.stats().snapshot().sent,
        packets_after_first,
        "hit sent no packets"
    );

    let stats = recursor.stats();
    assert_eq!(
        (stats.queries, stats.cache_hits, stats.cache_misses),
        (2, 1, 1)
    );
}

#[test]
fn day_boundary_expires_answers_but_not_correctness() {
    let world = world();
    let net = Network::new(6);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);
    recursor.begin_day(Day(0));
    let day0 = worker.resolve(&apex, RrType::A).unwrap();
    let packets_day0 = net.stats().snapshot().sent;

    // Same day: a hit. Next day: zone TTLs (≤ hours) have long lapsed.
    recursor.begin_day(Day(1));
    let day1 = worker.resolve(&apex, RrType::A).unwrap();
    assert!(
        net.stats().snapshot().sent > packets_day0,
        "day-1 lookup went to the network"
    );
    assert_eq!(day0.rcode, day1.rcode);
    assert_eq!(
        day0.answers, day1.answers,
        "static zone: same records re-fetched"
    );
}

#[test]
fn infra_cache_skips_the_root_for_sibling_queries() {
    let world = world();
    let net = Network::new(7);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let entries = world.zone_entries(dps_ecosystem::Tld::Com);
    let first = world.entry_name(entries[0]);
    let sibling = world.entry_name(entries[1]);

    worker.resolve(&first, RrType::A).unwrap();
    assert!(
        !recursor.infra_cache().is_empty(),
        "referrals populated the infra cache"
    );
    let stats_before = recursor.stats();
    worker.resolve(&sibling, RrType::A).unwrap();
    let stats = recursor.stats();
    assert!(
        stats.infra_starts > stats_before.infra_starts,
        "sibling descent started from a cached cut"
    );
}

#[test]
fn warm_sweep_needs_five_times_fewer_packets_than_uncached_wire() {
    let world = world();
    let net = Network::new(8);
    let catalog = world.materialize(&net);
    let jobs = jobs_for(&world, 40);

    // Baseline: the uncached wire resolver, fresh descent per query.
    let mut baseline = dps_authdns::resolver::Resolver::new(&net, src(), 99, catalog.root_hints());
    let before = net.stats().snapshot().sent;
    for (qname, qtype) in &jobs {
        let _ = baseline.resolve(qname, *qtype);
    }
    let uncached_packets = net.stats().snapshot().sent - before;

    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let scheduler = SweepScheduler::new(recursor, 1);
    let cold = scheduler.run_sweep(&net, src(), Day(0), &jobs);
    let warm = scheduler.run_sweep(&net, src(), Day(0), &jobs);

    assert_eq!(cold.queries, jobs.len() as u64);
    assert!(
        cold.packets_sent < uncached_packets,
        "even a cold sweep shares infrastructure"
    );
    assert!(
        warm.packets_sent * 5 <= uncached_packets,
        "warm sweep {} packets vs uncached {}",
        warm.packets_sent,
        uncached_packets
    );
    assert!(warm.hit_ratio() > 0.95, "hit ratio {}", warm.hit_ratio());
    assert_eq!(warm.errors, 0);
}

#[test]
fn scheduler_coalesces_identical_concurrent_questions() {
    let world = world();
    let net = Network::new(9);
    let catalog = world.materialize(&net);
    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);

    // Every worker asks the same (slow, uncached) question at once.
    let jobs: Vec<(Name, RrType)> = (0..64).map(|_| (apex.clone(), RrType::A)).collect();
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let report = SweepScheduler::new(recursor, 8).run_sweep(&net, src(), Day(0), &jobs);

    assert_eq!(report.queries, 64);
    assert_eq!(report.errors, 0);
    assert!(
        report.coalesced + report.cache_hits >= 63,
        "all but the leader shared its work: {report:?}"
    );
}

#[test]
fn recursor_answers_match_the_bulk_path() {
    let world = world();
    let net = Network::new(10);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    for entry in world
        .zone_entries(dps_ecosystem::Tld::Com)
        .iter()
        .copied()
        .take(25)
    {
        let apex = world.entry_name(entry);
        let www = apex.prepend("www").unwrap();
        for (qname, qtype) in [
            (&apex, RrType::A),
            (&www, RrType::A),
            (&apex, RrType::Ns),
            (&apex, RrType::Aaaa),
        ] {
            match (world.resolve(qname, qtype), worker.resolve(qname, qtype)) {
                (Ok(bulk), Ok(rec)) => {
                    assert_eq!(bulk.rcode, rec.rcode, "{qname} {qtype}");
                    assert_eq!(bulk.answers, rec.answers, "{qname} {qtype}");
                }
                (Err(_), Err(_)) => {}
                (b, r) => panic!("{qname} {qtype}: bulk {b:?} vs recursor {r:?}"),
            }
        }
    }
}

#[test]
fn negative_answers_are_cached_rfc2308() {
    let world = world();
    let net = Network::new(11);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let missing: Name = "definitely-not-registered-zz.com".parse().unwrap();
    let first = worker.resolve(&missing, RrType::A).unwrap();
    assert_eq!(first.rcode, dps_dns::Rcode::NxDomain);
    let packets = net.stats().snapshot().sent;

    let second = worker.resolve(&missing, RrType::A).unwrap();
    assert_eq!(second.rcode, dps_dns::Rcode::NxDomain);
    assert_eq!(
        net.stats().snapshot().sent,
        packets,
        "NXDOMAIN served from cache"
    );
    assert_eq!(
        recursor
            .answer_cache()
            .negative(&missing, RrType::A, recursor.clock().now_us()),
        Some(true)
    );
}

/// Root + TLD + a customer server and a *separate* CDN server. The customer
/// server cannot expand the cross-server CNAME itself, so the recursor
/// chases the alias restart — the path that replays cached alias targets.
mod cname_world {
    use super::*;
    use dps_authdns::{AuthServer, Catalog, Zone};
    use dps_dns::RData;
    use std::net::Ipv4Addr;
    use std::sync::Arc as StdArc;

    pub fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse::<Ipv4Addr>().unwrap())
    }

    pub fn build(net: &StdArc<Network>) -> Vec<IpAddr> {
        let catalog = Catalog::new();
        let root_addr = ip("10.9.0.1");
        let tld_addr = ip("10.9.1.1");
        let customer_addr = ip("10.9.2.1");
        let cdn_addr = ip("10.9.3.1");

        let mut root = Zone::new(Name::root());
        root.add(n("le"), RData::Ns(n("ns.tld")));
        root.add(n("net"), RData::Ns(n("ns.tld")));
        root.add(n("ns.tld"), a("10.9.1.1"));
        let root_handle = catalog.add_zone(root, vec![root_addr]);

        let mut le = Zone::new(n("le"));
        le.add(n("examp.le"), RData::Ns(n("ns.examp.le")));
        le.add(n("ns.examp.le"), a("10.9.2.1"));
        let le_handle = catalog.add_zone(le, vec![tld_addr]);

        let mut net_tld = Zone::new(n("net"));
        net_tld.add(n("cdn.net"), RData::Ns(n("ns.cdn.net")));
        net_tld.add(n("ns.cdn.net"), a("10.9.3.1"));
        let net_handle = catalog.add_zone(net_tld, vec![tld_addr]);

        // Two customer names aliased onto the same CDN edge.
        let mut examp = Zone::new(n("examp.le"));
        examp.add(n("www.examp.le"), RData::Cname(n("edge.cdn.net")));
        examp.add(n("www2.examp.le"), RData::Cname(n("edge.cdn.net")));
        let examp_handle = catalog.add_zone(examp, vec![customer_addr]);

        let mut cdn = Zone::new(n("cdn.net"));
        cdn.add(n("edge.cdn.net"), a("198.51.100.7"));
        let cdn_handle = catalog.add_zone(cdn, vec![cdn_addr]);

        let root_srv = AuthServer::new();
        root_srv.serve_zone(root_handle);
        root_srv.bind(net, root_addr);

        let tld_srv = AuthServer::new();
        tld_srv.serve_zone(le_handle);
        tld_srv.serve_zone(net_handle);
        tld_srv.bind(net, tld_addr);

        let customer_srv = AuthServer::new();
        customer_srv.serve_zone(examp_handle);
        customer_srv.bind(net, customer_addr);

        let cdn_srv = AuthServer::new();
        cdn_srv.serve_zone(cdn_handle);
        cdn_srv.bind(net, cdn_addr);

        vec![root_addr]
    }
}

/// A chain re-cached from a replayed alias target must not outlive the
/// cached entry it was derived from (real resolvers decrement TTLs on
/// replay; re-granting the full record TTL would stretch it up to ~2×).
#[test]
fn replayed_alias_target_does_not_stretch_ttl() {
    let net = Network::new(31);
    let hints = cname_world::build(&net);
    let recursor = Recursor::new(hints, RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let www = cname_world::n("www.examp.le");
    let www2 = cname_world::n("www2.examp.le");
    let edge = cname_world::n("edge.cdn.net");

    // Cold chase caches the shared edge under its own name (zone TTL 300 s).
    let first = worker.resolve(&www, RrType::A).unwrap();
    assert_eq!(first.answers.len(), 2, "CNAME + A: {first:?}");
    let (_, edge_expires) = recursor
        .answer_cache()
        .get_with_expiry(&edge, RrType::A, recursor.clock().now_us())
        .expect("edge cached under its own name");

    // Near the edge's expiry, a sibling alias replays it from cache.
    recursor.clock().advance_to(290_000_000);
    let second = worker.resolve(&www2, RrType::A).unwrap();
    assert_eq!(first.answers[1], second.answers[1], "same replayed edge A");

    let now = recursor.clock().now_us();
    let (_, www2_expires) = recursor
        .answer_cache()
        .get_with_expiry(&www2, RrType::A, now)
        .expect("derived chain cached");
    assert!(
        www2_expires <= edge_expires,
        "derived entry (expires {www2_expires}) must not outlive its source (expires {edge_expires})"
    );

    // Past the edge's authoritative expiry, the derived chain is gone too.
    recursor.clock().advance_to(edge_expires + 1);
    assert!(
        recursor
            .answer_cache()
            .get(&www2, RrType::A, recursor.clock().now_us())
            .is_none(),
        "derived chain served past its source's TTL"
    );
}

/// Virtual time is the max of the workers' per-socket timelines, not the
/// sum of all their work — otherwise cache lifetimes would shrink as the
/// worker count grows.
#[test]
fn shared_clock_tracks_max_worker_timeline_not_sum() {
    let world = world();
    let net = Network::new(32);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());

    let entries = world.zone_entries(dps_ecosystem::Tld::Com);
    let first = world.entry_name(entries[0]);
    let second = world.entry_name(entries[1]);

    let mut w1 = recursor.worker(&net, src(), 0);
    let mut w2 = recursor.worker(&net, src(), 1);
    let r1 = w1.resolve(&first, RrType::A).unwrap();
    let r2 = w2.resolve(&second, RrType::A).unwrap();
    assert!(r1.elapsed_us > 0 && r2.elapsed_us > 0);

    let now = recursor.clock().now_us();
    assert_eq!(
        now,
        r1.elapsed_us.max(r2.elapsed_us),
        "clock is the max worker timeline"
    );
    assert!(
        now < r1.elapsed_us + r2.elapsed_us,
        "clock must not sum concurrent workers' time"
    );
}
