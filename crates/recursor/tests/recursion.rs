//! End-to-end recursor behaviour over a materialized world: cache reuse
//! within a day, TTL expiry across days, packet accounting, coalescing and
//! the sweep scheduler.

use dps_dns::{Name, RrType};
use dps_ecosystem::{ScenarioParams, World};
use dps_netsim::{Day, Network};
use dps_recursor::{Recursor, RecursorConfig, SweepScheduler};
use std::net::IpAddr;

fn src() -> IpAddr {
    "172.16.5.1".parse().unwrap()
}

fn world() -> World {
    World::imc2016(ScenarioParams::tiny(41))
}

fn jobs_for(world: &World, take: usize) -> Vec<(Name, RrType)> {
    let mut jobs = Vec::new();
    for entry in world
        .zone_entries(dps_ecosystem::Tld::Com)
        .into_iter()
        .take(take)
    {
        let apex = world.entry_name(entry);
        let www = apex.prepend("www").unwrap();
        jobs.push((apex.clone(), RrType::A));
        jobs.push((www, RrType::A));
        jobs.push((apex.clone(), RrType::Aaaa));
        jobs.push((apex, RrType::Ns));
    }
    jobs
}

#[test]
fn repeat_queries_are_served_from_cache_without_packets() {
    let world = world();
    let net = Network::new(5);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);
    let first = worker.resolve(&apex, RrType::A).unwrap();
    let packets_after_first = net.stats().snapshot().sent;
    assert!(packets_after_first > 0);

    let second = worker.resolve(&apex, RrType::A).unwrap();
    assert_eq!(first, second, "cache replays the resolution verbatim");
    assert_eq!(
        net.stats().snapshot().sent,
        packets_after_first,
        "hit sent no packets"
    );

    let stats = recursor.stats();
    assert_eq!(
        (stats.queries, stats.cache_hits, stats.cache_misses),
        (2, 1, 1)
    );
}

#[test]
fn day_boundary_expires_answers_but_not_correctness() {
    let world = world();
    let net = Network::new(6);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);
    recursor.begin_day(Day(0));
    let day0 = worker.resolve(&apex, RrType::A).unwrap();
    let packets_day0 = net.stats().snapshot().sent;

    // Same day: a hit. Next day: zone TTLs (≤ hours) have long lapsed.
    recursor.begin_day(Day(1));
    let day1 = worker.resolve(&apex, RrType::A).unwrap();
    assert!(
        net.stats().snapshot().sent > packets_day0,
        "day-1 lookup went to the network"
    );
    assert_eq!(day0.rcode, day1.rcode);
    assert_eq!(
        day0.answers, day1.answers,
        "static zone: same records re-fetched"
    );
}

#[test]
fn infra_cache_skips_the_root_for_sibling_queries() {
    let world = world();
    let net = Network::new(7);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let entries = world.zone_entries(dps_ecosystem::Tld::Com);
    let first = world.entry_name(entries[0]);
    let sibling = world.entry_name(entries[1]);

    worker.resolve(&first, RrType::A).unwrap();
    assert!(
        !recursor.infra_cache().is_empty(),
        "referrals populated the infra cache"
    );
    let stats_before = recursor.stats();
    worker.resolve(&sibling, RrType::A).unwrap();
    let stats = recursor.stats();
    assert!(
        stats.infra_starts > stats_before.infra_starts,
        "sibling descent started from a cached cut"
    );
}

#[test]
fn warm_sweep_needs_five_times_fewer_packets_than_uncached_wire() {
    let world = world();
    let net = Network::new(8);
    let catalog = world.materialize(&net);
    let jobs = jobs_for(&world, 40);

    // Baseline: the uncached wire resolver, fresh descent per query.
    let mut baseline = dps_authdns::resolver::Resolver::new(&net, src(), 99, catalog.root_hints());
    let before = net.stats().snapshot().sent;
    for (qname, qtype) in &jobs {
        let _ = baseline.resolve(qname, *qtype);
    }
    let uncached_packets = net.stats().snapshot().sent - before;

    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let scheduler = SweepScheduler::new(recursor, 1);
    let cold = scheduler.run_sweep(&net, src(), Day(0), &jobs);
    let warm = scheduler.run_sweep(&net, src(), Day(0), &jobs);

    assert_eq!(cold.queries, jobs.len() as u64);
    assert!(
        cold.packets_sent < uncached_packets,
        "even a cold sweep shares infrastructure"
    );
    assert!(
        warm.packets_sent * 5 <= uncached_packets,
        "warm sweep {} packets vs uncached {}",
        warm.packets_sent,
        uncached_packets
    );
    assert!(warm.hit_ratio() > 0.95, "hit ratio {}", warm.hit_ratio());
    assert_eq!(warm.errors, 0);
}

#[test]
fn scheduler_coalesces_identical_concurrent_questions() {
    let world = world();
    let net = Network::new(9);
    let catalog = world.materialize(&net);
    let apex = world.entry_name(world.zone_entries(dps_ecosystem::Tld::Com)[0]);

    // Every worker asks the same (slow, uncached) question at once.
    let jobs: Vec<(Name, RrType)> = (0..64).map(|_| (apex.clone(), RrType::A)).collect();
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let report = SweepScheduler::new(recursor, 8).run_sweep(&net, src(), Day(0), &jobs);

    assert_eq!(report.queries, 64);
    assert_eq!(report.errors, 0);
    assert!(
        report.coalesced + report.cache_hits >= 63,
        "all but the leader shared its work: {report:?}"
    );
}

#[test]
fn recursor_answers_match_the_bulk_path() {
    let world = world();
    let net = Network::new(10);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    for entry in world
        .zone_entries(dps_ecosystem::Tld::Com)
        .into_iter()
        .take(25)
    {
        let apex = world.entry_name(entry);
        let www = apex.prepend("www").unwrap();
        for (qname, qtype) in [
            (&apex, RrType::A),
            (&www, RrType::A),
            (&apex, RrType::Ns),
            (&apex, RrType::Aaaa),
        ] {
            match (world.resolve(qname, qtype), worker.resolve(qname, qtype)) {
                (Ok(bulk), Ok(rec)) => {
                    assert_eq!(bulk.rcode, rec.rcode, "{qname} {qtype}");
                    assert_eq!(bulk.answers, rec.answers, "{qname} {qtype}");
                }
                (Err(_), Err(_)) => {}
                (b, r) => panic!("{qname} {qtype}: bulk {b:?} vs recursor {r:?}"),
            }
        }
    }
}

#[test]
fn negative_answers_are_cached_rfc2308() {
    let world = world();
    let net = Network::new(11);
    let catalog = world.materialize(&net);
    let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
    let mut worker = recursor.worker(&net, src(), 0);

    let missing: Name = "definitely-not-registered-zz.com".parse().unwrap();
    let first = worker.resolve(&missing, RrType::A).unwrap();
    assert_eq!(first.rcode, dps_dns::Rcode::NxDomain);
    let packets = net.stats().snapshot().sent;

    let second = worker.resolve(&missing, RrType::A).unwrap();
    assert_eq!(second.rcode, dps_dns::Rcode::NxDomain);
    assert_eq!(
        net.stats().snapshot().sent,
        packets,
        "NXDOMAIN served from cache"
    );
    assert_eq!(
        recursor
            .answer_cache()
            .negative(&missing, RrType::A, recursor.clock().now_us()),
        Some(true)
    );
}
