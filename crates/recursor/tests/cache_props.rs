//! Property tests for the answer cache: entries are never served past
//! their TTL under arbitrary virtual-clock advances, eviction keeps the
//! cache within its capacity bound, and a fresh answer of either polarity
//! replaces the previous one.

use dps_authdns::Resolution;
use dps_dns::{Name, Rcode, RrType};
use dps_recursor::{AnswerCache, CacheConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn key(i: u8) -> Name {
    format!("k{i}.example.com").parse().unwrap()
}

/// A distinguishable resolution: `tag` rides in `elapsed_us`, which the
/// cache stores verbatim, so we can tell inserts apart on replay.
fn tagged(tag: u64) -> Resolution {
    Resolution {
        rcode: Rcode::NoError,
        answers: Vec::new(),
        elapsed_us: tag,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interleave inserts, clock advances and lookups; the cache must agree
    /// with a simple (expiry, tag) model at every step — in particular it
    /// must never serve an entry whose TTL has lapsed.
    #[test]
    fn never_serves_past_ttl(
        ops in proptest::collection::vec(
            ((0u8..6), (0u32..400), (0u64..120_000_000), any::<bool>()),
            1..80,
        )
    ) {
        let cache = AnswerCache::new(&CacheConfig::default());
        let mut model: HashMap<u8, (u64, u64)> = HashMap::new();
        let mut now = 0u64;
        for (seq, (k, ttl, advance, is_insert)) in ops.into_iter().enumerate() {
            now += advance;
            let name = key(k);
            if is_insert {
                let tag = seq as u64;
                cache.insert(&name, RrType::A, tagged(tag), ttl, false, now);
                if ttl > 0 {
                    model.insert(k, (now + u64::from(ttl) * 1_000_000, tag));
                }
            } else {
                let got = cache.get(&name, RrType::A, now);
                match model.get(&k) {
                    Some(&(expires, tag)) if expires > now => {
                        let res = got.expect("live entry must be served");
                        prop_assert_eq!(res.elapsed_us, tag, "latest insert wins");
                    }
                    _ => prop_assert!(got.is_none(), "expired entry served at {}", now),
                }
            }
        }
    }

    /// However many distinct keys are inserted, the cache never holds more
    /// than its configured bound (shards × per-shard capacity).
    #[test]
    fn eviction_never_exceeds_capacity(
        capacity in 1usize..=16,
        shards in 1usize..=4,
        keys in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let cache = AnswerCache::new(&CacheConfig {
            capacity,
            shards,
            ..CacheConfig::default()
        });
        let bound = shards.max(1) * capacity.div_ceil(shards.max(1)).max(1);
        for (seq, k) in keys.into_iter().enumerate() {
            cache.insert(&key(k), RrType::A, tagged(seq as u64), 300, false, 0);
            prop_assert!(
                cache.len() <= bound,
                "len {} exceeds bound {}", cache.len(), bound
            );
        }
    }

    /// A positive answer replaces a cached negative entry (and vice versa):
    /// the polarity and payload of the most recent insert always win.
    #[test]
    fn positive_answers_invalidate_negative_entries(
        k in 0u8..6,
        neg_ttl in 1u32..600,
        pos_ttl in 1u32..600,
        gap_us in 0u64..500_000,
    ) {
        let cache = AnswerCache::new(&CacheConfig::default());
        let name = key(k);
        let negative = Resolution { rcode: Rcode::NxDomain, answers: Vec::new(), elapsed_us: 1 };
        cache.insert(&name, RrType::A, negative, neg_ttl, true, 0);
        prop_assert_eq!(cache.negative(&name, RrType::A, gap_us), Some(true));

        cache.insert(&name, RrType::A, tagged(2), pos_ttl, false, gap_us);
        prop_assert_eq!(cache.negative(&name, RrType::A, gap_us), Some(false));
        let got = cache.get(&name, RrType::A, gap_us).expect("positive entry live");
        prop_assert_eq!(got.rcode, Rcode::NoError);
        prop_assert_eq!(got.elapsed_us, 2);
    }
}
