//! Sweep scheduling: fan a day's query jobs over worker threads while
//! bounding how many exchanges may be in flight against any single
//! authoritative server — a politeness constraint every real measurement
//! platform (including the paper's OpenINTEL-style infrastructure) runs
//! under so daily sweeps do not look like an attack on the TLD servers.

use crate::clock::SharedClock;
use crate::recursor::{Recursor, RecursorStats};
use dps_dns::{Name, RrType};
use dps_netsim::{Day, Network};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Caps concurrent in-flight exchanges per destination server.
pub struct ServerGate {
    limit: u32,
    counts: Mutex<HashMap<IpAddr, u32>>,
    freed: Condvar,
}

impl ServerGate {
    /// A gate admitting `limit` concurrent exchanges per server (min 1).
    pub fn new(limit: u32) -> Self {
        Self {
            limit: limit.max(1),
            counts: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// The per-server limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Blocks until a slot for `server` frees up, then claims it. The slot
    /// is released when the returned permit drops.
    pub fn acquire(&self, server: IpAddr) -> ServerPermit<'_> {
        let mut counts = self.counts.lock();
        loop {
            let inflight = counts.entry(server).or_insert(0);
            if *inflight < self.limit {
                *inflight += 1;
                return ServerPermit { gate: self, server };
            }
            self.freed.wait(&mut counts);
        }
    }

    /// Claims a slot for `server` only if one is free right now — never
    /// blocks. Used for hedged second attempts, which must not introduce
    /// a second *blocking* permit acquisition (deadlock risk) and are
    /// worthless if the hedge target is already saturated.
    pub fn try_acquire(&self, server: IpAddr) -> Option<ServerPermit<'_>> {
        let mut counts = self.counts.lock();
        let inflight = counts.entry(server).or_insert(0);
        if *inflight < self.limit {
            *inflight += 1;
            Some(ServerPermit { gate: self, server })
        } else {
            None
        }
    }

    /// In-flight exchanges against `server` right now.
    pub fn inflight(&self, server: IpAddr) -> u32 {
        self.counts.lock().get(&server).copied().unwrap_or(0)
    }
}

/// RAII slot from [`ServerGate::acquire`].
pub struct ServerPermit<'a> {
    gate: &'a ServerGate,
    server: IpAddr,
}

impl Drop for ServerPermit<'_> {
    fn drop(&mut self) {
        let mut counts = self.gate.counts.lock();
        if let Some(inflight) = counts.get_mut(&self.server) {
            *inflight -= 1;
            if *inflight == 0 {
                counts.remove(&self.server);
            }
        }
        self.gate.freed.notify_all();
    }
}

/// What one sweep did, in numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepReport {
    /// Questions asked of the recursor.
    pub queries: u64,
    /// Questions served from the answer cache.
    pub cache_hits: u64,
    /// Questions that needed network work.
    pub cache_misses: u64,
    /// Questions coalesced onto an identical in-flight one.
    pub coalesced: u64,
    /// Simulated UDP packets sent (network-wide delta over the sweep).
    pub packets_sent: u64,
    /// Exchange attempts beyond the first per question leg.
    pub retries: u64,
    /// Questions that ended in a resolution error.
    pub errors: u64,
    /// Network resolutions failed by silence until the deadline.
    pub failed_timeout: u64,
    /// Network resolutions failed by ICMP-style unreachable.
    pub failed_unreachable: u64,
    /// Network resolutions failed on corrupt/invalid replies.
    pub failed_corrupt: u64,
    /// Network resolutions failed with an error RCODE.
    pub failed_servfail: u64,
    /// Network resolutions failed for structural reasons.
    pub failed_other: u64,
    /// Hedge datagrams sent for straggling exchanges.
    pub hedges: u64,
    /// Circuit-breaker trips during the sweep.
    pub breaker_trips: u64,
}

impl SweepReport {
    /// Fraction of questions served from cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    fn from_deltas(stats: RecursorStats, packets: u64, errors: u64) -> Self {
        Self {
            queries: stats.queries,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            coalesced: stats.coalesced,
            packets_sent: packets,
            retries: stats.retries,
            errors,
            failed_timeout: stats.failed_timeout,
            failed_unreachable: stats.failed_unreachable,
            failed_corrupt: stats.failed_corrupt,
            failed_servfail: stats.failed_servfail,
            failed_other: stats.failed_other,
            hedges: stats.hedges,
            breaker_trips: stats.breaker_trips,
        }
    }
}

/// Runs daily sweeps through a shared [`Recursor`] with a worker pool.
pub struct SweepScheduler {
    recursor: Recursor,
    workers: usize,
}

impl SweepScheduler {
    /// A scheduler running `workers` threads over `recursor`'s shared
    /// caches (min 1).
    pub fn new(recursor: Recursor, workers: usize) -> Self {
        Self {
            recursor,
            workers: workers.max(1),
        }
    }

    /// The shared clock, for callers that interleave their own queries.
    pub fn clock(&self) -> &SharedClock {
        self.recursor.clock()
    }

    /// Sweeps `jobs` on `day`: jumps the shared clock to the day's start
    /// (expiring the previous day's cache), then resolves every job with
    /// bounded per-server concurrency. Workers send from `source` on
    /// distinct deterministic netsim streams.
    pub fn run_sweep(
        &self,
        net: &Arc<Network>,
        source: IpAddr,
        day: Day,
        jobs: &[(Name, RrType)],
    ) -> SweepReport {
        self.recursor.begin_day(day);
        let packets_before = net.stats().snapshot().sent;
        let stats_before = self.recursor.stats();
        let errors = AtomicU64::new(0);
        let next_job = AtomicUsize::new(0);

        crossbeam::thread::scope(|scope| {
            for stream in 0..self.workers {
                let mut worker = self.recursor.worker(net, source, stream as u64);
                let (errors, next_job) = (&errors, &next_job);
                scope.spawn(move |_| loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some((qname, qtype)) = jobs.get(i) else {
                        break;
                    };
                    if worker.resolve(qname, *qtype).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("sweep worker panicked");

        let stats = self.recursor.stats() - stats_before;
        let packets = net.stats().snapshot().sent - packets_before;
        SweepReport::from_deltas(stats, packets, errors.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn gate_bounds_concurrency() {
        let gate = Arc::new(ServerGate::new(2));
        let server: IpAddr = "192.0.2.1".parse().unwrap();
        let peak = Arc::new(AtomicU32::new(0));
        let current = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, peak, current) =
                    (Arc::clone(&gate), Arc::clone(&peak), Arc::clone(&current));
                std::thread::spawn(move || {
                    let _permit = gate.acquire(server);
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    current.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(gate.inflight(server), 0);
    }

    #[test]
    fn gate_is_per_server() {
        let gate = ServerGate::new(1);
        let a: IpAddr = "192.0.2.1".parse().unwrap();
        let b: IpAddr = "192.0.2.2".parse().unwrap();
        let _pa = gate.acquire(a);
        let _pb = gate.acquire(b); // must not block
        assert_eq!((gate.inflight(a), gate.inflight(b)), (1, 1));
    }
}
