//! The recursor's notion of time.
//!
//! Cache expiry needs one monotonic timeline shared by every worker, while
//! the netsim keeps a *per-socket* virtual clock. [`SharedClock`] bridges
//! the two: each worker projects its socket time onto the shared timeline
//! as `day start + its own work since the day began` and folds that in with
//! [`SharedClock::advance_to`], so shared time is the *max* of the workers'
//! timelines — independent of worker count — rather than the sum of all
//! their work. The sweep scheduler jumps the clock to each study day's
//! start with [`SharedClock::advance_to_day`], so a 300 s TTL survives a
//! same-day sweep but is long expired by the next daily snapshot.

use dps_netsim::Day;
use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual microseconds in one study day.
pub const DAY_US: u64 = 86_400_000_000;

/// A monotonic virtual clock in microseconds, shared across workers.
#[derive(Debug, Default)]
pub struct SharedClock {
    us: AtomicU64,
    day_start: AtomicU64,
}

impl SharedClock {
    /// A clock at time zero (the start of study day 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now_us(&self) -> u64 {
        self.us.load(Ordering::Acquire)
    }

    /// Moves the clock forward to `us` if it is ahead of the current time;
    /// never moves backwards.
    pub fn advance_to(&self, us: u64) {
        self.us.fetch_max(us, Ordering::AcqRel);
    }

    /// Adds `delta` microseconds of elapsed work.
    pub fn advance_by(&self, delta: u64) {
        self.us.fetch_add(delta, Ordering::AcqRel);
    }

    /// Jumps to the start of `day` (no-op if the clock is already past it).
    /// Also records the day start so workers can re-anchor their per-socket
    /// timelines.
    pub fn advance_to_day(&self, day: Day) {
        let start = u64::from(day.0) * DAY_US;
        self.day_start.fetch_max(start, Ordering::AcqRel);
        self.advance_to(start);
    }

    /// The start (µs) of the most recent day the clock was jumped to —
    /// the epoch workers anchor their socket timelines against.
    pub fn day_start_us(&self) -> u64 {
        self.day_start.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SharedClock::new();
        c.advance_to(100);
        c.advance_to(50);
        assert_eq!(c.now_us(), 100);
        c.advance_by(7);
        assert_eq!(c.now_us(), 107);
    }

    #[test]
    fn day_jumps_are_idempotent() {
        let c = SharedClock::new();
        c.advance_to_day(Day(2));
        assert_eq!(c.now_us(), 2 * DAY_US);
        c.advance_by(500);
        c.advance_to_day(Day(2));
        assert_eq!(c.now_us(), 2 * DAY_US + 500);
        c.advance_to_day(Day(3));
        assert_eq!(c.now_us(), 3 * DAY_US);
    }

    #[test]
    fn day_start_tracks_latest_day_jump() {
        let c = SharedClock::new();
        assert_eq!(c.day_start_us(), 0);
        c.advance_to_day(Day(2));
        assert_eq!(c.day_start_us(), 2 * DAY_US);
        // Worker-projected times move `now` but never the day epoch.
        c.advance_to(2 * DAY_US + 1_000);
        assert_eq!(c.day_start_us(), 2 * DAY_US);
        c.advance_to_day(Day(1));
        assert_eq!(c.day_start_us(), 2 * DAY_US, "epoch never rewinds");
    }
}
